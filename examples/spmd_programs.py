"""Writing SPMD rank programs against the simulated cluster.

Shows the point-to-point layer under the MPI executor: a ring pipeline,
a manual binomial reduce, and the recursive-doubling allreduce — real
data movement, virtual clocks, deterministic schedules.

Run:  python examples/spmd_programs.py
"""

import operator

from repro.mpi import CommModel, Compute, Recv, Send, SimComm, hypercube_allreduce

COMM = CommModel(alpha=100, beta=0.5, element_bytes=8)


def ring_pipeline() -> None:
    """Pass a growing token once around an 8-rank ring."""

    def program(rank, size):
        if rank == 0:
            yield Send(dest=1, data=[0])
            token = yield Recv(source=size - 1)
            return token
        token = yield Recv(source=rank - 1)
        token = token + [rank]
        yield Compute(cost=10.0)
        yield Send(dest=(rank + 1) % size, data=token)
        return token

    times, results = SimComm(8, COMM).run(program)
    assert results[0] == list(range(8))
    print(f"ring: token back at rank 0 = {results[0]}, t = {times[0]:.0f} units")


def binomial_reduce() -> None:
    """Hand-written binomial reduction to rank 0 (log R rounds)."""

    def program(rank, size):
        value = (rank + 1) ** 2
        stride = 1
        while stride < size:
            if rank % (2 * stride) == 0:
                other = yield Recv(source=rank + stride, tag=stride)
                value = value + other
            elif rank % (2 * stride) == stride:
                yield Send(dest=rank - stride, data=value, tag=stride)
                return None
            stride *= 2
        return value

    times, results = SimComm(16, COMM).run(program)
    expected = sum((r + 1) ** 2 for r in range(16))
    assert results[0] == expected
    print(f"binomial reduce on 16 ranks: {results[0]} (expected {expected}), "
          f"t = {times[0]:.0f} units")


def allreduce_demo() -> None:
    """Recursive doubling: every rank ends with the total."""
    times, results = hypercube_allreduce(
        lambda rank: rank + 1, operator.add, 16, COMM
    )
    assert set(results) == {sum(range(1, 17))}
    print(f"hypercube allreduce on 16 ranks: everyone holds {results[0]}, "
          f"slowest rank t = {max(times):.0f} units")


def main() -> None:
    ring_pipeline()
    binomial_reduce()
    allreduce_demo()
    print("spmd_programs OK")


if __name__ == "__main__":
    main()
