"""A tour of the streams substrate: word statistics over a text corpus.

Exercises the general-purpose stream API the adaptation is built on —
spliterators over arbitrary sources, lazy pipelines, stateful ops, stock
collectors, short-circuiting searches — on a realistic text-processing
task, sequential and parallel.

Run:  python examples/streams_tour.py
"""

from repro.forkjoin import ForkJoinPool
from repro.streams import Collectors, Stream, stream_of

CORPUS = """
the theory of powerlists offers an elegant way for defining divide and
conquer programs at a high level of abstraction the functions on power
lists are defined recursively by splitting their arguments based on two
deconstruction operators the parallelism of the functions is implicit
each application of a deconstruction operator implies two independent
computations that may be performed in parallel java streams provide the
ability to do parallelisation easily and in a reliable manner
""".split()


def main() -> None:
    with ForkJoinPool(parallelism=4, name="tour") as pool:
        # Word frequencies (grouping + counting), in parallel.
        frequencies = (
            stream_of(CORPUS)
            .parallel()
            .with_pool(pool)
            .collect(Collectors.grouping_by(lambda w: w, Collectors.counting()))
        )
        top = sorted(frequencies.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        print("top words:", top)

        # Longest words: stateful sorted + limit after a distinct pass.
        longest = (
            stream_of(CORPUS)
            .parallel()
            .with_pool(pool)
            .distinct()
            .sorted(key=len, reverse=True)
            .limit(5)
            .to_list()
        )
        print("longest distinct words:", longest)

        # Average word length via teeing (sum / count in one pass).
        avg = stream_of(CORPUS).collect(
            Collectors.tee(
                Collectors.summing(len),
                Collectors.counting(),
                lambda total, n: total / n,
            )
        )
        print(f"average word length: {avg:.2f}")

        # Short-circuiting search over an infinite stream.
        first_pow2_gt = (
            Stream.iterate(1, lambda x: 2 * x)
            .filter(lambda x: x > len(CORPUS))
            .find_first()
            .get()
        )
        print(f"first power of two above corpus size: {first_pow2_gt}")

        # Index words by initial letter, joined compactly.
        by_initial = (
            stream_of(sorted(set(CORPUS)))
            .collect(
                Collectors.grouping_by(
                    lambda w: w[0],
                    Collectors.mapping(lambda w: w, Collectors.joining("/")),
                )
            )
        )
        print("p-words:", by_initial.get("p", ""))
    print("streams_tour OK")


if __name__ == "__main__":
    main()
