"""Sorting networks on PowerLists: Batcher merge sort and bitonic sort.

Sorts a shuffled record set three ways — the Batcher-merge collector on a
parallel stream, the JPLF sort function, and the bitonic network — and
shows the `inv` permutation and Gray-code utilities along the way.

Run:  python examples/sorting_networks.py
"""

import random

from repro.core import (
    batcher_merge_sort,
    bitonic_sort,
    gray_code_sequence,
    inv,
    to_gray,
)
from repro.forkjoin import ForkJoinPool
from repro.jplf import ForkJoinExecutor, JplfSort
from repro.powerlist import PowerList

N = 2**10


def main() -> None:
    rng = random.Random(23)
    keys = [rng.randint(0, 99_999) for _ in range(N)]
    expected = sorted(keys)

    with ForkJoinPool(parallelism=8, name="sort-example") as pool:
        stream_sorted = batcher_merge_sort(keys, pool=pool)
        jplf_sorted = ForkJoinExecutor(pool).execute(JplfSort(PowerList(keys)))
    network_sorted = bitonic_sort(keys)

    assert stream_sorted == expected
    assert jplf_sorted == expected
    assert network_sorted == expected
    print(f"sorted {N} keys with 3 engines; first 8: {stream_sorted[:8]}")

    # The inv permutation: the data layout FFT needs (bit reversal).
    order = inv(list(range(16)), parallel=False)
    print("bit-reversal of 0..15:", order)
    assert sorted(order) == list(range(16))

    # Gray-code sequences from the PowerList recursion.
    gray = gray_code_sequence(4)
    print("4-bit Gray walk:", [format(g, '04b') for g in gray[:8]], "...")
    assert gray == [to_gray(i) for i in range(16)]
    print("sorting_networks OK")


if __name__ == "__main__":
    main()
