"""FFT via PowerList streams: spectral analysis of a synthetic signal.

Builds a noisy two-tone signal, runs the zip-decomposed FFT collector on a
parallel stream, recovers the dominant frequencies, and round-trips the
signal through the inverse transform — a realistic DSP workflow exercising
the two-operator machinery the paper motivates with fft.

Run:  python examples/fft_signal_processing.py
"""

import cmath
import math
import random

import numpy as np

from repro.core import fft
from repro.forkjoin import ForkJoinPool

N = 2**12
SAMPLE_RATE = 1024.0  # Hz
TONES = [(50.0, 1.0), (120.0, 0.5)]  # (frequency Hz, amplitude)


def make_signal(seed: int = 11) -> list[complex]:
    """Two sinusoids plus Gaussian noise, as complex samples."""
    rng = random.Random(seed)
    samples = []
    for i in range(N):
        t = i / SAMPLE_RATE
        value = sum(a * math.sin(2 * math.pi * f * t) for f, a in TONES)
        value += rng.gauss(0.0, 0.05)
        samples.append(complex(value, 0.0))
    return samples


def inverse_fft(spectrum: list[complex], pool: ForkJoinPool) -> list[complex]:
    """IFFT via the conjugate trick: conj(fft(conj(X))) / N."""
    conj = [v.conjugate() for v in spectrum]
    back = fft(conj, pool=pool)
    return [v.conjugate() / len(spectrum) for v in back]


def main() -> None:
    signal = make_signal()
    with ForkJoinPool(parallelism=8, name="fft-example") as pool:
        spectrum = fft(signal, pool=pool)

        # Validate against numpy before using the result.
        np.testing.assert_allclose(spectrum, np.fft.fft(signal), rtol=1e-8, atol=1e-8)

        # Peak-pick the positive-frequency half.
        half = N // 2
        magnitudes = [abs(v) for v in spectrum[:half]]
        resolution = SAMPLE_RATE / N
        peaks = sorted(range(half), key=lambda k: magnitudes[k], reverse=True)[:2]
        found = sorted(k * resolution for k in peaks)
        print(f"expected tones : {[f for f, _ in TONES]} Hz")
        print(f"recovered tones: {found} Hz (resolution {resolution:.2f} Hz)")
        for expected, actual in zip([f for f, _ in TONES], found):
            assert abs(expected - actual) <= resolution

        # Round trip.
        restored = inverse_fft(spectrum, pool)
        worst = max(abs(a - b) for a, b in zip(restored, signal))
        print(f"ifft(fft(x)) max error: {worst:.2e}")
        assert worst < 1e-8
    print("fft_signal_processing OK")


if __name__ == "__main__":
    main()
