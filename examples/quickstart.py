"""Quickstart: streams, PowerLists, and the PowerList-stream adaptation.

Run:  python examples/quickstart.py
"""

from repro.core import (
    IdentityCollector,
    PowerMapCollector,
    polynomial_value,
    power_collect,
)
from repro.forkjoin import ForkJoinPool
from repro.powerlist import PowerList
from repro.streams import Collectors, Stream


def plain_streams() -> None:
    """The Java-Streams-style API, sequential and parallel."""
    # A classic pipeline: filter → map → collect.
    squares_of_evens = (
        Stream.range(0, 20)
        .filter(lambda x: x % 2 == 0)
        .map(lambda x: x * x)
        .to_list()
    )
    print("squares of evens:", squares_of_evens)

    # The paper's joining example: the comma between partial results is
    # added by the *combiner*, which only runs on parallel execution.
    words = ["power", "lists", "meet", "streams"]
    joined = Stream.of_iterable(words).parallel().collect(Collectors.joining(", "))
    print("joined:", joined)

    # Grouping with a downstream collector.
    by_parity = Stream.range(0, 10).collect(
        Collectors.grouping_by(lambda x: "even" if x % 2 == 0 else "odd")
    )
    print("grouped:", by_parity)


def powerlist_views() -> None:
    """The two deconstruction operators, as O(1) views."""
    p = PowerList([10, 20, 30, 40, 50, 60, 70, 80])
    left, right = p.tie_split()
    even, odd = p.zip_split()
    print("tie_split :", left.to_list(), right.to_list())
    print("zip_split :", even.to_list(), odd.to_list())
    # All four are views into the same storage — nothing was copied.
    assert left.storage is p.storage and even.storage is p.storage


def powerlist_streams(pool: ForkJoinPool) -> None:
    """PowerList functions executed through the stream adaptation."""
    data = [float(i) for i in range(16)]

    # The identity function verifies decomposition/recomposition.
    assert power_collect(IdentityCollector("zip"), data, pool=pool) == data

    # map as a collector: accumulator applies f before adding.
    doubled = power_collect(PowerMapCollector(lambda x: 2 * x, "zip"), data, pool=pool)
    print("mapped    :", doubled[:8], "...")

    # The paper's running example: polynomial evaluation with
    # descending-phase state (x_degree) updated during splits.
    coeffs = [1.0, -2.0, 3.0, 0.5]  # x³ − 2x² + 3x + 0.5
    value = polynomial_value(coeffs, 2.0, pool=pool)
    print("p(2.0)    :", value, "(expect", 1 * 8 - 2 * 4 + 3 * 2 + 0.5, ")")


def main() -> None:
    plain_streams()
    powerlist_views()
    with ForkJoinPool(parallelism=4, name="quickstart") as pool:
        powerlist_streams(pool)
    print("quickstart OK")


if __name__ == "__main__":
    main()
