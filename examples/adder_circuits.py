"""Adder circuits as PowerList computations (related work [4]).

Kapur & Subramaniam verified adder circuits specified with PowerLists;
this example *runs* them: a 64-bit carry-lookahead adder whose carry chain
is a PowerList prefix scan over the kill/generate/propagate monoid,
cross-checked against the ripple-carry reference and Python integers,
plus a look at the scan network that powers it.

Run:  python examples/adder_circuits.py
"""

import random

from repro.core import add_integers, carry_lookahead_add, ripple_carry_add
from repro.core.adder import carry_status, compose_status, int_to_bits
from repro.forkjoin import ForkJoinPool
from repro.powerlist import PowerList
from repro.powerlist.functions import ladner_fischer_scan

WIDTH = 64


def show_carry_chain(a: int, b: int, width: int = 16) -> None:
    """Visualize the KPG statuses and resolved carries of one addition."""
    a_bits, b_bits = int_to_bits(a, width), int_to_bits(b, width)
    statuses = [carry_status(x, y) for x, y in zip(a_bits, b_bits)]
    resolved = ladner_fischer_scan(
        PowerList(statuses), compose_status, "P"
    ).to_list()
    print(f"  a        = {a:>{width}b}")
    print(f"  b        = {b:>{width}b}")
    print(f"  statuses = {''.join(reversed(statuses))}   (MSB→LSB)")
    print(f"  resolved = {''.join(reversed(resolved))}")
    print(f"  a + b    = {a + b:>{width + 1}b}")


def main() -> None:
    rng = random.Random(4)

    print("carry chain of one 16-bit addition:")
    show_carry_chain(0b1011001110001111, 0b0001110001110001)

    # Exhaustive-ish validation at 64 bits across engines.
    with ForkJoinPool(parallelism=4, name="adder") as pool:
        for trial in range(200):
            a = rng.getrandbits(WIDTH)
            b = rng.getrandbits(WIDTH)
            lookahead = add_integers(a, b, WIDTH, parallel=(trial % 2 == 0), pool=pool)
            ripple_bits, carry = ripple_carry_add(
                int_to_bits(a, WIDTH), int_to_bits(b, WIDTH)
            )
            assert lookahead == a + b, (a, b)
            la_bits, la_carry = carry_lookahead_add(
                int_to_bits(a, WIDTH), int_to_bits(b, WIDTH), parallel=False
            )
            assert (la_bits, la_carry) == (ripple_bits, carry)
    print(f"\n200 random {WIDTH}-bit additions: lookahead ≡ ripple ≡ int ✔")

    # Depth comparison: the reason lookahead exists.
    print(f"ripple-carry depth: O(n) = {WIDTH} gate delays")
    print(f"carry-lookahead depth: O(log n) = {WIDTH.bit_length() - 1} scan levels")
    print("adder_circuits OK")


if __name__ == "__main__":
    main()
