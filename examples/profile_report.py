"""Explain plans and run profiles for a parallel stream pipeline.

Three observability layers on one pipeline:

1. ``Stream.explain()`` — the predicted execution plan (fusion rewrite,
   traversal mode, barrier segments, split tree) *without* running;
2. ``repro.obs.profiled()`` — per-stage self-time attribution, leaf
   duration histogram, and pool steal/idle ratios from an actual run;
3. the exporters — an enriched Chrome trace (profile embedded under
   ``otherData``) and the profile as JSON for dashboards.

Run:  python examples/profile_report.py [--out-profile PATH] [--out-trace PATH]
"""

import argparse
import json
import pathlib

from repro.forkjoin import ForkJoinPool
from repro.obs import profiled, tracing, write_chrome_trace
from repro.streams import Stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-profile", default=None,
                        help="write RunProfile.to_dict() JSON here")
    parser.add_argument("--out-trace", default=None,
                        help="write the profile-enriched Chrome trace here")
    args = parser.parse_args()

    n = 1 << 14

    def pipeline(pool):
        return (
            Stream.range(0, n)
            .parallel()
            .with_pool(pool)
            .with_target_size(1 << 11)
            .map(lambda x: x * 3)
            .filter(lambda x: x & 1 == 0)
        )

    # 1. The plan, predicted without executing (the stream is not consumed).
    with ForkJoinPool(parallelism=4, name="profiled") as pool:
        plan = pipeline(pool).explain()
        print(plan.render())
        print()

        # 2. The profiled run: sample every traversal so the tiny demo
        #    pipeline still attributes every leaf.
        with tracing() as tracer:
            with profiled(sample=1, pool=pool) as profile:
                total = pipeline(pool).sum()

    expected = sum(x * 3 for x in range(n) if (x * 3) % 2 == 0)
    assert total == expected, (total, expected)

    print(profile.report())
    print()
    hot = profile.hot_stages(limit=1)
    print(f"hottest stage: {hot[0][0]}" if hot else "no stages sampled")

    # The explain plan and the profiled run must agree on the split tree.
    predicted = plan["execution"]["split_tree"]["leaves"]
    assert profile.to_dict()["leaves"] == predicted, (
        profile.to_dict()["leaves"], predicted,
    )

    # 3. Exports.
    if args.out_profile:
        path = pathlib.Path(args.out_profile)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(profile.to_dict(), indent=1) + "\n")
        print(f"profile json: {path}")
    if args.out_trace:
        path = pathlib.Path(args.out_trace)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_chrome_trace(
            path, tracer.spans(), dropped=tracer.dropped, profile=profile
        )
        print(f"chrome trace: {path} ({len(tracer.spans())} spans)")

    print()
    print("profile_report OK")


if __name__ == "__main__":
    main()
