"""Two-dimensional PowerLists: block matrices on the fork/join pool.

Misra's theory extends to higher dimensions; this example runs the
quad-recursive transpose and the 8-way divide-and-conquer matrix product
(the decomposition the related work [3] schedules onto GPUs), validated
against numpy.

Run:  python examples/matrix_blocks.py
"""

import numpy as np

from repro.forkjoin import ForkJoinPool
from repro.powerlist.grid import Grid, matmul, parallel_matmul, transpose

N = 16


def main() -> None:
    rng = np.random.default_rng(12)
    x = Grid.from_rows(rng.integers(-9, 9, (N, N)).tolist())
    y = Grid.from_rows(rng.integers(-9, 9, (N, N)).tolist())

    # Deconstruction is pure view arithmetic — quadrants share storage.
    a, b, c, d = x.quad_split()
    assert a.storage is x.storage
    print(f"{N}x{N} matrix; quadrant A is a {a.rows}x{a.cols} view, no copies")

    # Transpose: O(1) as a view, or by the quad-swap recursion.
    tv = x.transposed_view()
    tr = transpose(x)
    assert tv.to_rows() == tr.to_rows() == np.array(x.to_rows()).T.tolist()
    print("transpose: view == recursion == numpy ✔")

    # Matrix product, sequential and fork/join-parallel.
    expected = (np.array(x.to_rows()) @ np.array(y.to_rows())).tolist()
    seq = matmul(x, y, threshold=4)
    with ForkJoinPool(parallelism=4, name="matmul") as pool:
        par = parallel_matmul(x, y, pool, threshold=4)
    assert seq.to_rows() == expected
    assert par.to_rows() == expected
    print("matmul: sequential == parallel == numpy ✔")

    # The algebra: (XY)ᵀ = Yᵀ Xᵀ.
    lhs = transpose(matmul(x, y)).to_rows()
    rhs = matmul(
        Grid.from_rows(y.transposed_view().to_rows()),
        Grid.from_rows(x.transposed_view().to_rows()),
    ).to_rows()
    assert lhs == rhs
    print("(XY)ᵀ = YᵀXᵀ ✔")
    print("matrix_blocks OK")


if __name__ == "__main__":
    main()
