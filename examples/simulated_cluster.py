"""Exploring the simulated machines: scaling curves and execution traces.

Uses the discrete-event simulator directly — worker sweeps, a Gantt-style
trace dump, scheduling-law checks — and the simulated MPI cluster for a
multi-node scaling curve, reproducing the shape of the paper's
scalability discussion without an 8-core box or a cluster.

Run:  python examples/simulated_cluster.py
"""

from repro.bench import format_table
from repro.jplf import JplfReduce
from repro.mpi import CommModel, MpiExecutor
from repro.powerlist import PowerList
from repro.simcore import (
    CostModel,
    SimMachine,
    build_dc_dag,
    greedy_bound_check,
    sequential_time,
    simulate_power_function,
    speedup,
)

N = 2**20


def worker_sweep() -> None:
    print(f"polynomial value, n=2^20, worker sweep:")
    rows = []
    seq = sequential_time(N, "polynomial")
    for workers in (1, 2, 4, 8, 16, 32):
        result = simulate_power_function(N, workers, "polynomial")
        report = greedy_bound_check(result)
        assert report.all_ok, "work/span laws must hold"
        rows.append([workers, result.makespan, speedup(seq, result.makespan),
                     f"{result.utilization:.3f}", result.steals])
    print(format_table(["workers", "makespan", "speedup", "utilization", "steals"], rows))


def small_trace() -> None:
    print("\nexecution trace, n=64, threshold=16, 4 workers:")
    model = CostModel(split_overhead=5, combine_overhead=5, fork_overhead=2)
    dag = build_dc_dag(64, 16, model)
    result = SimMachine(4).run(dag)
    rows = [
        [t.worker, t.sid, t.kind, f"{t.start:.0f}", f"{t.end:.0f}",
         "steal" if t.stolen else ""]
        for t in sorted(result.trace, key=lambda t: (t.start, t.worker))
    ]
    print(format_table(["worker", "strand", "kind", "start", "end", ""], rows))


def mpi_scaling() -> None:
    print("\nsimulated MPI: reduce at n=2^18, rank sweep (8 threads each):")
    data = list(range(2**18))
    rows = []
    for ranks in (1, 2, 4, 8, 16):
        report = MpiExecutor(
            ranks=ranks,
            threads_per_rank=8,
            comm=CommModel(alpha=2000, beta=0.002),
            operator_profile="reduce",
        ).execute(JplfReduce(PowerList(data), lambda a, b: a + b))
        assert report.result == sum(data)
        rows.append([ranks, f"{report.finish_time:.0f}",
                     f"{report.scatter_time:.0f}", f"{report.local_time:.0f}"])
    print(format_table(["ranks", "finish", "scatter", "local"], rows))


def main() -> None:
    worker_sweep()
    small_trace()
    mpi_scaling()
    print("simulated_cluster OK")


if __name__ == "__main__":
    main()
