"""Chaos engineering on the PowerList stream adaptation.

Installs an aggressive seeded fault plan against a parallel polynomial
evaluation, lets the resilience policies (retry with backoff, then
sequential fallback) recover the exact result, and exports the Chrome
trace of the degraded run — `fault`/`retry`/`degraded` instants included
— for `chrome://tracing` / Perfetto.

Run:  python examples/chaos_degraded_trace.py [--out PATH] [--seed N]
"""

import argparse
import os
import pathlib
import tempfile

from repro.core import polynomial_value
from repro.core.polynomial import horner
from repro.faults import FaultPlan, RetryPolicy, fault_injection
from repro.faults import policy as fault_policy
from repro.forkjoin import ForkJoinPool
from repro.obs import render_gantt, tracing, write_chrome_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(tempfile.gettempdir(), "chaos_degraded_trace.json"),
        help="Chrome trace output path",
    )
    parser.add_argument("--seed", type=int, default=11, help="fault-plan seed")
    args = parser.parse_args()
    # Tolerate an --out under a directory that does not exist yet (the
    # CI chaos job points into a fresh traces/ tree).
    pathlib.Path(args.out).parent.mkdir(parents=True, exist_ok=True)

    n = 1 << 12
    coeffs = [float((i * 37) % 19 - 9) for i in range(n)]
    expected = horner(coeffs, -1.0)  # x=-1: float-exact reference

    # Strike ~30% of parallel leaves, every attempt.  Retries keep
    # failing, so the run degrades to sequential — which bypasses the
    # task tree entirely and is therefore immune to leaf injectors.
    plan = FaultPlan(seed=args.seed, name="chaos-demo").inject(
        "leaf:*", "raise", probability=0.3
    )
    before = fault_policy.stats()
    with tracing() as tracer:
        with ForkJoinPool(parallelism=4, name="chaos") as pool:
            with fault_injection(plan):
                value = polynomial_value(
                    coeffs, -1.0, pool=pool, target_size=64,
                    retry=RetryPolicy(max_attempts=3, base_delay=0.001),
                    fallback=True,
                )
    after = fault_policy.stats()

    assert value == expected, (value, expected)
    spans = tracer.spans()
    path = write_chrome_trace(
        args.out, spans, metadata={"seed": args.seed, "plan": "leaf:* raise p=0.3"}
    )

    print(f"value: {value}  (matches the unfaulted reference)")
    print(f"faults injected: {plan.stats()['injected']}  by site:",
          plan.stats()["by_site"])
    print("recovery:",
          {k: after[k] - before[k] for k in after})
    print(f"chrome trace: {path} ({len(spans)} spans)")
    print()
    print(render_gantt(spans))
    print()
    print("chaos_degraded_trace OK")


if __name__ == "__main__":
    main()
