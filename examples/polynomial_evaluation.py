"""The paper's evaluation workload, end to end.

Evaluates random polynomials through every execution engine in the
repository — sequential Horner, the parallel stream adaptation, the JPLF
fork/join executor, the simulated 8-core machine, and the simulated MPI
cluster — and prints a small comparison table.

Run:  python examples/polynomial_evaluation.py
"""

import numpy as np

from repro.bench import (
    format_table,
    format_timing_table,
    random_coefficients,
    repeat_average,
)
from repro.core import polynomial_value
from repro.core.polynomial import horner
from repro.forkjoin import ForkJoinPool
from repro.jplf import ForkJoinExecutor, JplfPolynomialValue
from repro.mpi import CommModel, MpiExecutor
from repro.powerlist import PowerList
from repro.simcore import sequential_time, simulate_power_function, speedup
from repro.simcore.costmodel import polynomial_cost_model

N = 2**14
X = 0.9995


def main() -> None:
    coeffs = random_coefficients(N, seed=7)
    reference = np.polyval(coeffs, X)
    print(f"degree {N - 1} polynomial at x={X}; numpy reference = {reference:.6f}\n")

    with ForkJoinPool(parallelism=8, name="poly-example") as pool:
        engines = {
            "sequential Horner": lambda: horner(coeffs, X),
            "stream adaptation (parallel)": lambda: polynomial_value(
                coeffs, X, pool=pool
            ),
            "JPLF fork/join": lambda: ForkJoinExecutor(pool).execute(
                JplfPolynomialValue(PowerList(coeffs), X)
            ),
        }
        timings = []
        for name, fn in engines.items():
            value = fn()
            timings.append((name, repeat_average(fn, runs=5)))
            assert abs(value - reference) < 1e-6 * max(1.0, abs(reference))
        print(format_timing_table(timings, title="wall-clock, 5 runs per engine"))

    # The paper's Figure-3 machine, simulated (DESIGN.md §3).
    print("\nSimulated 8-core machine (virtual time):")
    model = polynomial_cost_model(anomaly=False)
    rows = []
    for log_n in (20, 22, 24, 26):
        n = 2**log_n
        result = simulate_power_function(n, 8, "polynomial", model=model)
        s = speedup(sequential_time(n, "polynomial", model), result.makespan)
        rows.append([f"2^{log_n}", model.to_ms(result.makespan), s])
    print(format_table(["n", "parallel_ms", "speedup"], rows))

    # And a simulated 8-rank cluster, each rank 8 virtual cores.
    report = MpiExecutor(
        ranks=8,
        threads_per_rank=8,
        comm=CommModel(alpha=2000, beta=0.002),
        operator_profile="polynomial",
    ).execute(JplfPolynomialValue(PowerList(coeffs), X))
    print(f"\nsimulated MPI (8 ranks x 8 cores): value={report.result:.6f}, "
          f"virtual finish={report.finish_time:.0f} units")
    print("polynomial_evaluation OK")


if __name__ == "__main__":
    main()
