"""AB10 — stage fusion vs the per-stage sink chain (megamorphic dispatch).

AB9 removed the per-*element* interpretation overhead; what remains is
per-*stage* overhead: one sink dispatch plus one intermediate list per
stage per chunk.  Stage fusion (:mod:`repro.streams.fusion`) collapses
each run of adjacent stateless ops into one compiled kernel that crosses
the run in a single pass — this bench measures what that buys on deep
stateless pipelines, sequential and parallel, with the bulk path engaged
on both sides (fusion *stacks* with AB9, it does not replace it).

Two entry points:

* pytest-benchmark: ``pytest benchmarks/bench_ab10_fusion.py --benchmark-only``
  (one moderate size, fused and unfused side by side);
* CLI: ``python benchmarks/bench_ab10_fusion.py [--smoke] [--out FILE]``
  sweeps sizes 2^16..2^20 (``--smoke``: 2^12..2^13), verifies fused and
  unfused results are identical on every workload — sequential *and*
  parallel — writes a JSON report with per-measurement medians, and
  exits nonzero on any parity mismatch.  ``make bench-regression`` / the
  CI ``bench-regression`` job run this and compare the medians against
  the committed baseline ``benchmarks/results/BENCH_fusion.json``.
"""

from __future__ import annotations

import argparse
import json
import operator
import pathlib
import sys

import numpy as np
import pytest

from repro.bench.harness import repeat_average
from repro.bench.workloads import random_integers
from repro.forkjoin import ForkJoinPool
from repro.streams import fusion, fusion_stats, stream_of

N_BENCH = 2**18


# --------------------------------------------------------------------------- #
# Workload definitions (shared by pytest-benchmark and the CLI sweep).
# Each takes (data, pool, parallel) and builds the same pipeline on a
# sequential or fork/join source, so the sweep can pin fused/unfused
# parity on both engines.
# --------------------------------------------------------------------------- #

def _source(data, pool, parallel, backend=None):
    stream = stream_of(data)
    if not parallel:
        return stream
    stream = stream.parallel()
    if backend is not None:
        return stream.with_backend(backend)
    return stream.with_pool(pool)


# Module-level (picklable) stages for the workloads whose parity leg also
# runs on ``backend='process'`` — lambdas cannot cross the pickle boundary.

def _pk_add1(x):
    return x + 1


def _pk_mul3(x):
    return x * 3


def _pk_xor7(x):
    return x ^ 7


def _pk_keep(x):
    return x & 7 != 0


def _pk_combine(a, b):
    return a * 2 - b


def _wl_map4_to_list(data, pool, parallel=False):
    return (_source(data, pool, parallel)
            .map(lambda x: x + 1)
            .map(lambda x: x * 3)
            .map(lambda x: x - 2)
            .map(lambda x: x ^ 7)
            .to_list())


def _wl_map6_to_list(data, pool, parallel=False):
    return (_source(data, pool, parallel)
            .map(lambda x: x + 1)
            .map(lambda x: x * 3)
            .map(lambda x: x - 2)
            .map(lambda x: x ^ 7)
            .map(lambda x: x | 1)
            .map(lambda x: x - 9)
            .to_list())


def _wl_map_filter_map_map_sum(data, pool, parallel=False):
    return (_source(data, pool, parallel)
            .map(lambda x: x * 5)
            .filter(lambda x: x & 7 != 0)
            .map(lambda x: x - 3)
            .map(lambda x: x & 0xFFFF)
            .sum())


def _wl_flat_map_mixed_to_list(data, pool, parallel=False):
    return (_source(data, pool, parallel)
            .map(lambda x: x & 0xFF)
            .flat_map(lambda x: (x, -x) if x & 15 == 0 else (x,))
            .filter(lambda x: x != 3)
            .map(lambda x: x * 2)
            .to_list())


def _wl_map4_limit(data, pool, parallel=False):
    # Short-circuiting pipeline.  Unfused it runs per-element; fused, the
    # ``limit`` compiles into a counted-window kernel and the whole chain
    # rides the chunked path, so the win here is per-element dispatch
    # *plus* chunking — well past the ~2x of pure stage fusion.
    return (_source(data, pool, parallel)
            .map(lambda x: x + 1)
            .map(lambda x: x * 3)
            .map(lambda x: x - 2)
            .map(lambda x: x ^ 7)
            .limit(max(len(data) // 2, 1))
            .to_list())


def _wl_counted_window(data, pool, parallel=False, backend=None):
    # skip+limit over pure maps -> counted-window kernel: both budgets
    # hoist to one source-index window sliced off each chunk.
    n = len(data)
    return (_source(data, pool, parallel, backend)
            .map(_pk_add1)
            .map(_pk_mul3)
            .skip(n // 4)
            .limit(max(n // 2, 1))
            .to_list())


def _wl_counted_loop_sum(data, pool, parallel=False, backend=None):
    # filter under limit -> counted-loop kernel (statement loop with an
    # exact budget cut); on ``backend='process'`` a satisfied budget also
    # aborts sibling leaves through the shared cancel flag.  Reduce with
    # ``operator.add`` (not ``sum()``) so the terminal stays picklable.
    return (_source(data, pool, parallel, backend)
            .map(_pk_add1)
            .filter(_pk_keep)
            .map(_pk_xor7)
            .limit(max(len(data) // 2, 1))
            .reduce(0, operator.add))


def _wl_zip_with_to_list(data, pool, parallel=False, backend=None):
    # Two fused sides drained in lockstep by one two-cursor kernel.
    left = (_source(data, pool, parallel, backend)
            .map(_pk_add1)
            .map(_pk_mul3))
    right = stream_of(data).map(_pk_xor7).filter(_pk_keep)
    return left.zip_with(right, _pk_combine).to_list()


def _wl_ufunc_chain_sum(data, pool, parallel=False):
    return (_source(np.asarray(data), pool, parallel)
            .map(np.square)
            .map(np.abs)
            .map(np.sqrt)
            .sum())


def _wl_par_map4_to_list(data, pool, parallel=True):
    return _wl_map4_to_list(data, pool, parallel=True)


WORKLOADS = [
    ("map4_to_list", _wl_map4_to_list),
    ("map6_to_list", _wl_map6_to_list),
    ("map_filter_map_map_sum", _wl_map_filter_map_map_sum),
    ("flat_map_mixed_to_list", _wl_flat_map_mixed_to_list),
    ("map4_limit", _wl_map4_limit),
    ("counted_window", _wl_counted_window),
    ("counted_loop_sum", _wl_counted_loop_sum),
    ("zip_with_to_list", _wl_zip_with_to_list),
    ("ufunc_chain_sum", _wl_ufunc_chain_sum),
    ("par_map4_to_list", _wl_par_map4_to_list),
]

#: Workloads whose timed leg already runs on the fork/join pool.
PARALLEL_WORKLOADS = {"par_map4_to_list"}

#: Workloads (picklable stages only) whose parity leg additionally runs
#: on both parallel backends — fork/join threads *and* multiprocess.
BACKEND_PARITY_WORKLOADS = {"counted_window", "counted_loop_sum"}


def _results_equal(a, b):
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(x == y for x, y in zip(a, b))
    return bool(a == b)


# --------------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def data():
    return random_integers(N_BENCH, seed=1234)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=8, name="ab10")
    yield p
    p.shutdown()


@pytest.mark.parametrize("name,fn", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def bench_ab10_unfused(benchmark, data, pool, name, fn):
    with fusion(False):
        benchmark(lambda: fn(data, pool))


@pytest.mark.parametrize("name,fn", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def bench_ab10_fused(benchmark, data, pool, name, fn):
    with fusion(True):
        benchmark(lambda: fn(data, pool))


# --------------------------------------------------------------------------- #
# CLI sweep: parity gate + JSON report with medians
# --------------------------------------------------------------------------- #

def run_sweep(sizes, runs, pool):
    """Measure every workload at every size, fused and unfused.

    Each sequential workload is additionally parity-checked on the
    parallel leaves (fused vs unfused vs the sequential result), so the
    report pins exact result agreement across fused/unfused ×
    sequential/parallel.  Returns ``(rows, parity_ok)``; timing is
    informational, parity (and fusion actually engaging) is the hard
    gate.
    """
    rows = []
    parity_ok = True
    for size in sizes:
        data = random_integers(size, seed=1234)
        for name, fn in WORKLOADS:
            with fusion(True):
                fusion_stats(reset=True)
                fused_result = fn(data, pool)
                engaged = fusion_stats()["pipelines_fused"] > 0
                fused = repeat_average(lambda: fn(data, pool), runs=runs)
            with fusion(False):
                unfused_result = fn(data, pool)
                unfused = repeat_average(lambda: fn(data, pool), runs=runs)
            parity = _results_equal(fused_result, unfused_result)
            if name in PARALLEL_WORKLOADS:
                par_parity = parity  # the timed leg is the parallel leg
            else:
                with fusion(True):
                    par_fused = fn(data, pool, parallel=True)
                with fusion(False):
                    par_unfused = fn(data, pool, parallel=True)
                par_parity = (_results_equal(par_fused, par_unfused)
                              and _results_equal(par_fused, fused_result))
            if name in BACKEND_PARITY_WORKLOADS:
                # Three-backend gate: sequential result == threads ==
                # process, fused and unfused alike.
                for backend in ("threads", "process"):
                    with fusion(True):
                        backend_fused = fn(
                            data, pool, parallel=True, backend=backend)
                    with fusion(False):
                        backend_unfused = fn(
                            data, pool, parallel=True, backend=backend)
                    par_parity = (
                        par_parity
                        and _results_equal(backend_fused, backend_unfused)
                        and _results_equal(backend_fused, fused_result))
            parity_ok &= parity and par_parity and engaged
            rows.append({
                "workload": name,
                "size": size,
                "unfused_ms": round(unfused.median_ms, 3),
                "fused_ms": round(fused.median_ms, 3),
                "speedup": round(unfused.median / fused.median, 2)
                if fused.median else None,
                "parity": parity,
                "parallel_parity": par_parity,
                "fusion_engaged": engaged,
            })
            flag = "" if parity and par_parity else "  PARITY MISMATCH"
            if not engaged:
                flag += "  FUSION DID NOT ENGAGE"
            print(f"{name:>24} n=2^{size.bit_length() - 1:<2} "
                  f"unfused {unfused.median_ms:9.2f} ms   "
                  f"fused {fused.median_ms:9.2f} ms   "
                  f"x{unfused.median / fused.median:5.2f}{flag}")
    return rows, parity_ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI (parity gate, timings "
                             "informational)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON report here")
    parser.add_argument("--runs", type=int, default=None,
                        help="timed runs per measurement")
    args = parser.parse_args(argv)

    sizes = [2**12, 2**13] if args.smoke else [2**16, 2**18, 2**20]
    runs = args.runs if args.runs is not None else (2 if args.smoke else 5)

    pool = ForkJoinPool(parallelism=8, name="ab10-cli")
    try:
        rows, parity_ok = run_sweep(sizes, runs, pool)
    finally:
        pool.shutdown()

    report = {
        "bench": "ab10_fusion",
        "mode": "smoke" if args.smoke else "full",
        "runs": runs,
        "sizes": sizes,
        "parity_ok": parity_ok,
        "results": rows,
    }
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[written to {args.out}]")

    if not parity_ok:
        print("FAIL: fused and unfused results diverged (or fusion never "
              "engaged)", file=sys.stderr)
        return 1
    print("parity OK: fused == unfused on every workload/size, sequential "
          "and parallel")
    return 0


if __name__ == "__main__":
    sys.exit(main())
