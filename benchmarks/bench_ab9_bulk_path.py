"""AB9 — per-element vs chunked bulk execution (the §V sublist fast path).

The chunked protocol (``Spliterator.next_chunk`` feeding
``Sink.accept_chunk``) replaces one Python call *per element per stage*
with one call per chunk per stage; the per-stage loops run at C speed
(``map``, comprehensions, ``list.extend``, ``functools.reduce``).  This
bench measures what that buys on the canonical pipelines, sequential and
parallel, and doubles as the parity gate for CI.

Two entry points:

* pytest-benchmark: ``pytest benchmarks/bench_ab9_bulk_path.py --benchmark-only``
  (one moderate size, both paths side by side);
* CLI: ``python benchmarks/bench_ab9_bulk_path.py [--smoke] [--out FILE]``
  sweeps sizes 2^16..2^22 (``--smoke``: 2^12..2^13), verifies chunked and
  per-element results are identical, writes a JSON report, and exits
  nonzero on any parity mismatch — ``make bench-smoke`` / the CI job run
  this.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np
import pytest

from repro.bench.harness import repeat_average
from repro.bench.workloads import random_integers
from repro.forkjoin import ForkJoinPool
from repro.streams import Stream, bulk_execution, stream_of

N_BENCH = 2**18


# --------------------------------------------------------------------------- #
# Workload definitions (shared by pytest-benchmark and the CLI sweep)
# --------------------------------------------------------------------------- #

def _wl_map_to_list(data, pool):
    return stream_of(data).map(lambda x: x + 1).to_list()


def _wl_filter_map_to_list(data, pool):
    return (stream_of(data)
            .filter(lambda x: x & 1 == 0)
            .map(lambda x: x * 3)
            .to_list())


def _wl_range_map_sum(data, pool):
    return Stream.range(0, len(data)).map(lambda x: x * 2).sum()


def _wl_ufunc_map_sum(data, pool):
    return stream_of(np.asarray(data)).map(np.square).sum()


def _wl_par_map_to_list(data, pool):
    return (stream_of(data).parallel().with_pool(pool)
            .map(lambda x: x + 1).to_list())


WORKLOADS = [
    ("map_to_list", _wl_map_to_list),
    ("filter_map_to_list", _wl_filter_map_to_list),
    ("range_map_sum", _wl_range_map_sum),
    ("ufunc_map_sum", _wl_ufunc_map_sum),
    ("par_map_to_list", _wl_par_map_to_list),
]


def _results_equal(a, b):
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(x == y for x, y in zip(a, b))
    return bool(a == b)


# --------------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def data():
    return random_integers(N_BENCH, seed=99)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=8, name="ab9")
    yield p
    p.shutdown()


@pytest.mark.parametrize("name,fn", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def bench_ab9_element(benchmark, data, pool, name, fn):
    with bulk_execution(False):
        benchmark(lambda: fn(data, pool))


@pytest.mark.parametrize("name,fn", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def bench_ab9_chunked(benchmark, data, pool, name, fn):
    with bulk_execution(True):
        benchmark(lambda: fn(data, pool))


# --------------------------------------------------------------------------- #
# CLI sweep: parity gate + JSON report
# --------------------------------------------------------------------------- #

def run_sweep(sizes, runs, pool):
    """Measure every workload at every size in both modes.

    Returns (rows, parity_ok).  Timing is informational; parity is the
    hard gate.
    """
    rows = []
    parity_ok = True
    for size in sizes:
        data = random_integers(size, seed=99)
        for name, fn in WORKLOADS:
            with bulk_execution(True):
                chunked_result = fn(data, pool)
                chunked = repeat_average(lambda: fn(data, pool), runs=runs)
            with bulk_execution(False):
                element_result = fn(data, pool)
                element = repeat_average(lambda: fn(data, pool), runs=runs)
            parity = _results_equal(chunked_result, element_result)
            parity_ok &= parity
            rows.append({
                "workload": name,
                "size": size,
                "element_ms": round(element.mean_ms, 3),
                "chunked_ms": round(chunked.mean_ms, 3),
                "speedup": round(element.mean / chunked.mean, 2)
                if chunked.mean else None,
                "parity": parity,
            })
            flag = "" if parity else "  PARITY MISMATCH"
            print(f"{name:>20} n=2^{size.bit_length() - 1:<2} "
                  f"element {element.mean_ms:9.2f} ms   "
                  f"chunked {chunked.mean_ms:9.2f} ms   "
                  f"x{element.mean / chunked.mean:5.2f}{flag}")
    return rows, parity_ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI (parity gate, timings "
                             "informational)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON report here")
    parser.add_argument("--runs", type=int, default=None,
                        help="timed runs per measurement")
    args = parser.parse_args(argv)

    sizes = [2**12, 2**13] if args.smoke else [2**16, 2**18, 2**20, 2**22]
    runs = args.runs if args.runs is not None else (2 if args.smoke else 3)

    pool = ForkJoinPool(parallelism=8, name="ab9-cli")
    try:
        rows, parity_ok = run_sweep(sizes, runs, pool)
    finally:
        pool.shutdown()

    report = {
        "bench": "ab9_bulk_path",
        "mode": "smoke" if args.smoke else "full",
        "runs": runs,
        "sizes": sizes,
        "parity_ok": parity_ok,
        "results": rows,
    }
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[written to {args.out}]")

    if not parity_ok:
        print("FAIL: chunked and per-element results diverged", file=sys.stderr)
        return 1
    print("parity OK: chunked == per-element on every workload/size")
    return 0


if __name__ == "__main__":
    sys.exit(main())
