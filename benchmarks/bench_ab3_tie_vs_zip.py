"""AB3 — tie vs zip memory-access patterns (Section V claim).

Claim under test: "depending on the system (caches, etc.) properties or
data representation, linear or cyclic data distributions could lead to
better performance" — i.e. the choice of deconstruction operator matters
through locality.  Under the cache-aware cost model (stride penalty), tie
keeps unit stride and wins; the penalty-free model shows parity.  The
real benches time both spliterators on actual lists (Python lists have no
hardware stride effect — that is exactly why the model carries the knob).
"""

import pytest

from repro.bench.figures import ab3_tie_vs_zip_series
from repro.bench.reporting import format_table
from repro.bench.workloads import random_integers
from repro.core import PowerMapCollector, power_collect
from repro.forkjoin import ForkJoinPool

REAL_N = 2**14


@pytest.fixture(scope="module")
def data():
    return random_integers(REAL_N)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=8, name="ab3")
    yield p
    p.shutdown()


def bench_ab3_series(benchmark, write_report):
    rows = benchmark(lambda: ab3_tie_vs_zip_series(stride_penalty=0.25))
    flat = ab3_tie_vs_zip_series(stride_penalty=0.0, sizes=[2**18])
    table = format_table(
        ["n", "tie_ms", "zip_ms", "zip/tie"],
        [[r["n"], r["tie_ms"], r["zip_ms"], r["zip_over_tie"]] for r in rows],
        title="AB3: map under tie vs zip decomposition (stride penalty 0.25)",
    )
    write_report("ab3_tie_vs_zip", table)
    assert all(r["zip_over_tie"] > 1.2 for r in rows), "strided zip pays locality cost"
    assert abs(flat[0]["zip_over_tie"] - 1.0) < 0.01, "no penalty → parity"


def bench_ab3_real_tie_map(benchmark, data, pool):
    out = benchmark(
        lambda: power_collect(PowerMapCollector(lambda x: x + 1, "tie"), data, pool=pool)
    )
    assert out == [x + 1 for x in data]


def bench_ab3_real_zip_map(benchmark, data, pool):
    out = benchmark(
        lambda: power_collect(PowerMapCollector(lambda x: x + 1, "zip"), data, pool=pool)
    )
    assert out == [x + 1 for x in data]
