"""AB7 — program transformations: descend-state vs tupled vs vectorized.

Two claims orthogonal to the figures:

1. §II (citing [22]): "function transformations could be applied — such
   as tupling — in order to eliminate these additional computations".
   ``PolynomialValueTupled`` removes the descending phase entirely; the
   bench measures what that buys in real wall-clock against the faithful
   shared-state ``PolynomialValue``.
2. §V: leaf computations can be specialized via ``forEachRemaining``;
   the vectorized collectors replace per-element accumulation with numpy
   kernels — the one axis where this host shows *real* (non-simulated)
   speedups.
"""

import numpy as np
import pytest

from repro.bench.workloads import random_coefficients
from repro.core import (
    polynomial_value,
    polynomial_value_tupled,
    vectorized_fft,
    vectorized_polynomial_value,
)
from repro.core.fft import fft_sequential
from repro.forkjoin import ForkJoinPool

N = 2**14
X = 0.9999


@pytest.fixture(scope="module")
def coeffs():
    return random_coefficients(N, seed=77)


@pytest.fixture(scope="module")
def coeffs_array(coeffs):
    return np.asarray(coeffs)


@pytest.fixture(scope="module")
def reference(coeffs):
    return np.polyval(coeffs, X)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=8, name="ab7")
    yield p
    p.shutdown()


def bench_ab7_poly_descend_state(benchmark, coeffs, reference, pool):
    """Faithful §IV collector: PZipSpliterator + shared x_degree."""
    out = benchmark(lambda: polynomial_value(coeffs, X, pool=pool))
    assert out == pytest.approx(reference, rel=1e-9)


def bench_ab7_poly_tupled(benchmark, coeffs, reference, pool):
    """The [22] tupling transformation: plain tie, no descend phase."""
    out = benchmark(lambda: polynomial_value_tupled(coeffs, X, pool=pool))
    assert out == pytest.approx(reference, rel=1e-9)


def bench_ab7_poly_vectorized(benchmark, coeffs_array, reference, pool):
    """Vectorized leaves: numpy dot-product basic cases."""
    out = benchmark(lambda: vectorized_polynomial_value(coeffs_array, X, pool=pool))
    assert out == pytest.approx(reference, rel=1e-9)


def bench_ab7_fft_scalar_leaf(benchmark):
    """Scalar recursive FFT (the reference basic case)."""
    rng = np.random.default_rng(5)
    data = list(rng.standard_normal(2**12) + 0j)
    out = benchmark(lambda: fft_sequential(data))
    np.testing.assert_allclose(out, np.fft.fft(data), rtol=1e-8, atol=1e-8)


def bench_ab7_fft_vectorized(benchmark, pool):
    """Vectorized FFT collector: np.fft leaves + array butterflies."""
    rng = np.random.default_rng(5)
    data = rng.standard_normal(2**12) + 0j
    out = benchmark(lambda: vectorized_fft(data, pool=pool))
    np.testing.assert_allclose(out, np.fft.fft(data), rtol=1e-8, atol=1e-8)


def bench_ab7_summary(benchmark, coeffs, coeffs_array, reference, write_report):
    """One-shot comparison table (5-run sample statistics, paper protocol)."""
    from repro.bench import format_timing_table, repeat_average

    def build():
        engines = {
            "descend-state (faithful §IV)": lambda: polynomial_value(
                coeffs, X, parallel=False
            ),
            "tupled ([22] transformation)": lambda: polynomial_value_tupled(
                coeffs, X, parallel=False
            ),
            "vectorized leaves (numpy)": lambda: vectorized_polynomial_value(
                coeffs_array, X, parallel=False
            ),
        }
        timings = []
        for name, fn in engines.items():
            assert fn() == pytest.approx(reference, rel=1e-9)
            timings.append((name, repeat_average(fn, runs=5)))
        return timings

    timings = benchmark.pedantic(build, rounds=1, iterations=1)
    write_report(
        "ab7_transformations",
        format_timing_table(
            timings,
            title="AB7: polynomial value engines at n=2^14 (real wall-clock, sequential)",
        ),
    )
    times = {name: t.mean_ms for name, t in timings}
    assert times["vectorized leaves (numpy)"] < times["descend-state (faithful §IV)"]
