"""AB1 — map/reduce: stream adaptation vs JPLF (Section III/V claim).

Claim under test: "for applications based on simple concatenation, the
performance results are similar" between Java parallel streams and JPLF.
The virtual series compares both engines on identical DAG shapes; the
real-wall-clock benches time both implementations at laptop scale.
"""

import pytest

from repro.bench.figures import ab1_streams_vs_jplf_series
from repro.bench.reporting import format_table
from repro.bench.workloads import random_integers
from repro.core import PowerMapCollector, PowerReduceCollector, power_collect
from repro.forkjoin import ForkJoinPool
from repro.jplf import ForkJoinExecutor, JplfMap, JplfReduce
from repro.powerlist import PowerList

REAL_N = 2**14


@pytest.fixture(scope="module")
def data():
    return random_integers(REAL_N)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=8, name="ab1")
    yield p
    p.shutdown()


def bench_ab1_series(benchmark, write_report):
    rows = benchmark(ab1_streams_vs_jplf_series)
    table = format_table(
        ["function", "n", "stream_ms", "jplf_ms", "stream/jplf"],
        [
            [r["function"], r["n"], r["stream_ms"], r["jplf_ms"], r["ratio"]]
            for r in rows
        ],
        title="AB1: map/reduce — stream adaptation vs JPLF (modeled ms, 8 cores)",
    )
    write_report("ab1_streams_vs_jplf", table)
    # "Similar": within 5% at every size, converging as n grows.
    assert all(0.95 < r["ratio"] < 1.05 for r in rows)
    biggest = [r for r in rows if r["n"] == max(x["n"] for x in rows)]
    assert all(abs(r["ratio"] - 1) < 0.01 for r in biggest)


def bench_ab1_real_stream_map(benchmark, data, pool):
    out = benchmark(
        lambda: power_collect(PowerMapCollector(lambda x: x * 2, "tie"), data, pool=pool)
    )
    assert out == [x * 2 for x in data]


def bench_ab1_real_jplf_map(benchmark, data, pool):
    executor = ForkJoinExecutor(pool)
    out = benchmark(lambda: executor.execute(JplfMap(PowerList(data), lambda x: x * 2)))
    assert out == [x * 2 for x in data]


def bench_ab1_real_stream_reduce(benchmark, data, pool):
    out = benchmark(
        lambda: power_collect(
            PowerReduceCollector(lambda a, b: a + b, "tie"), data, pool=pool
        )
    )
    assert out == sum(data)


def bench_ab1_real_jplf_reduce(benchmark, data, pool):
    executor = ForkJoinExecutor(pool)
    out = benchmark(
        lambda: executor.execute(JplfReduce(PowerList(data), lambda a, b: a + b))
    )
    assert out == sum(data)
