"""AB2 — FFT: the zip-operator function (Section V claim).

Claim under test: zip-based functions (fft) are where the two-operator
PowerList theory pays off; the stream adaptation handles them through the
specialized ``ZipSpliterator`` + leaf ``basic_case`` mechanism.  Virtual
series for the speedup trend; real benches exercise the stream FFT, the
JPLF FFT and numpy's FFT for scale.
"""

import numpy as np
import pytest

from repro.bench.figures import ab2_fft_series
from repro.bench.reporting import format_table
from repro.bench.workloads import random_complex_signal
from repro.core import fft
from repro.forkjoin import ForkJoinPool
from repro.jplf import ForkJoinExecutor, JplfFft
from repro.powerlist import PowerList

REAL_N = 2**12


@pytest.fixture(scope="module")
def signal():
    return random_complex_signal(REAL_N)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=8, name="ab2")
    yield p
    p.shutdown()


def bench_ab2_series(benchmark, write_report):
    rows = benchmark(ab2_fft_series)
    table = format_table(
        ["n", "sequential_ms", "parallel_ms", "speedup", "combine_levels"],
        [
            [r["n"], r["sequential_ms"], r["parallel_ms"], r["speedup"],
             r["combine_levels"]]
            for r in rows
        ],
        title="AB2: FFT — modeled sequential vs parallel (8 cores)",
    )
    write_report("ab2_fft", table)
    speedups = [r["speedup"] for r in rows]
    assert speedups == sorted(speedups), "FFT speedup grows with size"
    assert speedups[-1] > 5.0


def bench_ab2_real_stream_fft(benchmark, signal, pool):
    out = benchmark(lambda: fft(signal, pool=pool))
    np.testing.assert_allclose(out, np.fft.fft(signal), rtol=1e-8, atol=1e-8)


def bench_ab2_real_jplf_fft(benchmark, signal, pool):
    executor = ForkJoinExecutor(pool)
    out = benchmark(lambda: executor.execute(JplfFft(PowerList(signal))))
    np.testing.assert_allclose(out, np.fft.fft(signal), rtol=1e-8, atol=1e-8)


def bench_ab2_real_numpy_fft(benchmark, signal):
    benchmark(lambda: np.fft.fft(signal))
