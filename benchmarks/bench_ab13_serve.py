"""AB13 — the multi-tenant serve layer under overload and chaos.

The robustness PRs hardened one pipeline at a time; :mod:`repro.serve`
(ROADMAP item 3) multiplexes *many* clients onto the shared compute
pools.  This bench pins the three service-level claims that matter for a
front door:

* **fairness** — 8 equal-weight tenants offering jobs at 2× the
  service's admission capacity (queue + in-flight slots) must make
  comparable progress: the min/max completed-job ratio across tenants
  stays ≥ :data:`FAIRNESS_FLOOR` (deficit round-robin plus bounded
  queues, not first-come-hogs-all);
* **fast-fail rejection** — an admission verdict against a full queue is
  an O(1) lock-scoped check: the median rejected ``submit`` must return
  in under :data:`REJECTION_GATE_MS` (an overloaded service answers
  quickly, it never buffers unboundedly);
* **chaos containment** — a seeded worker-kill
  (``FaultPlan(seed).inject("proc:worker-*", "kill")``) aimed at the one
  tenant running on the process backend must not leak: every *other*
  tenant's results stay exact during the strike, and the service accepts
  and completes new work from every tenant afterwards.

The chaos seed comes from ``.github/chaos-seeds.json`` via
``--chaos-seed`` so `make serve-load` and the CI job replay the same
deterministic strike.

Two entry points:

* pytest-benchmark: ``pytest benchmarks/bench_ab13_serve.py
  --benchmark-only`` (submit→result round-trip latency);
* CLI: ``python benchmarks/bench_ab13_serve.py [--smoke]
  [--chaos-seed N] [--out FILE]`` — gates enforced, non-zero exit on
  violation (consumed by `make serve-load` and the CI ``serve-load``
  job; the committed baseline is ``benchmarks/results/BENCH_serve.json``).
"""

from __future__ import annotations

import argparse
import json
import operator
import os
import pathlib
import sys
import threading
import time

import pytest

from repro.faults import FaultPlan, fault_injection
from repro.serve import AdmissionError, ExecutionService

TENANTS = 8
FAIRNESS_FLOOR = 0.5
REJECTION_GATE_MS = 1.0
REJECTION_SAMPLES = 200


def _sum_pipeline(stream):
    """Module-level so the process backend can pickle the op chain."""
    return stream.reduce(0, operator.add)


def _tenant_names():
    return [f"tenant-{i}" for i in range(TENANTS)]


# --------------------------------------------------------------------------- #
# Leg 1: fairness at 2x admission capacity
# --------------------------------------------------------------------------- #


def run_fairness(waves: int, data_size: int):
    """8 tenants each offer their share of 2× capacity per wave.

    Every tenant thread submits its wave quota back-to-back (rejections
    are counted, not retried — the service's answer under overload IS
    the behavior being measured), the wave drains, and the next wave
    repeats the stampede.  Completed counts then tell us who actually
    got compute time.
    """
    service = ExecutionService(max_workers=4, global_queue_limit=32)
    capacity = service.max_in_flight + service._queue.global_limit
    offered_per_wave = 2 * capacity
    per_tenant = max(offered_per_wave // TENANTS, 1)
    service.register_dataset("numbers", list(range(data_size)))
    # The bounded per-tenant queue is the fairness mechanism at
    # admission time: partition the global budget so no stampeding
    # tenant can occupy every slot before the others reach the lock.
    for name in _tenant_names():
        service.register_tenant(
            name, queue_limit=max(capacity // TENANTS, 1)
        )
    completed = dict.fromkeys(_tenant_names(), 0)
    rejected = dict.fromkeys(_tenant_names(), 0)
    try:
        service.start()
        for _ in range(waves):
            tickets: dict[str, list] = {n: [] for n in _tenant_names()}
            barrier = threading.Barrier(TENANTS)

            def stampede(name):
                barrier.wait()
                for _ in range(per_tenant):
                    try:
                        tickets[name].append(
                            service.submit(name, "numbers", _sum_pipeline)
                        )
                    except AdmissionError:
                        rejected[name] += 1

            threads = [
                threading.Thread(target=stampede, args=(n,))
                for n in _tenant_names()
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for name, batch in tickets.items():
                for ticket in batch:
                    ticket.wait(60.0)
                    if ticket.state == "done":
                        completed[name] += 1
    finally:
        service.shutdown()
    counts = list(completed.values())
    ratio = (min(counts) / max(counts)) if max(counts) else 0.0
    return {
        "tenants": TENANTS,
        "capacity": capacity,
        "offered_per_wave": per_tenant * TENANTS,
        "waves": waves,
        "completed": completed,
        "rejected": rejected,
        "min_max_ratio": round(ratio, 3),
        "gate": FAIRNESS_FLOOR,
        "ok": ratio >= FAIRNESS_FLOOR,
    }


# --------------------------------------------------------------------------- #
# Leg 2: rejection fast-fail latency
# --------------------------------------------------------------------------- #


def run_rejection_latency(samples: int = REJECTION_SAMPLES):
    """Median wall time of a rejected submit against a saturated tenant."""
    service = ExecutionService(max_workers=1, global_queue_limit=64)
    service.register_dataset("numbers", list(range(64)))
    service.register_tenant("hog", queue_limit=1)
    release = threading.Event()
    entered = threading.Event()

    def blocker(stream):
        entered.set()
        release.wait(60.0)
        return None

    latencies = []
    try:
        service.submit("hog", "numbers", blocker)
        assert entered.wait(10.0), "blocker never started"
        service.submit("hog", "numbers", _sum_pipeline)  # fills the queue
        for _ in range(samples):
            start = time.perf_counter_ns()
            try:
                service.submit("hog", "numbers", _sum_pipeline)
            except AdmissionError:
                pass
            latencies.append(time.perf_counter_ns() - start)
    finally:
        release.set()
        service.shutdown()
    latencies.sort()
    median_ms = latencies[len(latencies) // 2] / 1e6
    p99_ms = latencies[min(int(len(latencies) * 0.99), len(latencies) - 1)] / 1e6
    return {
        "samples": samples,
        "median_ms": round(median_ms, 4),
        "p99_ms": round(p99_ms, 4),
        "gate_ms": REJECTION_GATE_MS,
        "ok": median_ms < REJECTION_GATE_MS,
    }


# --------------------------------------------------------------------------- #
# Leg 3: chaos — worker-kill against one tenant's process backend
# --------------------------------------------------------------------------- #


def run_chaos(seed: int, jobs_per_tenant: int, data_size: int):
    """Kill a process-pool worker under tenant-0; nobody else may notice.

    tenant-0 runs on the process backend (the strike surface — the
    ``proc:worker-*`` kill only fires there); the other seven run on
    threads.  Gates: every non-victim result exact during the strike,
    and one follow-up job per tenant (victim included) completes after.
    """
    data = list(range(data_size))
    expected = sum(data)
    service = ExecutionService(max_workers=2, global_queue_limit=128)
    service.register_dataset("numbers", data)
    for name in _tenant_names():
        service.register_tenant(name, queue_limit=64)
    plan = FaultPlan(seed=seed, name=f"ab13-chaos-{seed}")
    plan.inject("proc:worker-*", "kill", times=1)
    try:
        service.start()
        with fault_injection(plan):
            tickets = {}
            for name in _tenant_names():
                backend = "process" if name == "tenant-0" else "threads"
                count = jobs_per_tenant if backend == "process" else (
                    jobs_per_tenant * 2
                )
                tickets[name] = [
                    service.submit(
                        name, "numbers", _sum_pipeline, backend=backend
                    )
                    for _ in range(count)
                ]
            for batch in tickets.values():
                for ticket in batch:
                    ticket.wait(120.0)
        others_exact = all(
            ticket.state == "done" and ticket.result(0.0) == expected
            for name, batch in tickets.items()
            if name != "tenant-0"
            for ticket in batch
        )
        victim_states = [t.state for t in tickets["tenant-0"]]
        victim_exact = all(
            t.state == "done" and t.result(0.0) == expected
            for t in tickets["tenant-0"]
            if t.state == "done"
        )
        # The service must still be a service: fresh work from every
        # tenant (victim included, back on threads) completes exactly.
        after = [
            service.submit(name, "numbers", _sum_pipeline)
            for name in _tenant_names()
        ]
        accepting_after = all(t.result(60.0) == expected for t in after)
        stats = service.stats()["tenants"]
        return {
            "seed": seed,
            "victim": "tenant-0",
            "strikes": plan.stats()["injected"],
            "victim_states": victim_states,
            "victim_done_results_exact": victim_exact,
            "victim_stats": {
                k: stats["tenant-0"][k]
                for k in ("completed", "failed", "degraded", "cancelled")
            },
            "others_exact": others_exact,
            "accepting_after": accepting_after,
            "ok": others_exact and accepting_after,
        }
    finally:
        service.shutdown()


# --------------------------------------------------------------------------- #
# pytest-benchmark entry point
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def served():
    service = ExecutionService(max_workers=2)
    service.register_dataset("numbers", list(range(4096)))
    service.register_tenant("bench")
    service.start()
    yield service
    service.shutdown()


def bench_ab13_submit_roundtrip(benchmark, served):
    """submit → result wall time for one small job through the service."""
    expected = sum(range(4096))

    def roundtrip():
        assert (
            served.submit("bench", "numbers", _sum_pipeline).result(30.0)
            == expected
        )

    benchmark(roundtrip)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI (gates still enforced)")
    parser.add_argument("--chaos-seed", type=int, default=11,
                        help="FaultPlan seed for the worker-kill leg "
                             "(CI feeds one from .github/chaos-seeds.json)")
    parser.add_argument("--skip-chaos", action="store_true",
                        help="run only the fairness and rejection legs")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)

    waves = 2 if args.smoke else 4
    data_size = 2**10 if args.smoke else 2**12
    chaos_jobs = 1 if args.smoke else 2

    fairness = run_fairness(waves, data_size)
    print(f"fairness: min/max completed ratio x{fairness['min_max_ratio']} "
          f"across {TENANTS} tenants at 2x capacity "
          f"({'OK' if fairness['ok'] else 'BELOW FLOOR'})")

    rejection = run_rejection_latency()
    print(f"rejection: median {rejection['median_ms']:.4f} ms, "
          f"p99 {rejection['p99_ms']:.4f} ms over {rejection['samples']} "
          f"fast-fails ({'OK' if rejection['ok'] else 'TOO SLOW'})")

    chaos = None
    if not args.skip_chaos:
        chaos = run_chaos(args.chaos_seed, chaos_jobs, data_size)
        print(f"chaos: seed {chaos['seed']}, {chaos['strikes']} worker-kill "
              f"strike(s) on {chaos['victim']}; others exact: "
              f"{chaos['others_exact']}, accepting after: "
              f"{chaos['accepting_after']} "
              f"({'OK' if chaos['ok'] else 'LEAKED'})")

    ok = fairness["ok"] and rejection["ok"] and (
        chaos is None or chaos["ok"]
    )
    report = {
        "bench": "ab13_serve",
        "mode": "smoke" if args.smoke else "full",
        "cpu_count": os.cpu_count(),
        "fairness": fairness,
        "rejection": rejection,
        "chaos": chaos,
        "ok": ok,
    }
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[written to {args.out}]")

    if not ok:
        print("FAIL: a serve-layer gate was violated", file=sys.stderr)
        return 1
    print("serve gates OK: fair progress, fast-fail rejection, "
          "contained chaos")
    return 0


if __name__ == "__main__":
    sys.exit(main())
