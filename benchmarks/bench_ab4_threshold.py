"""AB4 — leaf-size (split-threshold) sensitivity (Section V discussion).

The paper notes that "the splitting is automatically stopped when a limit
that depends on the system is attained" and that basic cases land on
non-singleton sublists.  This ablation sweeps the leaf size for
polynomial evaluation at fixed n: tiny leaves drown in per-node overhead,
huge leaves starve the 8 workers; the sweet spot brackets Java's
``n/(4p)`` rule, validating the default.
"""

import pytest

from repro.bench.figures import ab4_threshold_series
from repro.bench.reporting import format_table
from repro.bench.workloads import random_coefficients
from repro.core import polynomial_value
from repro.forkjoin import ForkJoinPool

N = 2**16


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=8, name="ab4")
    yield p
    p.shutdown()


def bench_ab4_series(benchmark, write_report):
    rows = benchmark(lambda: ab4_threshold_series(n=N, workers=8))
    table = format_table(
        ["leaf_size", "leaves", "parallel_ms", "speedup", "steals"],
        [
            [r["leaf_size"], r["leaves"], r["parallel_ms"], r["speedup"], r["steals"]]
            for r in rows
        ],
        title=f"AB4: leaf-size sweep, polynomial value, n=2^16, 8 simulated cores",
    )
    write_report("ab4_threshold", table)
    by_leaf = {r["leaf_size"]: r["speedup"] for r in rows}
    best_leaf = max(by_leaf, key=by_leaf.get)
    java_default = N // (4 * 8)
    # The optimum brackets Java's target-size rule within ~8x.
    assert java_default / 8 <= best_leaf <= java_default * 8
    # Monotone penalties on both flanks.
    assert by_leaf[1] < by_leaf[best_leaf] / 10, "singleton leaves are overhead-bound"
    assert by_leaf[max(by_leaf)] <= by_leaf[best_leaf], "oversized leaves starve workers"


@pytest.mark.parametrize("target_size", [64, 512, 4096])
def bench_ab4_real_threshold(benchmark, pool, target_size):
    """Real wall-clock at three thresholds (code-path validation)."""
    coeffs = random_coefficients(2**13)
    import numpy as np

    out = benchmark(
        lambda: polynomial_value(coeffs, 0.999, pool=pool, target_size=target_size)
    )
    assert out == pytest.approx(np.polyval(coeffs, 0.999), rel=1e-9)
