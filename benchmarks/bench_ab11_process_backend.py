"""AB11 — process backend vs threads vs sequential (GIL escape).

AB9/AB10 removed interpretation overhead *per element* and *per stage*;
what remains is the GIL: a thread-pool leaf running pure-Python work
cannot overlap with its siblings, so Python-heavy pipelines flatline
near 1x no matter the parallelism.  The process backend
(``Stream.with_backend('process')``) runs leaves in worker processes —
Python-heavy leaves scale with cores, at the price of shipping.  This
bench pins the A/B/C comparison on the two extremes:

* ``python_heavy`` — a per-element integer hash loop (exact integer
  arithmetic, so parity is bit-exact).  Threads flatline here; processes
  are the only escape.  Target on an 8-core machine: >4x over
  sequential while threads stay under 1.5x.
* ``ufunc_heavy`` — numpy ufunc stages on the chunked path.  These
  release the GIL inside C loops, so threads already scale and
  processes mostly pay shipping overhead — the case where processes
  *lose*; the bench records it honestly.

The source array is shared via :func:`repro.powerlist.shm.share_array`,
so process leaves ship as zero-copy shared-memory descriptors (the
report records the shipping mode).  Exact result parity across all
three backends is the hard gate; timings are informational and
machine-dependent (the committed baseline records the host core count —
on a single-core container every backend necessarily measures ~1x and
the process leg only shows its overhead).

Two entry points:

* pytest-benchmark: ``pytest benchmarks/bench_ab11_process_backend.py
  --benchmark-only``;
* CLI: ``python benchmarks/bench_ab11_process_backend.py [--smoke]
  [--out FILE]`` — sweeps sizes, gates parity, writes the JSON report
  consumed by ``benchmarks/check_regression.py`` against the committed
  baseline ``benchmarks/results/BENCH_process_backend.json``.
"""

from __future__ import annotations

import argparse
import json
import operator
import os
import pathlib
import sys

import numpy as np
import pytest

from repro.bench.harness import repeat_average
from repro.bench.workloads import random_integers
from repro.forkjoin import ForkJoinPool
from repro.powerlist import shm
from repro.streams import Stream
from repro.streams import process_backend as pb

N_BENCH = 2**16


def _py_heavy(x):
    """Pure-Python integer hash loop: ~µs of GIL-bound work per element."""
    acc = int(x) & 0xFFFFFFFF
    for _ in range(16):
        acc = (acc * 1103515245 + 12345) & 0x7FFFFFFF
        acc ^= acc >> 7
    return acc


def _stream(arr, backend, pool):
    stream = Stream.of_iterable(arr)
    if backend == "seq":
        return stream
    stream = stream.parallel()
    if backend == "threads":
        return stream.with_pool(pool)
    return stream.with_backend("process")


def _wl_python_heavy(arr, backend, pool):
    return _stream(arr, backend, pool).map(_py_heavy).reduce(0, operator.add)


def _wl_ufunc_heavy(arr, backend, pool):
    return (
        _stream(arr, backend, pool)
        .map(np.square)
        .map(np.abs)
        .reduce(0, operator.add)
    )


WORKLOADS = [
    ("python_heavy", _wl_python_heavy),
    ("ufunc_heavy", _wl_ufunc_heavy),
]


# --------------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def shared_data():
    arr = shm.share_array(random_integers(N_BENCH, seed=1111, hi=1000))
    yield arr
    shm.release(arr)
    pb.shutdown_shared_executor()


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=8, name="ab11")
    yield p
    p.shutdown()


@pytest.mark.parametrize("name,fn", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def bench_ab11_sequential(benchmark, shared_data, pool, name, fn):
    benchmark(lambda: fn(shared_data, "seq", pool))


@pytest.mark.parametrize("name,fn", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def bench_ab11_threads(benchmark, shared_data, pool, name, fn):
    benchmark(lambda: fn(shared_data, "threads", pool))


@pytest.mark.parametrize("name,fn", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def bench_ab11_process(benchmark, shared_data, pool, name, fn):
    benchmark(lambda: fn(shared_data, "process", pool))


# --------------------------------------------------------------------------- #
# CLI sweep: three-backend parity gate + JSON report
# --------------------------------------------------------------------------- #

def run_sweep(sizes, runs, pool):
    """Measure every workload at every size on all three backends.

    Exact result parity (sequential == threads == process) is asserted
    in-sweep and is the hard gate; ``speedup`` is sequential/process and
    ``threads_speedup`` sequential/threads, both informational.
    Returns ``(rows, parity_ok)``.
    """
    rows = []
    parity_ok = True
    for size in sizes:
        arr = shm.share_array(random_integers(size, seed=1111, hi=1000))
        try:
            shipping = pb.shipping_mode(
                Stream.of_iterable(arr)._spliterator
            )
            for name, fn in WORKLOADS:
                seq_result = fn(arr, "seq", pool)
                thr_result = fn(arr, "threads", pool)
                proc_result = fn(arr, "process", pool)
                parity = bool(seq_result == thr_result == proc_result)
                parity_ok &= parity

                seq = repeat_average(lambda: fn(arr, "seq", pool), runs=runs)
                thr = repeat_average(lambda: fn(arr, "threads", pool), runs=runs)
                proc = repeat_average(lambda: fn(arr, "process", pool), runs=runs)
                rows.append({
                    "workload": name,
                    "size": size,
                    "shipping": shipping,
                    "seq_ms": round(seq.median_ms, 3),
                    "threads_ms": round(thr.median_ms, 3),
                    "process_ms": round(proc.median_ms, 3),
                    "threads_speedup": round(seq.median / thr.median, 2)
                    if thr.median else None,
                    "speedup": round(seq.median / proc.median, 2)
                    if proc.median else None,
                    "parity": parity,
                })
                flag = "" if parity else "  PARITY MISMATCH"
                print(f"{name:>14} n=2^{size.bit_length() - 1:<2} "
                      f"seq {seq.median_ms:9.2f} ms   "
                      f"threads {thr.median_ms:9.2f} ms "
                      f"(x{seq.median / thr.median:4.2f})   "
                      f"process {proc.median_ms:9.2f} ms "
                      f"(x{seq.median / proc.median:4.2f})"
                      f"  [{shipping}]{flag}")
        finally:
            shm.release(arr)
    return rows, parity_ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI (parity gate, timings "
                             "informational)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON report here")
    parser.add_argument("--runs", type=int, default=None,
                        help="timed runs per measurement")
    args = parser.parse_args(argv)

    # Smoke sizes are deliberately larger than AB9/AB10's: below ~2^14
    # the process leg is pure fixed overhead (pool dispatch + result
    # pickling) and the speedup ratio lives in a different regime than
    # the full-size baseline the gate compares against.
    sizes = [2**14, 2**15] if args.smoke else [2**16, 2**18]
    runs = args.runs if args.runs is not None else (2 if args.smoke else 3)

    pool = ForkJoinPool(parallelism=8, name="ab11-cli")
    try:
        rows, parity_ok = run_sweep(sizes, runs, pool)
    finally:
        pool.shutdown()
        pb.shutdown_shared_executor()

    report = {
        "bench": "ab11_process_backend",
        "mode": "smoke" if args.smoke else "full",
        "runs": runs,
        "sizes": sizes,
        "cpu_count": os.cpu_count(),
        "processes": pb.default_process_count(),
        "parity_ok": parity_ok,
        "results": rows,
    }
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[written to {args.out}]")

    if not parity_ok:
        print("FAIL: backends disagreed on some workload/size",
              file=sys.stderr)
        return 1
    print("parity OK: sequential == threads == process on every "
          "workload/size")
    return 0


if __name__ == "__main__":
    sys.exit(main())
