"""Benchmark regression gate: fresh sweep vs committed baseline.

Compares the per-workload **speedup ratios** (chunked/element for AB9,
fused/unfused for AB10) of a fresh benchmark report against the
committed full-sweep baseline.  Ratios are dimensionless, so a smoke
sweep on a slow, noisy CI runner is still comparable against a baseline
recorded at full size on an idle machine — absolute milliseconds are
not.

The gate is deliberately loose: a workload fails only when its fresh
median speedup collapses below ``baseline / threshold`` (default 2.5x).
That tolerates CI noise and size-dependent variation while still
catching the failure mode that matters — an optimisation silently
stopping to engage (its ratio drops to ~1.0 while the baseline says
2x+).  Parity flags in the fresh report are a hard gate regardless of
timing.

A second, independent leg gates **profiler overhead**: with
``--overhead``, the script times an AB9-shaped workload with the
:mod:`repro.obs.profile` profiler disabled and enabled (interleaved
runs, median ratio) and fails when the enabled/disabled ratio exceeds
``--overhead-threshold`` (default 1.05 — the profiler must cost ≤5% at
its default sampling rate).

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/results/BENCH_fusion.json \
        --fresh /tmp/ab10_smoke.json [--threshold 2.5]

    python benchmarks/check_regression.py --overhead \
        [--overhead-threshold 1.05] [--overhead-runs 25]

Exits 0 when every requested gate holds, 1 on any regression, parity
failure, workload missing from the fresh report, or overhead breach.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys


def _median_speedups(report):
    """Map workload name -> median speedup across all sizes in a report."""
    by_workload = {}
    for row in report["results"]:
        if row.get("speedup") is not None:
            by_workload.setdefault(row["workload"], []).append(row["speedup"])
    return {name: statistics.median(vals) for name, vals in by_workload.items()}


def check(baseline, fresh, threshold):
    """Return a list of failure strings (empty means the gate passes)."""
    failures = []
    if not fresh.get("parity_ok", False):
        failures.append("fresh report has parity_ok=false")

    base_speedups = _median_speedups(baseline)
    fresh_speedups = _median_speedups(fresh)

    name_w = max(len(n) for n in base_speedups) if base_speedups else 8
    print(f"{'workload':>{name_w}}  baseline   fresh   floor   verdict")
    for name, base in sorted(base_speedups.items()):
        floor = base / threshold
        got = fresh_speedups.get(name)
        if got is None:
            failures.append(f"{name}: missing from fresh report")
            print(f"{name:>{name_w}}  x{base:5.2f}       —   x{floor:5.2f}   MISSING")
            continue
        ok = got >= floor
        print(f"{name:>{name_w}}  x{base:5.2f}   x{got:5.2f}   x{floor:5.2f}   "
              f"{'ok' if ok else 'REGRESSION'}")
        if not ok:
            failures.append(
                f"{name}: speedup x{got:.2f} fell below x{floor:.2f} "
                f"(baseline x{base:.2f} / {threshold})"
            )
    # Symmetric direction: a workload the fresh sweep produces but the
    # baseline lacks means the committed baseline is stale (a key was
    # dropped or the sweep grew without a baseline regen) — reject it
    # rather than silently gating on the intersection.
    for name in sorted(set(fresh_speedups) - set(base_speedups)):
        failures.append(
            f"{name}: present in fresh report but missing from baseline "
            f"— regenerate the committed baseline"
        )
        print(f"{name:>{name_w}}      —   x{fresh_speedups[name]:5.2f}"
              f"       —   STALE BASELINE")
    return failures


def _profiler_overhead(runs, size):
    """Median enabled/disabled wall-clock ratio on an AB9-shaped workload.

    Plain and profiled runs are interleaved so frequency scaling and
    noisy neighbours bias both sides equally; the ratio of medians is
    then a clean overhead estimate even on a loaded CI runner.
    """
    import time

    from repro.obs.profile import profiled
    from repro.streams.stream_support import stream_of

    data = list(range(size))

    def workload():
        return stream_of(data).filter(lambda x: x & 1 == 0).map(
            lambda x: x * 3
        ).to_list()

    expected = workload()  # warm-up; also pins correctness below
    plain, profiled_samples = [], []
    for _ in range(runs):
        start = time.perf_counter()
        got = workload()
        plain.append(time.perf_counter() - start)
        assert got == expected
        start = time.perf_counter()
        with profiled():
            got = workload()
        profiled_samples.append(time.perf_counter() - start)
        assert got == expected
    base = statistics.median(plain)
    ratio = statistics.median(profiled_samples) / base if base > 0 else 1.0
    return ratio


def check_overhead(runs, size, threshold):
    """Return failure strings for the profiler-overhead gate."""
    ratio = _profiler_overhead(runs, size)
    verdict = "ok" if ratio <= threshold else "OVERHEAD"
    print(f"profiler overhead: x{ratio:.3f} "
          f"(threshold x{threshold:.2f}, {runs} interleaved runs, "
          f"size 2^{size.bit_length() - 1})  {verdict}")
    if ratio > threshold:
        return [
            f"profiler overhead x{ratio:.3f} exceeds x{threshold:.2f} "
            f"at default sampling"
        ]
    return []


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path,
                        help="committed full-sweep BENCH_*.json")
    parser.add_argument("--fresh", type=pathlib.Path,
                        help="report from the sweep just run")
    parser.add_argument("--threshold", type=float, default=2.5,
                        help="allowed shrink factor before failing "
                             "(default: 2.5, i.e. fail only on >2.5x "
                             "regression)")
    parser.add_argument("--overhead", action="store_true",
                        help="also gate repro.obs.profile overhead at "
                             "default sampling on an AB9-shaped workload")
    parser.add_argument("--overhead-threshold", type=float, default=1.05,
                        help="max enabled/disabled wall-clock ratio "
                             "(default: 1.05 = 5%% overhead)")
    parser.add_argument("--overhead-runs", type=int, default=25,
                        help="interleaved plain/profiled run pairs "
                             "(default: 25)")
    parser.add_argument("--overhead-size", type=int, default=1 << 15,
                        help="workload size (default: 2^15)")
    args = parser.parse_args(argv)

    if args.baseline is None and args.fresh is None:
        if not args.overhead:
            parser.error("nothing to do: pass --baseline/--fresh, "
                         "--overhead, or both")
        failures = check_overhead(
            args.overhead_runs, args.overhead_size, args.overhead_threshold
        )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("regression gate OK")
        return 0
    if args.baseline is None or args.fresh is None:
        parser.error("--baseline and --fresh must be given together")

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    if baseline.get("bench") != fresh.get("bench"):
        print(f"error: baseline is {baseline.get('bench')!r} but fresh "
              f"report is {fresh.get('bench')!r}", file=sys.stderr)
        return 1

    print(f"[{fresh.get('bench')}] fresh {fresh.get('mode')} sweep vs "
          f"committed {baseline.get('mode')} baseline "
          f"(threshold {args.threshold}x)")
    failures = check(baseline, fresh, args.threshold)
    if args.overhead:
        failures += check_overhead(
            args.overhead_runs, args.overhead_size, args.overhead_threshold
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("regression gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
