"""Benchmark regression gate: fresh sweep vs committed baseline.

Compares the per-workload **speedup ratios** (chunked/element for AB9,
fused/unfused for AB10) of a fresh benchmark report against the
committed full-sweep baseline.  Ratios are dimensionless, so a smoke
sweep on a slow, noisy CI runner is still comparable against a baseline
recorded at full size on an idle machine — absolute milliseconds are
not.

The gate is deliberately loose: a workload fails only when its fresh
median speedup collapses below ``baseline / threshold`` (default 2.5x).
That tolerates CI noise and size-dependent variation while still
catching the failure mode that matters — an optimisation silently
stopping to engage (its ratio drops to ~1.0 while the baseline says
2x+).  Parity flags in the fresh report are a hard gate regardless of
timing.

Usage::

    python benchmarks/check_regression.py \
        --baseline benchmarks/results/BENCH_fusion.json \
        --fresh /tmp/ab10_smoke.json [--threshold 2.5]

Exits 0 when every workload holds, 1 on any regression, parity
failure, or workload missing from the fresh report.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys


def _median_speedups(report):
    """Map workload name -> median speedup across all sizes in a report."""
    by_workload = {}
    for row in report["results"]:
        if row.get("speedup") is not None:
            by_workload.setdefault(row["workload"], []).append(row["speedup"])
    return {name: statistics.median(vals) for name, vals in by_workload.items()}


def check(baseline, fresh, threshold):
    """Return a list of failure strings (empty means the gate passes)."""
    failures = []
    if not fresh.get("parity_ok", False):
        failures.append("fresh report has parity_ok=false")

    base_speedups = _median_speedups(baseline)
    fresh_speedups = _median_speedups(fresh)

    name_w = max(len(n) for n in base_speedups) if base_speedups else 8
    print(f"{'workload':>{name_w}}  baseline   fresh   floor   verdict")
    for name, base in sorted(base_speedups.items()):
        floor = base / threshold
        got = fresh_speedups.get(name)
        if got is None:
            failures.append(f"{name}: missing from fresh report")
            print(f"{name:>{name_w}}  x{base:5.2f}       —   x{floor:5.2f}   MISSING")
            continue
        ok = got >= floor
        print(f"{name:>{name_w}}  x{base:5.2f}   x{got:5.2f}   x{floor:5.2f}   "
              f"{'ok' if ok else 'REGRESSION'}")
        if not ok:
            failures.append(
                f"{name}: speedup x{got:.2f} fell below x{floor:.2f} "
                f"(baseline x{base:.2f} / {threshold})"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=pathlib.Path, required=True,
                        help="committed full-sweep BENCH_*.json")
    parser.add_argument("--fresh", type=pathlib.Path, required=True,
                        help="report from the sweep just run")
    parser.add_argument("--threshold", type=float, default=2.5,
                        help="allowed shrink factor before failing "
                             "(default: 2.5, i.e. fail only on >2.5x "
                             "regression)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    if baseline.get("bench") != fresh.get("bench"):
        print(f"error: baseline is {baseline.get('bench')!r} but fresh "
              f"report is {fresh.get('bench')!r}", file=sys.stderr)
        return 1

    print(f"[{fresh.get('bench')}] fresh {fresh.get('mode')} sweep vs "
          f"committed {baseline.get('mode')} baseline "
          f"(threshold {args.threshold}x)")
    failures = check(baseline, fresh, args.threshold)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("regression gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
