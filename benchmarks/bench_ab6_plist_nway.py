"""AB6 — PList n-way divide-and-conquer (Section V future work).

The paper proposes extending ``trySplit`` to return a set of spliterators
so PList functions become expressible; :mod:`repro.core.nway` implements
the proposal.  Virtual series compares arities on matched sizes (fewer
combine levels at higher arity); real benches run the actual n-way
executor.
"""

import pytest

from repro.bench.figures import ab6_nway_series
from repro.bench.reporting import format_table
from repro.core.nway import NWayMapCollector, NWayReduceCollector, nway_collect
from repro.forkjoin import ForkJoinPool


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=8, name="ab6")
    yield p
    p.shutdown()


def bench_ab6_series(benchmark, write_report):
    rows = benchmark(ab6_nway_series)
    table = format_table(
        ["n", "arity", "levels", "parallel_ms", "speedup"],
        [
            [r["n"], r["arity"], r["levels"], r["parallel_ms"], r["speedup"]]
            for r in rows
        ],
        title="AB6: PList n-way map across arities (8 simulated cores)",
    )
    write_report("ab6_plist_nway", table)
    same_n = {r["arity"]: r["speedup"] for r in rows if r["n"] == 2**12}
    # Flatter trees (higher arity) reduce combine-chain cost for map.
    assert same_n[8] > same_n[2]


@pytest.mark.parametrize("arity", [2, 3, 4])
def bench_ab6_real_nway_map(benchmark, pool, arity):
    n = arity**6
    data = list(range(n))
    out = benchmark(
        lambda: nway_collect(
            NWayMapCollector(lambda x: x * 3), data, arity=arity, pool=pool,
            target_size=max(n // (arity * 8), 1),
        )
    )
    assert out == [x * 3 for x in data]


def bench_ab6_real_nway_reduce(benchmark, pool):
    data = list(range(3**8))
    out = benchmark(
        lambda: nway_collect(
            NWayReduceCollector(lambda a, b: a + b), data, arity=3, pool=pool
        )
    )
    assert out == sum(data)
