"""Shared bench fixtures: report directory and table writer."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_report(report_dir):
    """Persist a rendered table under benchmarks/results/ and echo it."""

    def _write(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _write
