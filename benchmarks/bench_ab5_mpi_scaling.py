"""AB5 — simulated-MPI scalability (Section III claim).

Claim under test: "The MPI executors facilitate a much larger scalability
and so better performance" — distributing a large reduce over ranks each
running 8 virtual cores beats the single 8-core node, until communication
overtakes the shrinking local work.
"""

import pytest

from repro.bench.figures import ab5_mpi_series
from repro.bench.reporting import format_table

N = 2**20


def bench_ab5_series(benchmark, write_report):
    rows = benchmark.pedantic(
        lambda: ab5_mpi_series(n=N), rounds=1, iterations=1
    )
    table = format_table(
        ["ranks", "cores", "time_ms", "vs 1 node", "scatter_ms", "local_ms"],
        [
            [r["ranks"], r["cores_total"], r["time_ms"], r["vs_single_node"],
             r["scatter_ms"], r["local_ms"]]
            for r in rows
        ],
        title=f"AB5: reduce at n=2^20 on R ranks x 8 threads (alpha-beta comms)",
    )
    write_report("ab5_mpi_scaling", table)
    by_ranks = {r["ranks"]: r["vs_single_node"] for r in rows}
    assert by_ranks[1] == pytest.approx(1.0, rel=0.05), "1 rank ≈ single node"
    assert max(by_ranks.values()) > 1.5, "MPI scales beyond one node"
    best = max(by_ranks, key=by_ranks.get)
    assert best > 1, "the optimum uses multiple ranks"
    # Communication eventually erodes the gain (scalability limit visible).
    assert by_ranks[64] < max(by_ranks.values())
