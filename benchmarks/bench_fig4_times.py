"""FIG4 — absolute execution times (ms), sequential vs parallel.

Paper: Figure 4 — execution times over degrees 2^20..2^26; the sequential
time at 2^24 sits ≈3× below trend (the JVM anomaly).  Reproduced from the
same simulated series as FIG3, reported in modeled milliseconds.
"""

from repro.bench.figures import fig3_fig4_series
from repro.bench.reporting import format_table


def bench_fig4_series(benchmark, write_report):
    """Regenerate Figure 4 (times the simulation sweep)."""
    rows = benchmark(lambda: fig3_fig4_series(workers=8, anomaly=True))
    table = format_table(
        ["log2(n)", "sequential_ms", "parallel_ms"],
        [[r["log2_n"], r["sequential_ms"], r["parallel_ms"]] for r in rows],
        title="FIG4: polynomial-value execution times (modeled ms), 8 simulated cores",
    )
    write_report("fig4_times", table)

    by_log = {r["log2_n"]: r for r in rows}
    # Times grow ~2x per doubling, except the anomalous sequential 2^24.
    for log_n in range(20, 23):
        ratio = by_log[log_n + 1]["sequential_ms"] / by_log[log_n]["sequential_ms"]
        assert 1.8 < ratio < 2.2 or log_n + 1 == 24
    # The paper: sequential(2^24) is ~3x *less* than sequential(2^23).
    assert by_log[24]["sequential_ms"] < by_log[23]["sequential_ms"]
    # Parallel times are unaffected by the sequential anomaly.
    assert by_log[24]["parallel_ms"] > by_log[23]["parallel_ms"]
    # Parallel beats sequential at every size.
    assert all(r["parallel_ms"] < r["sequential_ms"] for r in rows)
