"""AB8 — scheduler design choices: steal policy and combine placement.

DESIGN.md §5 calls out the deterministic work-stealing scheduler as a
design decision; this ablation quantifies its two main knobs on the
FIG3 workload shape:

* **victim selection** — round-robin (the real pool's scan order) vs
  seeded-random (the Blumofe–Leiserson analysis model);
* **steal latency** — how sensitive the makespan is to the cost of
  moving work between workers.

Both policies must land within the greedy bound; the interesting output
is how little they differ on balanced D&C trees (the paper's workloads)
— evidence that the simulated speedups aren't an artifact of one policy.
"""

import pytest

from repro.bench.reporting import format_table
from repro.simcore import CostModel, SimMachine, build_dc_dag, greedy_bound_check

N = 2**20
THRESHOLD = N // 32


def _run(policy: str, latency: float, seed: int = 0):
    dag = build_dc_dag(N, THRESHOLD, CostModel(), "zip")
    return SimMachine(8, steal_latency=latency, steal_policy=policy, seed=seed).run(dag)


def bench_ab8_series(benchmark, write_report):
    def build():
        rows = []
        for policy in ("round_robin", "random"):
            for latency in (0.0, 50.0, 500.0):
                result = _run(policy, latency)
                rows.append(
                    [policy, latency, result.makespan, result.steals,
                     f"{result.utilization:.4f}"]
                )
        return rows

    rows = benchmark(build)
    write_report(
        "ab8_scheduler",
        format_table(
            ["steal_policy", "steal_latency", "makespan", "steals", "utilization"],
            rows,
            title="AB8: scheduler ablation, polynomial DAG n=2^20, 8 cores",
        ),
    )
    # Policies agree closely on balanced trees (within 5%)...
    by_key = {(r[0], r[1]): r[2] for r in rows}
    for latency in (0.0, 50.0, 500.0):
        rr = by_key[("round_robin", latency)]
        rnd = by_key[("random", latency)]
        assert abs(rr - rnd) / rr < 0.05
    # ...and higher steal latency never helps.
    for policy in ("round_robin", "random"):
        series = [by_key[(policy, lat)] for lat in (0.0, 50.0, 500.0)]
        assert series == sorted(series)


def bench_ab8_bounds_hold_under_latency(benchmark):
    def check():
        result = _run("round_robin", 0.0)
        report = greedy_bound_check(result)
        assert report.all_ok
        return report

    report = benchmark(check)
    assert report.tp <= report.t1 / report.p + report.tinf + 1e-9


@pytest.mark.parametrize("seed", [0, 1, 2])
def bench_ab8_random_seeds_consistent(benchmark, seed):
    result = benchmark.pedantic(
        lambda: _run("random", 0.0, seed=seed), rounds=1, iterations=1
    )
    assert greedy_bound_check(result).all_ok
