"""AB12 — adaptive ``auto`` threshold vs hand-tuned fixed thresholds.

AB4 showed how sensitive the parallel speedup curves are to the split
threshold; PR "adaptive scheduling" closes the loop with
``target_size='auto'`` (:mod:`repro.streams.adaptive`): leaf sizes come
from the observed per-element cost of the pipeline shape, coarsening when
task overhead dominates and deepening when workers idle.  This bench pins
the claim that matters for a knob that picks itself: across four workload
shapes, a converged ``auto`` run must land within ~10% of the **best**
fixed threshold found by sweeping a hand-tuning grid:

* ``cheap_map`` — ~ns-per-element arithmetic; the danger is splitting too
  deep and drowning in task overhead (auto must coarsen);
* ``expensive_map`` — a ~µs integer hash per element; auto must deepen to
  the cost-derived leaf size instead of Java's element-count rule;
* ``skewed_flat_map`` — expansion and work concentrated in the data
  prefix, the shape where static rules misjudge per-leaf cost;
* ``short_circuit`` — ``any_match`` with a deep witness: triggered runs
  never feed the memo (aborted leaves would poison the cost estimate),
  so auto must stay sane on its bootstrap rule.

Exact result parity — every fixed candidate AND auto against a
sequential run — is the hard in-sweep gate.  ``speedup`` per row is
``best_fixed_median / auto_median`` (1.0 = auto ties the best
hand-tuned threshold; the ~10% band is 0.9), consumed by
``benchmarks/check_regression.py`` against the committed baseline
``benchmarks/results/BENCH_adaptive.json``.

Two entry points:

* pytest-benchmark: ``pytest benchmarks/bench_ab12_adaptive.py
  --benchmark-only``;
* CLI: ``python benchmarks/bench_ab12_adaptive.py [--smoke] [--out FILE]``.
"""

from __future__ import annotations

import argparse
import functools
import json
import operator
import os
import pathlib
import sys

import numpy as np
import pytest

from repro.bench.harness import repeat_average
from repro.forkjoin import ForkJoinPool
from repro.streams import Stream
from repro.streams import adaptive

N_BENCH = 2**16

#: Divisors of the input size forming the hand-tuning grid of fixed
#: thresholds (size//1 = a single leaf, i.e. no decomposition at all).
CANDIDATE_DIVISORS = (256, 64, 16, 4, 1)

#: ``best_fixed / auto`` floor: auto within ~10% of the tuned optimum.
BAND = 0.9


def _hash_rounds(x, rounds):
    acc = int(x) & 0xFFFFFFFF
    for _ in range(rounds):
        acc = (acc * 1103515245 + 12345) & 0x7FFFFFFF
        acc ^= acc >> 7
    return acc


def _add7(x):
    return int(x) + 7


def _hash16(x):
    return _hash_rounds(x, 16)


def _skew_expand(x, cutoff):
    """Heavy 6-way expansion below the cutoff, passthrough above it."""
    if int(x) < cutoff:
        return [_hash_rounds(x + i, 8) for i in range(6)]
    return [int(x)]


def _witness_probe(x, witness):
    return _hash_rounds(x, 4) != -1 and int(x) == witness


def _stream(arr, pool, target):
    stream = Stream.of_iterable(arr)
    if pool is None:
        return stream
    stream = stream.parallel().with_pool(pool)
    if target is not None:
        stream = stream.with_target_size(target)
    return stream


def _wl_cheap_map(arr, pool, target):
    return _stream(arr, pool, target).map(_add7).reduce(0, operator.add)


def _wl_expensive_map(arr, pool, target):
    return _stream(arr, pool, target).map(_hash16).reduce(0, operator.add)


def _wl_skewed_flat_map(arr, pool, target):
    expand = functools.partial(_skew_expand, cutoff=len(arr) // 8)
    return _stream(arr, pool, target).flat_map(expand).reduce(0, operator.add)


def _wl_short_circuit(arr, pool, target):
    probe = functools.partial(_witness_probe, witness=(7 * len(arr)) // 8)
    return _stream(arr, pool, target).any_match(probe)


WORKLOADS = [
    ("cheap_map", _wl_cheap_map),
    ("expensive_map", _wl_expensive_map),
    ("skewed_flat_map", _wl_skewed_flat_map),
    ("short_circuit", _wl_short_circuit),
]


# --------------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------------- #

@pytest.fixture(scope="module")
def data():
    return np.arange(N_BENCH, dtype=np.int64)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="ab12")
    yield p
    p.shutdown()


@pytest.mark.parametrize("name,fn", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def bench_ab12_fixed(benchmark, data, pool, name, fn):
    benchmark(lambda: fn(data, pool, None))


@pytest.mark.parametrize("name,fn", WORKLOADS, ids=[w[0] for w in WORKLOADS])
def bench_ab12_auto(benchmark, data, pool, name, fn):
    adaptive.reset_split_policy()
    fn(data, pool, "auto")  # converge the memo before timing
    fn(data, pool, "auto")
    benchmark(lambda: fn(data, pool, "auto"))
    adaptive.reset_split_policy()


# --------------------------------------------------------------------------- #
# CLI sweep: auto vs the hand-tuning grid, parity gated
# --------------------------------------------------------------------------- #

def run_sweep(sizes, runs, pool):
    """Measure auto against every fixed candidate on all workloads.

    Per workload/size: a sequential run pins the expected result, every
    fixed candidate and the auto leg must reproduce it exactly (the hard
    parity gate), the best fixed median is the hand-tuned optimum, and
    ``speedup = best_fixed / auto`` (the quantity the regression gate
    tracks — collapse means the adaptive policy stopped choosing well).
    Auto is measured *converged*: the memo is reset, then seeded by one
    parity run plus two warm-up runs before timing.
    Returns ``(rows, parity_ok)``.
    """
    rows = []
    parity_ok = True
    for size in sizes:
        arr = np.arange(size, dtype=np.int64)
        candidates = sorted({max(1, size // d) for d in CANDIDATE_DIVISORS})
        for name, fn in WORKLOADS:
            expected = fn(arr, None, None)

            fixed_medians = {}
            for target in candidates:
                parity_ok &= bool(fn(arr, pool, target) == expected)
                timing = repeat_average(
                    lambda t=target: fn(arr, pool, t), runs=runs
                )
                fixed_medians[target] = timing.median
            best_target = min(fixed_medians, key=fixed_medians.get)
            best_median = fixed_medians[best_target]

            adaptive.reset_split_policy()
            parity = bool(fn(arr, pool, "auto") == expected)
            parity_ok &= parity
            for _ in range(2):
                fn(arr, pool, "auto")  # converge the memo
            auto = repeat_average(lambda: fn(arr, pool, "auto"), runs=runs)
            stats = adaptive.split_policy_stats()
            adaptive.reset_split_policy()

            speedup = (
                round(best_median / auto.median, 3) if auto.median else None
            )
            in_band = speedup is not None and speedup >= BAND
            rows.append({
                "workload": name,
                "size": size,
                "auto_ms": round(auto.median_ms, 3),
                "best_fixed_ms": round(best_median * 1000, 3),
                "best_fixed_target": best_target,
                "fixed_ms": {
                    str(t): round(m * 1000, 3)
                    for t, m in fixed_medians.items()
                },
                "speedup": speedup,
                "in_band": in_band,
                "parity": parity,
                "policy": {
                    k: stats[k]
                    for k in ("decisions", "bootstrap", "observed_runs",
                              "coarsened", "deepened")
                },
            })
            flag = "" if parity else "  PARITY MISMATCH"
            band = "" if in_band else "  BELOW BAND"
            print(f"{name:>16} n=2^{size.bit_length() - 1:<2} "
                  f"auto {auto.median_ms:9.2f} ms   "
                  f"best fixed {best_median * 1000:9.2f} ms "
                  f"(target {best_target})   "
                  f"ratio x{speedup:5.3f}{band}{flag}")
    return rows, parity_ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny size for CI (parity gate, timings "
                             "informational)")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the JSON report here")
    parser.add_argument("--runs", type=int, default=None,
                        help="timed runs per measurement")
    parser.add_argument("--enforce-band", action="store_true",
                        help="fail when any workload's auto run lands "
                             f"below x{BAND} of its best fixed threshold "
                             "(used when recording the committed "
                             "baseline; CI gates drift via "
                             "check_regression instead)")
    args = parser.parse_args(argv)

    sizes = [2**14] if args.smoke else [2**16]
    runs = args.runs if args.runs is not None else (2 if args.smoke else 3)

    pool = ForkJoinPool(parallelism=4, name="ab12-cli")
    try:
        rows, parity_ok = run_sweep(sizes, runs, pool)
    finally:
        pool.shutdown()

    report = {
        "bench": "ab12_adaptive",
        "mode": "smoke" if args.smoke else "full",
        "runs": runs,
        "sizes": sizes,
        "cpu_count": os.cpu_count(),
        "band": BAND,
        "parity_ok": parity_ok,
        "results": rows,
    }
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"[written to {args.out}]")

    if not parity_ok:
        print("FAIL: auto or a fixed candidate disagreed with the "
              "sequential result", file=sys.stderr)
        return 1
    if args.enforce_band and not all(r["in_band"] for r in rows):
        print(f"FAIL: auto fell below x{BAND} of the best fixed "
              "threshold on some workload", file=sys.stderr)
        return 1
    print("parity OK: auto == every fixed threshold == sequential on "
          "every workload/size")
    return 0


if __name__ == "__main__":
    sys.exit(main())
