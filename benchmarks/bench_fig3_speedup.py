"""FIG3 — speedup of parallel polynomial evaluation, degrees 2^20..2^26.

Paper: Figure 3 — speedup near 8 on an 8-core machine for most sizes,
with a dropout at 2^24 attributed to a JVM optimization of the sequential
baseline.  Reproduced on the simulated 8-core machine (DESIGN.md §3);
both the anomaly-injected and anomaly-free series are reported.

``bench_fig3_real_*`` time the *real* implementation (sequential Horner
and the thread-parallel stream adaptation) at laptop scale, demonstrating
the actual code path the virtual numbers model.
"""

import pytest

from repro.bench.figures import fig3_fig4_series
from repro.bench.reporting import format_table
from repro.bench.workloads import random_coefficients
from repro.core import polynomial_value
from repro.core.polynomial import horner
from repro.forkjoin import ForkJoinPool

REAL_N = 2**14


@pytest.fixture(scope="module")
def coeffs():
    return random_coefficients(REAL_N)


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=8, name="fig3")
    yield p
    p.shutdown()


def bench_fig3_series(benchmark, write_report):
    """Regenerate Figure 3 (the benchmark times the 7-point simulation)."""
    rows = benchmark(lambda: fig3_fig4_series(workers=8, anomaly=True))
    clean = fig3_fig4_series(workers=8, anomaly=False)
    table = format_table(
        ["log2(n)", "speedup", "speedup(no anomaly)", "utilization"],
        [
            [r["log2_n"], r["speedup"], c["speedup"], r["utilization"]]
            for r, c in zip(rows, clean)
        ],
        title="FIG3: polynomial-value speedup, 8 simulated cores",
    )
    write_report("fig3_speedup", table)
    # Shape assertions mirroring the paper's description.
    by_log = {r["log2_n"]: r["speedup"] for r in rows}
    for log_n in (20, 21, 22, 23, 25, 26):
        assert by_log[log_n] > 6.0, "speedup should be near the 8-core max"
    assert by_log[24] < 4.0, "the 2^24 sequential anomaly must show as a dropout"
    assert all(c["speedup"] > 6.0 for c in clean)


def bench_fig3_real_sequential(benchmark, coeffs):
    """Real wall-clock: tuned sequential Horner at 2^14."""
    result = benchmark(lambda: horner(coeffs, 0.999))
    assert result == pytest.approx(polynomial_value(coeffs, 0.999, parallel=False))


def bench_fig3_real_parallel_stream(benchmark, coeffs, pool):
    """Real wall-clock: the parallel stream adaptation at 2^14 (GIL-bound;
    see DESIGN.md §3 — functional path only, speedup comes from simcore)."""
    sequential = horner(coeffs, 0.999)
    result = benchmark(lambda: polynomial_value(coeffs, 0.999, pool=pool))
    assert result == pytest.approx(sequential)
