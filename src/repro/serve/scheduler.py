"""Weighted deficit round-robin over the tenant queues.

Classic DRR (Shreedhar & Varghese) adapted to unit-cost jobs: tenants sit
on a ring; each pass over the ring credits every *backlogged* tenant
``weight × quantum`` of deficit, and a tenant whose deficit reaches one
job's cost (1.0) pays it down and dispatches.  A tenant that drains its
queue forfeits its remaining deficit — credit never accumulates while
idle, so a returning tenant cannot burst past the others.

Long-run throughput under contention is therefore proportional to
weight: with quantum 1.0 and weights (2, 1), the first tenant dispatches
twice per ring pass and the second once.  Starvation is impossible —
every backlogged tenant's deficit grows by at least ``weight × quantum``
per pass, so it dispatches within ``⌈1 / (weight × quantum)⌉`` passes.

The scheduler only picks *which* queue to serve; popping the ticket and
running it belong to the service's dispatcher.  Calls must hold the
service's admission lock (tenant queues and deficits are shared state).
"""

from __future__ import annotations

from repro.common import IllegalArgumentError
from repro.serve.tenant import Tenant


class DeficitRoundRobin:
    """Pick the next tenant to serve, weight-fairly."""

    __slots__ = ("quantum", "_ring", "_last")

    def __init__(self, quantum: float = 1.0) -> None:
        if quantum <= 0:
            raise IllegalArgumentError(f"quantum must be > 0, got {quantum}")
        self.quantum = quantum
        self._ring: list[str] = []
        self._last = -1

    def add(self, name: str) -> None:
        """Append a newly registered tenant to the ring."""
        self._ring.append(name)

    def select(self, tenants: dict[str, Tenant]) -> Tenant | None:
        """The next tenant with queued work, or None when all are idle.

        Deficits are credited as the ring is walked; the walk resumes
        after the last-served tenant, so one hot tenant cannot shadow the
        others between calls.
        """
        n = len(self._ring)
        if n == 0:
            return None
        backlogged = sum(1 for t in tenants.values() if t.queue)
        if backlogged == 0:
            return None
        # Classic DRR serves the queue at the head of the ring until its
        # deficit is spent *before* advancing — that is where the weighted
        # share comes from (a weight-2 tenant banks 2.0 of credit per pass
        # and pays for two jobs).  Only then does the walk move on and
        # credit the next backlogged tenant.
        current = tenants[self._ring[self._last]] if self._last >= 0 else None
        if current is not None and current.queue and current.deficit >= 1.0:
            current.deficit -= 1.0
            return current
        # Each full pass credits every backlogged tenant weight × quantum,
        # so the smallest-weight tenant crosses 1.0 within a bounded number
        # of passes; the scan below cannot spin forever.
        while True:
            for step in range(1, n + 1):
                position = (self._last + step) % n
                tenant = tenants[self._ring[position]]
                if not tenant.queue:
                    tenant.deficit = 0.0
                    continue
                tenant.deficit += tenant.config.weight * self.quantum
                if tenant.deficit >= 1.0:
                    tenant.deficit -= 1.0
                    self._last = position
                    return tenant

    def __repr__(self) -> str:
        return f"DeficitRoundRobin(tenants={len(self._ring)}, quantum={self.quantum})"
