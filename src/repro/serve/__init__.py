"""``repro.serve`` — the multi-tenant execution service layer.

The "millions of users" layer over the stream/fork-join compute core
(ROADMAP item 3; design in ``docs/serving.md``):

* :mod:`repro.serve.server`    — :class:`ExecutionService` (sync core:
  datasets, tenants, dispatcher, job runners) and :class:`StreamServer`
  (asyncio facade);
* :mod:`repro.serve.queue`     — admission control: bounded per-tenant
  queues, a global cap with priority-ordered load shedding, fast-fail
  rejections with ``Retry-After`` hints;
* :mod:`repro.serve.scheduler` — weighted deficit-round-robin fairness
  across tenant queues;
* :mod:`repro.serve.tenant`    — per-tenant policy and runtime state:
  quotas, circuit breaker, DRR credit;
* :mod:`repro.serve.job`       — :class:`Job` / :class:`Ticket`, the
  queued unit of work and its future-like handle;
* :mod:`repro.serve.errors`    — the
  :class:`~repro.common.RejectedExecutionError`-rooted admission errors.
"""

from repro.serve.errors import (
    AdmissionError,
    CircuitOpenError,
    JobShedError,
    QueueFullError,
    QuotaExceededError,
    ServiceOverloadError,
)
from repro.serve.job import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    Job,
    Ticket,
)
from repro.serve.queue import AdmissionQueue
from repro.serve.scheduler import DeficitRoundRobin
from repro.serve.server import ExecutionService, StreamServer
from repro.serve.tenant import Tenant, TenantConfig

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "SHED",
    "AdmissionError",
    "AdmissionQueue",
    "CircuitOpenError",
    "DeficitRoundRobin",
    "ExecutionService",
    "Job",
    "JobShedError",
    "QueueFullError",
    "QuotaExceededError",
    "ServiceOverloadError",
    "StreamServer",
    "Tenant",
    "TenantConfig",
    "Ticket",
]
