"""Per-tenant state: configuration, bounded queue, quota, circuit breaker.

A :class:`Tenant` owns everything the service tracks for one client:

* its bounded FIFO of queued :class:`~repro.serve.job.Ticket`\\ s
  (``queue_limit`` is the admission bound — the service fast-fails
  instead of buffering unboundedly);
* its deficit-round-robin credit (:attr:`Tenant.deficit`, managed by
  :mod:`repro.serve.scheduler`);
* a sliding-window admission **quota** (``quota`` jobs per
  ``quota_window`` seconds; ``None`` = unlimited);
* a **circuit breaker** in the :class:`~repro.faults.policy.RetryPolicy`
  mold: ``breaker_threshold`` consecutive job failures open the circuit
  for ``breaker_cooldown`` seconds, and each re-open doubles the cooldown
  (capped at :data:`BREAKER_MAX_COOLDOWN`) — exponential backoff applied
  to a tenant instead of an attempt.  One success closes it and resets
  the backoff.

All mutation happens under the service's admission lock; this module
holds no locks of its own.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from repro.common import IllegalArgumentError

#: Cap on the exponentially growing breaker cooldown (seconds).
BREAKER_MAX_COOLDOWN = 60.0


@dataclass(frozen=True)
class TenantConfig:
    """Static per-tenant policy, fixed at registration.

    Args:
        name: tenant identifier (the ``tenant`` metric label).
        weight: deficit-round-robin share; a weight-2 tenant drains jobs
            twice as fast as a weight-1 tenant under contention.
        priority: default job priority; higher-priority jobs can shed
            queued lower-priority ones when the global queue is full.
        queue_limit: bound on this tenant's own queue (admission
            fast-fails beyond it).
        quota: admitted jobs allowed per ``quota_window`` seconds
            (``None`` = unlimited).
        quota_window: the quota's sliding-window length in seconds.
        breaker_threshold: consecutive failures that open the circuit.
        breaker_cooldown: initial open duration in seconds (doubles per
            re-open, capped at :data:`BREAKER_MAX_COOLDOWN`).
    """

    name: str
    weight: float = 1.0
    priority: int = 0
    queue_limit: int = 16
    quota: int | None = None
    quota_window: float = 1.0
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise IllegalArgumentError("tenant name must be non-empty")
        if self.weight <= 0:
            raise IllegalArgumentError(
                f"tenant {self.name!r}: weight must be > 0, got {self.weight}"
            )
        if self.queue_limit < 1:
            raise IllegalArgumentError(
                f"tenant {self.name!r}: queue_limit must be >= 1, "
                f"got {self.queue_limit}"
            )
        if self.quota is not None and self.quota < 1:
            raise IllegalArgumentError(
                f"tenant {self.name!r}: quota must be >= 1, got {self.quota}"
            )
        if self.quota_window <= 0:
            raise IllegalArgumentError(
                f"tenant {self.name!r}: quota_window must be > 0, "
                f"got {self.quota_window}"
            )
        if self.breaker_threshold < 1:
            raise IllegalArgumentError(
                f"tenant {self.name!r}: breaker_threshold must be >= 1, "
                f"got {self.breaker_threshold}"
            )
        if self.breaker_cooldown <= 0:
            raise IllegalArgumentError(
                f"tenant {self.name!r}: breaker_cooldown must be > 0, "
                f"got {self.breaker_cooldown}"
            )


class Tenant:
    """Runtime state for one registered tenant."""

    __slots__ = (
        "config", "queue", "deficit", "failure_streak", "breaker_open_until",
        "breaker_trips", "_window_start", "_window_count",
    )

    def __init__(self, config: TenantConfig) -> None:
        self.config = config
        self.queue: deque = deque()
        self.deficit = 0.0
        self.failure_streak = 0
        self.breaker_open_until = 0.0
        #: Times the breaker has opened (drives the cooldown backoff).
        self.breaker_trips = 0
        self._window_start = 0.0
        self._window_count = 0

    @property
    def name(self) -> str:
        return self.config.name

    # -- circuit breaker --------------------------------------------------- #

    def breaker_open(self, now: float | None = None) -> float:
        """Seconds the circuit stays open from ``now`` (0.0 = closed)."""
        now = time.monotonic() if now is None else now
        return max(self.breaker_open_until - now, 0.0)

    def record_failure(self, now: float | None = None) -> bool:
        """Count one job failure; returns True when it opened the circuit."""
        now = time.monotonic() if now is None else now
        self.failure_streak += 1
        if self.failure_streak < self.config.breaker_threshold:
            return False
        cooldown = min(
            self.config.breaker_cooldown * (2.0 ** self.breaker_trips),
            BREAKER_MAX_COOLDOWN,
        )
        self.breaker_open_until = now + cooldown
        self.breaker_trips += 1
        self.failure_streak = 0
        return True

    def record_success(self) -> None:
        """A completed job closes the streak and resets the backoff."""
        self.failure_streak = 0
        self.breaker_trips = 0

    # -- quota ------------------------------------------------------------- #

    def quota_remaining_wait(self, now: float | None = None) -> float | None:
        """``None`` when an admission fits the quota window; otherwise the
        seconds until the current window rolls over (the retry hint)."""
        if self.config.quota is None:
            return None
        now = time.monotonic() if now is None else now
        if now - self._window_start >= self.config.quota_window:
            return None  # window expired — next admission starts a fresh one
        if self._window_count < self.config.quota:
            return None
        return self.config.quota_window - (now - self._window_start)

    def count_admission(self, now: float | None = None) -> None:
        """Charge one admitted job against the quota window."""
        if self.config.quota is None:
            return
        now = time.monotonic() if now is None else now
        if now - self._window_start >= self.config.quota_window:
            self._window_start = now
            self._window_count = 0
        self._window_count += 1

    def __repr__(self) -> str:
        return (
            f"Tenant({self.name!r}, queued={len(self.queue)}, "
            f"weight={self.config.weight})"
        )
