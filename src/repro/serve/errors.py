"""Admission and shedding errors of the :mod:`repro.serve` layer.

Every admission failure is a :class:`~repro.common.RejectedExecutionError`
subclass — the same exception the pools raise after shutdown — so a
caller's existing "rejected → back off / degrade" handling covers the
service without new plumbing.  Each carries a ``retry_after`` hint
(seconds), the service's estimate of when capacity frees up, mirroring an
HTTP 429/503 ``Retry-After`` header, plus a machine-readable ``reason``
that keys the per-tenant rejection counters.
"""

from __future__ import annotations

from repro.common import CancellationError, RejectedExecutionError


class AdmissionError(RejectedExecutionError):
    """A job was refused at the admission gate (fast, before any queueing).

    Attributes:
        retry_after: seconds until the caller should retry (best-effort
            estimate; 0.0 means "unknown, back off on your own schedule").
        reason: short machine-readable cause (``queue_full``,
            ``overload``, ``quota``, ``circuit_open``) — the ``reason``
            label on the service's ``jobs_rejected`` counter.
    """

    reason = "rejected"

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QueueFullError(AdmissionError):
    """The tenant's own bounded queue is at its ``queue_limit``."""

    reason = "queue_full"


class ServiceOverloadError(AdmissionError):
    """The global queue is full and no lower-priority victim exists."""

    reason = "overload"


class QuotaExceededError(AdmissionError):
    """The tenant exhausted its admissions-per-window quota."""

    reason = "quota"


class CircuitOpenError(AdmissionError):
    """The tenant's circuit breaker is open after repeated job failures."""

    reason = "circuit_open"


class JobShedError(CancellationError):
    """A *queued* job was shed to admit higher-priority work.

    Raised by ``Ticket.result()`` of the victim; the job never ran, so
    retrying it later is always safe.
    """
