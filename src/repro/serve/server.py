"""The multi-tenant execution service and its asyncio facade.

:class:`ExecutionService` is the synchronous core: clients register named
datasets and tenants, then submit *pipeline functions* that each receive
a ready-configured parallel :class:`~repro.streams.stream.Stream` over a
dataset.  One dispatcher thread drains the tenant queues in weighted
deficit-round-robin order onto a small worker pool of job runners, which
execute pipelines on the shared :class:`~repro.forkjoin.pool.ForkJoinPool`
(or the process backend, per job).  The layering is deliberate:

* **admission** (:mod:`repro.serve.queue`) fast-fails with a
  ``Retry-After`` hint while holding one lock for microseconds — an
  overloaded service answers *quickly*, it does not buffer unboundedly;
* **scheduling** (:mod:`repro.serve.scheduler`) decides only which
  tenant's queue to serve next; a job whose
  :class:`~repro.faults.policy.Deadline` expired while queued is
  cancelled *before* dispatch, so dead work never occupies the pool;
* **execution** reuses the whole robustness stack underneath: stream
  deadlines, fail-fast cancellation, broken-pool containment — and when
  the compute pool itself is shut down or broken, the job **degrades to
  sequential execution** in its runner thread rather than failing
  (counted per tenant in ``jobs_degraded``);
* **observability**: every counter, gauge and histogram carries a
  ``tenant`` label in the service's own
  :class:`~repro.obs.metrics.MetricsRegistry`; :meth:`metrics_text`
  renders the Prometheus exposition.

:class:`StreamServer` wraps the core for asyncio callers: ``await
server.submit(...)`` resolves on the event loop when the job settles,
while admission failures raise immediately (they are synchronous and
fast by construction).

Fault sites (kind ``serve``): ``serve:admit:<tenant>`` strikes the
admission gate, ``serve:dispatch:<tenant>`` the dispatcher — both honor
``raise`` and ``delay``.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable

from repro.common import (
    CancellationError,
    IllegalArgumentError,
    RejectedExecutionError,
    TaskTimeoutError,
)
from repro.faults.plan import current_fault_plan
from repro.faults.policy import Deadline
from repro.forkjoin.pool import ForkJoinPool, common_pool
from repro.obs import prom
from repro.obs.metrics import MetricsRegistry
from repro.serve.errors import AdmissionError, JobShedError
from repro.serve.job import CANCELLED, DONE, FAILED, SHED, Job, Ticket
from repro.serve.queue import AdmissionQueue
from repro.serve.scheduler import DeficitRoundRobin
from repro.serve.tenant import Tenant, TenantConfig
from repro.streams.stream import Stream


class ExecutionService:
    """A shared stream-execution service for many concurrent tenants.

    Args:
        max_workers: job-runner threads (each runs one pipeline at a time).
        max_in_flight: global cap on concurrently running jobs; defaults
            to ``max_workers`` (a larger value queues jobs inside the
            runner pool, which hides them from the fair scheduler).
        global_queue_limit: total queued jobs across all tenants before
            admission starts shedding/rejecting.
        pool: the shared :class:`ForkJoinPool` pipelines run on; defaults
            to the common pool.  The service never shuts this pool down.
        default_backend: backend for jobs that don't choose one
            (``threads``/``process``/``sequential``).
        quantum: deficit-round-robin credit per scheduling pass.
    """

    def __init__(
        self,
        *,
        max_workers: int = 4,
        max_in_flight: int | None = None,
        global_queue_limit: int = 64,
        pool: ForkJoinPool | None = None,
        default_backend: str = "threads",
        quantum: float = 1.0,
    ) -> None:
        if max_workers < 1:
            raise IllegalArgumentError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if global_queue_limit < 1:
            raise IllegalArgumentError(
                f"global_queue_limit must be >= 1, got {global_queue_limit}"
            )
        self.max_workers = max_workers
        self.max_in_flight = (
            max_in_flight if max_in_flight is not None else max_workers
        )
        self.default_backend = default_backend
        self._pool = pool
        self._tenants: dict[str, Tenant] = {}
        self._datasets: dict[str, Any] = {}
        self._queue = AdmissionQueue(global_queue_limit, max_workers)
        self._scheduler = DeficitRoundRobin(quantum=quantum)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._in_flight = 0
        self._shutdown = False
        self._draining = False
        self._started = False
        self._dispatcher: threading.Thread | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="serve-runner"
        )
        self.metrics = MetricsRegistry(name="serve")
        self._in_flight_gauge = self.metrics.gauge("serve_in_flight")

    # -- registration ------------------------------------------------------ #

    def register_dataset(self, name: str, data: Iterable) -> None:
        """Publish ``data`` under ``name`` for every tenant to query.

        One-shot iterators are materialized — a dataset is queried many
        times by many jobs.
        """
        if not name:
            raise IllegalArgumentError("dataset name must be non-empty")
        if iter(data) is data:
            data = list(data)
        with self._lock:
            self._datasets[name] = data

    def register_tenant(self, name: str | TenantConfig, **kwargs) -> TenantConfig:
        """Register a tenant by name (policy via keyword arguments — see
        :class:`~repro.serve.tenant.TenantConfig`) or as a prebuilt config."""
        config = (
            name if isinstance(name, TenantConfig)
            else TenantConfig(name=name, **kwargs)
        )
        with self._lock:
            if config.name in self._tenants:
                raise IllegalArgumentError(
                    f"tenant {config.name!r} is already registered"
                )
            self._tenants[config.name] = Tenant(config)
            self._scheduler.add(config.name)
            self.metrics.gauge("serve_queue_depth", tenant=config.name).set(0)
        return config

    # -- lifecycle --------------------------------------------------------- #

    def start(self) -> "ExecutionService":
        """Start the dispatcher (idempotent; ``submit`` starts it lazily)."""
        with self._lock:
            if self._started or self._shutdown:
                return self
            self._started = True
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="serve-dispatcher", daemon=True
            )
            self._dispatcher.start()
        return self

    def shutdown(self, drain: bool = True) -> None:
        """Stop accepting work; with ``drain`` (default) run every queued
        job to completion first, otherwise cancel the queues immediately.
        In-flight jobs always run to completion — their tickets settle
        either way.  Idempotent."""
        cancelled: list[tuple[Tenant, Ticket]] = []
        with self._work:
            already = self._shutdown
            self._shutdown = True
            self._draining = drain and not already
            if not drain:
                for tenant in self._tenants.values():
                    while tenant.queue:
                        cancelled.append(
                            (tenant, self._queue.take_from(tenant))
                        )
                    self.metrics.gauge(
                        "serve_queue_depth", tenant=tenant.name
                    ).set(0)
            self._work.notify_all()
        for tenant, ticket in cancelled:
            self.metrics.counter("jobs_cancelled", tenant=tenant.name).inc()
            ticket._finish(
                CANCELLED,
                error=CancellationError(
                    f"{ticket.job.label}: cancelled by service shutdown"
                ),
            )
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=30.0)
        self._executor.shutdown(wait=drain)

    def shutdown_now(self) -> None:
        """``shutdown(drain=False)``: cancel queued jobs, keep in-flight."""
        self.shutdown(drain=False)

    def __enter__(self) -> "ExecutionService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- submission (the fast path) ---------------------------------------- #

    def submit(
        self,
        tenant: str,
        dataset: str,
        pipeline: Callable[[Stream], Any],
        *,
        priority: int | None = None,
        deadline: "Deadline | float | None" = None,
        backend: str | None = None,
        label: str | None = None,
    ) -> Ticket:
        """Queue ``pipeline`` against ``dataset`` on behalf of ``tenant``.

        Fast-fails with an :class:`~repro.serve.errors.AdmissionError`
        (carrying ``retry_after``) when admission refuses the job; the
        whole call holds the admission lock for O(1) work, so rejection
        latency stays in the microseconds.

        ``deadline`` is a :class:`~repro.faults.policy.Deadline` or a
        float of seconds from now; it covers queueing *and* execution —
        a job still queued at expiry is cancelled without ever reaching
        the pool.
        """
        if deadline is not None and not isinstance(deadline, Deadline):
            deadline = Deadline.after(deadline)
        victim: Ticket | None = None
        with self._work:
            if self._shutdown:
                raise RejectedExecutionError(
                    "execution service has been shut down and no longer "
                    "accepts work"
                )
            tenant_state = self._tenants.get(tenant)
            if tenant_state is None:
                raise IllegalArgumentError(f"unknown tenant {tenant!r}")
            if dataset not in self._datasets:
                raise IllegalArgumentError(f"unknown dataset {dataset!r}")
            job = Job(
                tenant, dataset, pipeline,
                priority=(
                    priority if priority is not None
                    else tenant_state.config.priority
                ),
                deadline=deadline,
                backend=backend,
                label=label or f"{tenant}/{dataset}",
            )
            ticket = Ticket(job)
            try:
                victim = self._queue.offer(tenant_state, ticket, self._tenants)
            except AdmissionError as exc:
                self.metrics.counter(
                    "jobs_rejected", tenant=tenant, reason=exc.reason
                ).inc()
                raise
            self.metrics.counter("jobs_submitted", tenant=tenant).inc()
            self._set_depth(tenant_state)
            if victim is not None:
                victim_tenant = self._tenants[victim.job.tenant]
                self.metrics.counter(
                    "jobs_shed", tenant=victim_tenant.name
                ).inc()
                self._set_depth(victim_tenant)
            self._work.notify_all()
        if victim is not None:
            victim._finish(
                SHED,
                error=JobShedError(
                    f"{victim.job.label} (priority {victim.job.priority}) "
                    f"shed for priority-{job.priority} work"
                ),
            )
        if not self._started:
            self.start()
        return ticket

    def _set_depth(self, tenant: Tenant) -> None:
        self.metrics.gauge("serve_queue_depth", tenant=tenant.name).set(
            len(tenant.queue)
        )

    # -- dispatch ---------------------------------------------------------- #

    def _dispatchable(self) -> bool:
        return (
            self._queue.total_queued() > 0
            and self._in_flight < self.max_in_flight
        )

    def _should_exit(self) -> bool:
        if not self._shutdown:
            return False
        return not self._draining or self._queue.total_queued() == 0

    def _dispatch_loop(self) -> None:
        while True:
            with self._work:
                while not self._dispatchable() and not self._should_exit():
                    self._work.wait()
                if self._should_exit():
                    return
                tenant = self._scheduler.select(self._tenants)
                if tenant is None:  # pragma: no cover — raced with a shed
                    continue
                ticket = self._queue.take_from(tenant)
                self._set_depth(tenant)
                job = ticket.job
                expired = job.deadline is not None and job.deadline.expired
                if not expired:
                    self._in_flight += 1
                    self._in_flight_gauge.set(self._in_flight)
            if expired:
                # The deadline lapsed between admission and dispatch: the
                # job is cancelled here, at the serve layer — it never
                # reaches the pool, so only ``jobs_cancelled`` (not the
                # pool's ``tasks_cancelled``) accounts for it.
                self.metrics.counter(
                    "jobs_cancelled", tenant=tenant.name
                ).inc()
                ticket._finish(
                    CANCELLED,
                    error=TaskTimeoutError(
                        f"{job.label} missed its {job.deadline.budget}s "
                        "deadline while queued"
                    ),
                )
                continue
            plan = current_fault_plan()
            if plan is not None:
                action = plan.fire(
                    "serve", ("dispatch", tenant.name),
                    allowed=("raise", "delay"), in_flight=self._in_flight,
                )
                if action is not None:
                    try:
                        action.apply_before()
                    except Exception as exc:
                        self._settle_failure(ticket, tenant, exc)
                        self._release_slot()
                        continue
            try:
                self._executor.submit(self._run_job, ticket)
            except RuntimeError as exc:  # runner pool shut down under us
                self._settle_failure(
                    ticket, tenant, RejectedExecutionError(str(exc))
                )
                self._release_slot()

    def _release_slot(self) -> None:
        with self._work:
            self._in_flight -= 1
            self._in_flight_gauge.set(self._in_flight)
            self._work.notify_all()

    # -- execution --------------------------------------------------------- #

    def _resolve_pool(self) -> ForkJoinPool:
        if self._pool is None:
            self._pool = common_pool()
        return self._pool

    def _build_stream(self, job: Job, backend: str) -> Stream:
        stream = (
            Stream.of_iterable(self._datasets[job.dataset])
            .parallel()
            .with_backend(backend)
        )
        if backend == "threads":
            stream = stream.with_pool(self._resolve_pool())
        if job.deadline is not None:
            stream = stream.with_deadline(job.deadline)
        return stream

    def _execute(self, job: Job) -> Any:
        backend = job.backend or self.default_backend
        if backend == "threads" and self._resolve_pool().is_shutdown():
            return self._degrade(job, None)
        try:
            return job.pipeline(self._build_stream(job, backend))
        except (RejectedExecutionError, BrokenProcessPool) as exc:
            if backend == "sequential":
                raise
            return self._degrade(job, exc)

    def _degrade(self, job: Job, cause: BaseException | None) -> Any:
        """Graceful degradation: the compute pool is gone — run the same
        pipeline sequentially in this runner thread (the deadline still
        applies through the stream)."""
        if job.deadline is not None:
            job.deadline.check(job.label)
        self.metrics.counter("jobs_degraded", tenant=job.tenant).inc()
        return job.pipeline(self._build_stream(job, "sequential"))

    def _run_job(self, ticket: Ticket) -> None:
        tenant = self._tenants[ticket.job.tenant]
        ticket._mark_running()
        self.metrics.histogram(
            "serve_queue_wait_ns", tenant=tenant.name
        ).observe(ticket.dispatched_ns - ticket.submitted_ns)
        try:
            try:
                result = self._execute(ticket.job)
            except Exception as exc:
                self._settle_failure(ticket, tenant, exc)
            else:
                self._settle_success(ticket, tenant, result)
        finally:
            self._release_slot()

    def _settle_success(self, ticket: Ticket, tenant: Tenant,
                        result: Any) -> None:
        ticket._finish(DONE, result=result)
        self.metrics.counter("jobs_completed", tenant=tenant.name).inc()
        self.metrics.histogram(
            "serve_job_latency_ns", tenant=tenant.name
        ).observe(ticket.completed_ns - ticket.submitted_ns)
        with self._work:
            tenant.record_success()
            if ticket.dispatched_ns is not None:
                self._queue.note_job_seconds(
                    (ticket.completed_ns - ticket.dispatched_ns) / 1e9
                )

    def _settle_failure(self, ticket: Ticket, tenant: Tenant,
                        exc: BaseException) -> None:
        self.metrics.counter("jobs_failed", tenant=tenant.name).inc()
        with self._work:
            opened = tenant.record_failure()
        if opened:
            self.metrics.counter("breaker_trips", tenant=tenant.name).inc()
        ticket._finish(FAILED, error=exc)

    # -- observability ------------------------------------------------------ #

    def stats(self) -> dict:
        """Per-tenant service counters plus latency quantile bounds (ms)."""
        per_tenant: dict[str, dict] = {}
        with self._lock:
            names = list(self._tenants)
            queued = {n: len(self._tenants[n].queue) for n in names}
            in_flight = self._in_flight
            total_queued = self._queue.total_queued()
        rejected: dict[str, int] = {n: 0 for n in names}
        for entry in self.metrics.collect():
            if entry["name"] == "jobs_rejected":
                rejected[entry["labels"]["tenant"]] = (
                    rejected.get(entry["labels"]["tenant"], 0)
                    + entry["value"]
                )
        for name in names:
            latency = self.metrics.histogram(
                "serve_job_latency_ns", tenant=name
            )
            per_tenant[name] = {
                "queued": queued[name],
                "submitted": self.metrics.counter(
                    "jobs_submitted", tenant=name
                ).value,
                "completed": self.metrics.counter(
                    "jobs_completed", tenant=name
                ).value,
                "failed": self.metrics.counter(
                    "jobs_failed", tenant=name
                ).value,
                "rejected": rejected.get(name, 0),
                "shed": self.metrics.counter("jobs_shed", tenant=name).value,
                "cancelled": self.metrics.counter(
                    "jobs_cancelled", tenant=name
                ).value,
                "degraded": self.metrics.counter(
                    "jobs_degraded", tenant=name
                ).value,
                "breaker_trips": self.metrics.counter(
                    "breaker_trips", tenant=name
                ).value,
                "p50_latency_ms": latency.quantile_bound(0.50) / 1e6,
                "p99_latency_ms": latency.quantile_bound(0.99) / 1e6,
            }
        return {
            "in_flight": in_flight,
            "queued": total_queued,
            "tenants": per_tenant,
        }

    def metrics_text(self) -> str:
        """The Prometheus text exposition of the service registry."""
        return prom.render(self.metrics)

    def __repr__(self) -> str:
        return (
            f"ExecutionService(tenants={len(self._tenants)}, "
            f"workers={self.max_workers}, "
            f"queued={self._queue.total_queued()})"
        )


def _resolve_future(future: asyncio.Future, ticket: Ticket) -> None:
    """Settle an asyncio future from a finished ticket (loop thread only)."""
    if future.cancelled():
        return
    if ticket.state == DONE:
        future.set_result(ticket.result())
    else:
        future.set_exception(
            ticket.error
            or CancellationError(f"{ticket.job.label}: {ticket.state}")
        )


class StreamServer:
    """asyncio front-end over an :class:`ExecutionService`.

    ``await server.submit(...)`` suspends the coroutine until the job
    settles; admission failures raise synchronously (they are decided in
    microseconds, before any await).  Many client coroutines can share
    one server — each job's ticket bridges back onto the loop with
    ``call_soon_threadsafe``, so no coroutine ever blocks a thread.
    """

    def __init__(self, service: ExecutionService | None = None,
                 **kwargs) -> None:
        self.service = (
            service if service is not None else ExecutionService(**kwargs)
        )

    # Registration is synchronous and lock-cheap; passthroughs keep the
    # async API surface complete without needless awaits.
    def register_dataset(self, name: str, data: Iterable) -> None:
        self.service.register_dataset(name, data)

    def register_tenant(self, name: str | TenantConfig, **kwargs) -> TenantConfig:
        return self.service.register_tenant(name, **kwargs)

    def enqueue(self, *args, **kwargs) -> Ticket:
        """Synchronous submit: the raw ticket, for callers that poll."""
        return self.service.submit(*args, **kwargs)

    async def submit(
        self,
        tenant: str,
        dataset: str,
        pipeline: Callable[[Stream], Any],
        **kwargs,
    ) -> Any:
        """Submit and await the pipeline's result."""
        loop = asyncio.get_running_loop()
        ticket = self.service.submit(tenant, dataset, pipeline, **kwargs)
        future: asyncio.Future = loop.create_future()
        ticket.add_done_callback(
            lambda t: loop.call_soon_threadsafe(_resolve_future, future, t)
        )
        return await future

    def stats(self) -> dict:
        return self.service.stats()

    def metrics_text(self) -> str:
        return self.service.metrics_text()

    async def __aenter__(self) -> "StreamServer":
        self.service.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        # shutdown() drains queued jobs; keep the loop responsive by
        # parking the blocking wait on a helper thread.
        await asyncio.get_running_loop().run_in_executor(
            None, self.service.shutdown
        )
