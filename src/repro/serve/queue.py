"""Admission control: bounded queues, fast-fail rejection, priority shed.

:class:`AdmissionQueue` holds the *admission policy* — every check that
decides, in O(tenants) worst case and O(1) typically, whether a submitted
job may queue:

1. **circuit breaker** — a tenant whose jobs keep failing is refused
   outright (:class:`~repro.serve.errors.CircuitOpenError`) until its
   cooldown lapses;
2. **quota** — sliding-window admissions-per-second cap
   (:class:`~repro.serve.errors.QuotaExceededError`);
3. **tenant queue bound** — the tenant's own FIFO is full
   (:class:`~repro.serve.errors.QueueFullError`);
4. **global bound with priority shed** — the service-wide queue is full;
   if the incoming job outranks the lowest-priority queued job anywhere,
   that victim is **shed** (its ticket settles with
   :class:`~repro.serve.errors.JobShedError` — PR 3's cancellation
   contract: the loser learns promptly, never silently) and the newcomer
   takes its slot; otherwise
   :class:`~repro.serve.errors.ServiceOverloadError`.

Every rejection carries a ``retry_after`` hint derived from the queue
depth and an EWMA of recent job durations — the service's honest estimate
of when a slot frees up.

The ``serve:admit:<tenant>`` fault site lets a
:class:`~repro.faults.plan.FaultPlan` strike the admission gate itself
(``raise`` to model a failing front-end, ``delay`` to model a slow one).

All methods must be called under the owning service's admission lock;
this class adds no locking of its own.
"""

from __future__ import annotations

import time

from repro.faults.plan import current_fault_plan
from repro.serve.errors import (
    CircuitOpenError,
    QueueFullError,
    QuotaExceededError,
    ServiceOverloadError,
)
from repro.serve.job import Ticket
from repro.serve.tenant import Tenant

#: Fallback per-job seconds before any job has completed (retry hints only).
_DEFAULT_JOB_SECONDS = 0.05


class AdmissionQueue:
    """The admission gate over every tenant's bounded queue."""

    __slots__ = ("global_limit", "workers", "_total", "_avg_job_seconds")

    def __init__(self, global_limit: int, workers: int) -> None:
        self.global_limit = global_limit
        self.workers = max(workers, 1)
        self._total = 0
        self._avg_job_seconds = _DEFAULT_JOB_SECONDS

    # -- sizing ------------------------------------------------------------ #

    def total_queued(self) -> int:
        return self._total

    def note_job_seconds(self, seconds: float) -> None:
        """Fold one completed job's duration into the retry-hint EWMA."""
        if seconds > 0:
            self._avg_job_seconds = 0.8 * self._avg_job_seconds + 0.2 * seconds

    def retry_after_hint(self, queued_ahead: int | None = None) -> float:
        """Estimated seconds until a slot frees: jobs ahead spread over the
        workers, at the observed average job duration."""
        depth = self._total if queued_ahead is None else queued_ahead
        return (max(depth, 1) / self.workers) * self._avg_job_seconds

    # -- the admission decision -------------------------------------------- #

    def offer(self, tenant: Tenant, ticket: Ticket,
              tenants: dict[str, Tenant]) -> Ticket | None:
        """Admit ``ticket`` into ``tenant``'s queue or raise an
        :class:`~repro.serve.errors.AdmissionError`.

        Returns the shed victim's ticket when admission displaced a
        lower-priority queued job (the caller settles it and adjusts its
        tenant's gauges), else ``None``.
        """
        plan = current_fault_plan()
        if plan is not None:
            action = plan.fire(
                "serve", ("admit", tenant.name),
                allowed=("raise", "delay"),
                queued=self._total, priority=ticket.job.priority,
            )
            if action is not None:
                action.apply_before()
        now = time.monotonic()
        open_for = tenant.breaker_open(now)
        if open_for > 0:
            raise CircuitOpenError(
                f"tenant {tenant.name!r}: circuit open for another "
                f"{open_for:.3f}s after repeated job failures",
                retry_after=open_for,
            )
        quota_wait = tenant.quota_remaining_wait(now)
        if quota_wait is not None:
            raise QuotaExceededError(
                f"tenant {tenant.name!r}: quota of {tenant.config.quota} "
                f"jobs per {tenant.config.quota_window}s exhausted",
                retry_after=quota_wait,
            )
        if len(tenant.queue) >= tenant.config.queue_limit:
            raise QueueFullError(
                f"tenant {tenant.name!r}: queue full "
                f"({tenant.config.queue_limit} jobs waiting)",
                retry_after=self.retry_after_hint(len(tenant.queue)),
            )
        victim = None
        if self._total >= self.global_limit:
            victim = self._shed_candidate(ticket, tenants)
            if victim is None:
                raise ServiceOverloadError(
                    f"service overloaded: {self._total} jobs queued "
                    f"(global limit {self.global_limit})",
                    retry_after=self.retry_after_hint(),
                )
            tenants[victim.job.tenant].queue.remove(victim)
            self._total -= 1
        tenant.count_admission(now)
        tenant.queue.append(ticket)
        self._total += 1
        return victim

    def _shed_candidate(self, incoming: Ticket,
                        tenants: dict[str, Tenant]) -> Ticket | None:
        """The queued ticket to displace: strictly lower priority than the
        incoming job; among those, the lowest-priority, latest-submitted
        one (newest work loses first, like a LIFO overflow drop)."""
        victim: Ticket | None = None
        for tenant in tenants.values():
            for queued in tenant.queue:
                if queued.job.priority >= incoming.job.priority:
                    continue
                if (
                    victim is None
                    or queued.job.priority < victim.job.priority
                    or (
                        queued.job.priority == victim.job.priority
                        and queued.submitted_ns > victim.submitted_ns
                    )
                ):
                    victim = queued
        return victim

    # -- dequeue ----------------------------------------------------------- #

    def take_from(self, tenant: Tenant) -> Ticket:
        """Pop the tenant's oldest queued ticket (FIFO within a tenant)."""
        ticket = tenant.queue.popleft()
        self._total -= 1
        return ticket

    def __repr__(self) -> str:
        return (
            f"AdmissionQueue(queued={self._total}, "
            f"global_limit={self.global_limit})"
        )
