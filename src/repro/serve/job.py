"""Jobs and tickets — the unit of work the service queues and runs.

A :class:`Job` is a named dataset plus a *pipeline function*: a callable
that receives a ready-configured :class:`~repro.streams.stream.Stream`
over the dataset and runs whatever terminal it likes.  The service owns
stream construction (pool, backend, deadline), so a tenant cannot smuggle
in an unbounded pool or dodge its deadline.

A :class:`Ticket` is the caller's handle: a tiny future that resolves to
the pipeline's result.  It records the job's whole lifecycle with
monotonic timestamps (submitted → dispatched → completed), which is where
the per-tenant queue-wait and latency histograms come from.  Done
callbacks fire exactly once, from the thread that finished the ticket —
the asyncio facade bridges them onto the event loop with
``call_soon_threadsafe``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.common import IllegalStateError
from repro.faults.policy import Deadline

#: Ticket lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
SHED = "shed"

#: States a ticket can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED, SHED)


class Job:
    """One submitted pipeline: what to run, against what, under what limits."""

    __slots__ = ("tenant", "dataset", "pipeline", "priority", "deadline",
                 "backend", "label")

    def __init__(
        self,
        tenant: str,
        dataset: str,
        pipeline: Callable[[Any], Any],
        *,
        priority: int = 0,
        deadline: Deadline | None = None,
        backend: str | None = None,
        label: str = "job",
    ) -> None:
        self.tenant = tenant
        self.dataset = dataset
        self.pipeline = pipeline
        self.priority = priority
        self.deadline = deadline
        self.backend = backend
        self.label = label

    def __repr__(self) -> str:
        return (
            f"Job({self.label!r}, tenant={self.tenant!r}, "
            f"dataset={self.dataset!r}, priority={self.priority})"
        )


class Ticket:
    """The caller's handle on one queued/running/finished job."""

    __slots__ = (
        "job", "state", "submitted_ns", "dispatched_ns", "completed_ns",
        "_result", "_error", "_event", "_lock", "_callbacks",
    )

    def __init__(self, job: Job) -> None:
        self.job = job
        self.state = QUEUED
        self.submitted_ns = time.perf_counter_ns()
        self.dispatched_ns: int | None = None
        self.completed_ns: int | None = None
        self._result: Any = None
        self._error: BaseException | None = None
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: list[Callable[["Ticket"], None]] = []

    # -- state transitions (service-internal) ------------------------------ #

    def _mark_running(self) -> None:
        self.dispatched_ns = time.perf_counter_ns()
        self.state = RUNNING

    def _finish(self, state: str, result: Any = None,
                error: BaseException | None = None) -> None:
        """Move to a terminal state exactly once; later calls are no-ops
        (a shed racing a dispatch must not overwrite the winner)."""
        with self._lock:
            if self.state in TERMINAL_STATES:
                return
            self.state = state
            self._result = result
            self._error = error
            self.completed_ns = time.perf_counter_ns()
            callbacks, self._callbacks = self._callbacks, []
        self._event.set()
        for callback in callbacks:
            callback(self)

    # -- caller API -------------------------------------------------------- #

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def error(self) -> BaseException | None:
        """The failure/cancellation cause, or None."""
        return self._error

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the ticket settles; False on timeout."""
        return self._event.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """The pipeline's result; re-raises the job's failure or the
        cancellation/shed cause.  Raises :class:`TimeoutError` if the
        ticket has not settled within ``timeout`` seconds."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"{self.job.label}: ticket not settled within {timeout}s"
            )
        if self.state == DONE:
            return self._result
        if self._error is not None:
            raise self._error
        raise IllegalStateError(
            f"{self.job.label}: ticket settled as {self.state} with no cause"
        )

    def add_done_callback(self, callback: Callable[["Ticket"], None]) -> None:
        """Run ``callback(ticket)`` when the ticket settles (immediately if
        it already has).  Called from the finishing thread."""
        with self._lock:
            if self.state not in TERMINAL_STATES:
                self._callbacks.append(callback)
                return
        callback(self)

    def __repr__(self) -> str:
        return (
            f"Ticket({self.job.label!r}, tenant={self.job.tenant!r}, "
            f"state={self.state!r})"
        )
