"""SPMD rank programs on the simulated cluster — the point-to-point layer.

The collectives in :mod:`repro.mpi.collectives` are closed-form; this
module lets you *write rank programs* (mpi4py style) and run them on the
virtual cluster with per-rank clocks:

    def program(rank: int, size: int):
        if rank == 0:
            yield Send(dest=1, data={"a": 7}, tag=11)
        elif rank == 1:
            data = yield Recv(source=0, tag=11)
        yield Compute(cost=100.0)

    times, results = SimComm(ranks=2, comm=CommModel()).run(program)

Execution model (deterministic):

* programs are generators yielding :class:`Send`, :class:`Recv` or
  :class:`Compute` requests;
* ``Send`` is *eager/buffered*: the sender deposits the message and
  continues (its clock advances by the injection overhead ``alpha``);
* ``Recv`` blocks until a matching message exists; the receiver's clock
  becomes ``max(receiver_ready, sender_send_time + alpha + beta·bytes)``;
* matching is FIFO per ``(source, dest, tag)`` channel — non-overtaking,
  like MPI;
* ranks are stepped in index order, each until it blocks; a global round
  with no progress and unfinished ranks is a deadlock and raises.

The payloads are real Python objects — algorithms written against
``SimComm`` compute real results while the clock is simulated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

from repro.common import IllegalArgumentError, IllegalStateError, check_positive
from repro.faults.plan import current_fault_plan
from repro.mpi.costs import CommModel


@dataclass(frozen=True)
class Send:
    """Deposit ``data`` for ``dest`` (eager, non-blocking)."""

    dest: int
    data: Any
    tag: int = 0


@dataclass(frozen=True)
class Recv:
    """Block until a message from ``source`` with ``tag`` arrives; the
    yield expression evaluates to the payload."""

    source: int
    tag: int = 0


@dataclass(frozen=True)
class Compute:
    """Advance this rank's clock by ``cost`` units of local work."""

    cost: float


@dataclass
class _Message:
    data: Any
    available_at: float  # sender-side send time (+ injection overhead)
    nbytes: int


def _payload_bytes(data: Any, element_bytes: int) -> int:
    if hasattr(data, "__len__"):
        return max(len(data), 1) * element_bytes
    return element_bytes


RankProgram = Callable[[int, int], Generator]


class SimComm:
    """Runs one SPMD generator program per rank with virtual clocks."""

    def __init__(self, ranks: int, comm: CommModel | None = None) -> None:
        check_positive(ranks, "ranks")
        self.ranks = ranks
        self.comm = comm if comm is not None else CommModel()

    def run(self, program: RankProgram) -> tuple[list[float], list[Any]]:
        """Execute ``program`` on every rank.

        Returns:
            ``(finish_times, return_values)`` — the per-rank virtual
            completion times and the generators' return values.

        Raises:
            IllegalStateError: on communication deadlock.
        """
        comm = self.comm
        generators = [program(rank, self.ranks) for rank in range(self.ranks)]
        clocks = [0.0] * self.ranks
        mailboxes: dict[tuple[int, int, int], deque[_Message]] = {}
        blocked: list[Recv | None] = [None] * self.ranks
        finished = [False] * self.ranks
        results: list[Any] = [None] * self.ranks
        # What to send into each generator at its next step.
        inbox: list[Any] = [None] * self.ranks
        # (source, dest, tag) of messages dropped by fault injection —
        # reported in the deadlock diagnostic so a lost-message hang is
        # distinguishable from a protocol bug.
        lost: list[tuple[int, int, int]] = []

        def step(rank: int) -> bool:
            """Advance one rank until it blocks/finishes; True if progressed."""
            progressed = False
            while not finished[rank]:
                if blocked[rank] is not None:
                    request = blocked[rank]
                    key = (request.source, rank, request.tag)
                    queue = mailboxes.get(key)
                    if not queue:
                        return progressed
                    message = queue.popleft()
                    transfer = comm.message_time(message.nbytes)
                    clocks[rank] = max(
                        clocks[rank], message.available_at + transfer
                    )
                    inbox[rank] = message.data
                    blocked[rank] = None
                try:
                    request = generators[rank].send(inbox[rank])
                except StopIteration as stop:
                    finished[rank] = True
                    results[rank] = stop.value
                    return True
                inbox[rank] = None
                progressed = True
                if isinstance(request, Send):
                    if not (0 <= request.dest < self.ranks):
                        raise IllegalArgumentError(
                            f"rank {rank} sent to invalid rank {request.dest}"
                        )
                    clocks[rank] += comm.alpha  # injection overhead
                    # Fault site ``mpi:send:<src>-><dest>``.  The delay is
                    # *virtual* (added to the message's availability time,
                    # not slept); duplicates are deposited adjacently so
                    # per-channel FIFO non-overtaking is preserved.
                    plan = current_fault_plan()
                    copies, extra_latency = 1, 0.0
                    if plan is not None:
                        action = plan.fire(
                            "mpi", ("send", f"{rank}->{request.dest}"),
                            allowed=("lose", "delay", "duplicate", "raise"),
                            source=rank, dest=request.dest, tag=request.tag,
                        )
                        if action is not None:
                            if action.mode == "raise":
                                raise action.make_exception()
                            if action.mode == "lose":
                                copies = 0
                                lost.append((rank, request.dest, request.tag))
                            elif action.mode == "duplicate":
                                copies = 2
                            elif action.mode == "delay":
                                extra_latency = action.delay
                    key = (rank, request.dest, request.tag)
                    for _ in range(copies):
                        mailboxes.setdefault(key, deque()).append(
                            _Message(
                                data=request.data,
                                available_at=clocks[rank] + extra_latency,
                                nbytes=_payload_bytes(
                                    request.data, comm.element_bytes
                                ),
                            )
                        )
                elif isinstance(request, Recv):
                    if not (0 <= request.source < self.ranks):
                        raise IllegalArgumentError(
                            f"rank {rank} receives from invalid rank {request.source}"
                        )
                    blocked[rank] = request
                elif isinstance(request, Compute):
                    if request.cost < 0:
                        raise IllegalArgumentError("Compute cost must be >= 0")
                    clocks[rank] += request.cost
                else:
                    raise IllegalArgumentError(
                        f"rank {rank} yielded {request!r}; expected Send/Recv/Compute"
                    )
            return progressed

        # Prime every generator to its first yield.
        while not all(finished):
            any_progress = False
            for rank in range(self.ranks):
                if not finished[rank]:
                    if step(rank):
                        any_progress = True
            if not any_progress:
                lines = []
                for rank in range(self.ranks):
                    if finished[rank]:
                        continue
                    request = blocked[rank]
                    if request is not None:
                        lines.append(
                            f"rank {rank} blocked on Recv(source="
                            f"{request.source}, tag={request.tag})"
                        )
                    else:
                        lines.append(f"rank {rank} made no progress")
                detail = "; ".join(lines)
                if lost:
                    drops = ", ".join(
                        f"{s}->{d} tag={t}" for s, d, t in lost
                    )
                    detail += f" [messages lost by fault injection: {drops}]"
                raise IllegalStateError(f"communication deadlock: {detail}")
        return clocks, results


def hypercube_allreduce(data_of_rank: Callable[[int], Any], op, ranks: int,
                        comm: CommModel | None = None):
    """Recursive-doubling allreduce written as an SPMD program.

    Each of ``log2 R`` rounds pairs ranks differing in one address bit;
    after the last round every rank holds the full reduction.  Returns
    ``(finish_times, per_rank_results)``.
    """
    from repro.common import exact_log2, is_power_of_two

    if not is_power_of_two(ranks):
        raise IllegalArgumentError(f"ranks must be a power of two, got {ranks}")
    rounds = exact_log2(ranks)

    def program(rank: int, size: int):
        value = data_of_rank(rank)
        for level in range(rounds):
            partner = rank ^ (1 << level)
            yield Send(dest=partner, data=value, tag=level)
            other = yield Recv(source=partner, tag=level)
            # Deterministic combine order: lower rank's value first.
            if rank < partner:
                value = op(value, other)
            else:
                value = op(other, value)
        return value

    return SimComm(ranks, comm).run(program)
