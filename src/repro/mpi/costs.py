"""The alpha–beta communication cost model.

``time(b) = alpha + beta · b`` for a ``b``-byte point-to-point message —
the standard first-order model of interconnect behaviour (latency plus
inverse bandwidth), adequate for scalability *trends*, which is all the
AB5 ablation claims.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import IllegalArgumentError


@dataclass(frozen=True)
class CommModel:
    """Cluster interconnect parameters, in cost units (see CostModel).

    Attributes:
        alpha: per-message latency.
        beta: per-byte transfer cost.
        element_bytes: serialized size of one data element.
    """

    alpha: float = 5_000.0
    beta: float = 0.05
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0 or self.element_bytes <= 0:
            raise IllegalArgumentError("invalid communication parameters")

    def message_time(self, nbytes: float) -> float:
        """Virtual time to ship ``nbytes`` point-to-point."""
        return self.alpha + self.beta * nbytes

    def element_message_time(self, nelements: int) -> float:
        """Virtual time to ship ``nelements`` data elements."""
        return self.message_time(nelements * self.element_bytes)
