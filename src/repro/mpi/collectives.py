"""Simulated MPI collectives: data movement plus alpha–beta timing.

Functional counterparts of the mpi4py collective set used by JPLF's MPI
backend — each operation really moves Python data between per-rank
buffers *and* returns the virtual completion time under the binomial-tree
algorithms standard in MPI implementations:

* :func:`bcast`      — binomial broadcast: ``⌈log2 R⌉`` rounds;
* :func:`scatter`    — binomial scatter: each hop ships half the data;
* :func:`gather`     — the mirror of scatter;
* :func:`reduce`     — binomial reduction tree with an operator;
* :func:`allreduce`  — reduce + broadcast;
* :func:`alltoall`   — pairwise exchange rounds.

The times assume equal-ready ranks (a synchronized collective entry);
the :class:`~repro.mpi.executor.MpiExecutor` models skewed readiness
explicitly instead, which is why it uses its own recursion.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence, TypeVar

from repro.common import IllegalArgumentError, check_positive, is_power_of_two
from repro.mpi.costs import CommModel

T = TypeVar("T")


def _check_ranks(ranks: int) -> int:
    check_positive(ranks, "ranks")
    return ranks


def _rounds(ranks: int) -> int:
    return max(math.ceil(math.log2(ranks)), 0) if ranks > 1 else 0


def bcast(data: Sequence[T], ranks: int, comm: CommModel) -> tuple[list[Sequence[T]], float]:
    """Broadcast ``data`` to every rank.

    Returns ``(per_rank_data, virtual_time)``; binomial tree — the number
    of senders doubles each round, so time is ``⌈log2 R⌉`` full-payload
    messages.
    """
    _check_ranks(ranks)
    time = _rounds(ranks) * comm.element_message_time(len(data))
    return [data for _ in range(ranks)], time


def scatter(data: Sequence[T], ranks: int, comm: CommModel) -> tuple[list[Sequence[T]], float]:
    """Partition ``data`` into ``ranks`` equal chunks, one per rank.

    Binomial scatter: the root first ships half the payload, then each
    holder recursively halves — total time ``Σ alpha + beta·n/2^k``.
    """
    _check_ranks(ranks)
    if len(data) % ranks != 0:
        raise IllegalArgumentError(
            f"data of {len(data)} elements not divisible by {ranks} ranks"
        )
    chunk = len(data) // ranks
    parts = [data[r * chunk : (r + 1) * chunk] for r in range(ranks)]
    time = sum(
        comm.element_message_time(len(data) // (1 << k))
        for k in range(1, _rounds(ranks) + 1)
    )
    return parts, time


def gather(parts: Sequence[Sequence[T]], comm: CommModel) -> tuple[list[T], float]:
    """Concatenate per-rank chunks back at the root (mirror of scatter)."""
    ranks = _check_ranks(len(parts))
    out: list[T] = []
    for part in parts:
        out.extend(part)
    total = len(out)
    time = sum(
        comm.element_message_time(total // (1 << k))
        for k in range(1, _rounds(ranks) + 1)
    )
    return out, time


def reduce(
    values: Sequence[T], op: Callable[[T, T], T], comm: CommModel
) -> tuple[T, float]:
    """Combine one value per rank down to the root via a binomial tree.

    Each of the ``⌈log2 R⌉`` rounds costs one single-element message (the
    local combine is charged to compute, not here).  Ordered pairing keeps
    non-commutative operators correct.
    """
    ranks = _check_ranks(len(values))
    current = list(values)
    while len(current) > 1:
        if len(current) % 2 == 1:
            current.append(None)  # type: ignore[arg-type]
        current = [
            current[i] if current[i + 1] is None else op(current[i], current[i + 1])
            for i in range(0, len(current), 2)
        ]
    time = _rounds(ranks) * comm.element_message_time(1)
    return current[0], time


def allreduce(
    values: Sequence[T], op: Callable[[T, T], T], comm: CommModel
) -> tuple[list[T], float]:
    """Reduce then broadcast: every rank ends with the combined value.

    (Recursive-doubling allreduce has the same ``log R`` round count.)
    """
    ranks = len(values)
    result, reduce_time = reduce(values, op, comm)
    replicated, bcast_time = bcast([result], ranks, comm)
    return [result] * ranks, reduce_time + bcast_time


def alltoall(
    matrix: Sequence[Sequence[T]], comm: CommModel
) -> tuple[list[list[T]], float]:
    """Transpose the rank×rank block matrix (personalized exchange).

    ``matrix[i][j]`` is the block rank ``i`` sends to rank ``j``; the
    result's ``[j][i]`` holds it.  Pairwise-exchange: ``R − 1`` rounds of
    one block each.
    """
    ranks = _check_ranks(len(matrix))
    for row in matrix:
        if len(row) != ranks:
            raise IllegalArgumentError("alltoall needs a square block matrix")
    transposed = [[matrix[i][j] for i in range(ranks)] for j in range(ranks)]
    block = max((_block_len(matrix)), 1)
    time = (ranks - 1) * comm.element_message_time(block)
    return transposed, time


def _block_len(matrix) -> int:
    for row in matrix:
        for block in row:
            if hasattr(block, "__len__"):
                return len(block)
            return 1
    return 1
