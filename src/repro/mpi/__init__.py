"""Simulated message-passing execution (DESIGN.md substitution S7).

JPLF's cluster story ("the MPI executors facilitate a much larger
scalability", paper Section III, and reference [20]) needs a cluster; we
model one with the standard **alpha–beta (postal) cost model**: sending
``b`` bytes costs ``alpha + beta·b`` virtual time units.

The :class:`~repro.mpi.executor.MpiExecutor` runs a
:class:`~repro.jplf.power_function.PowerFunction` the way the JPLF MPI
backend does:

1. *scatter*: descend the function's own deconstruction tree ``log2 R``
   levels, shipping one sub-problem to each of the ``R`` ranks (binomial
   tree, alpha–beta charged per hop);
2. *local phase*: each rank computes its sub-function for real (the
   result is exact) while its virtual time advances by a simulated
   multithreaded execution on ``threads_per_rank`` virtual cores;
3. *combine tree*: partial results flow back up in ``log2 R`` paired
   exchanges, each charged communication plus combine cost.

Results are bit-identical to the sequential execution; only the clock is
simulated.
"""

from repro.mpi.costs import CommModel
from repro.mpi.executor import MpiExecutor, MpiRunReport
from repro.mpi.simcomm import Compute, Recv, Send, SimComm, hypercube_allreduce

__all__ = [
    "CommModel",
    "Compute",
    "MpiExecutor",
    "MpiRunReport",
    "Recv",
    "Send",
    "SimComm",
    "hypercube_allreduce",
]
