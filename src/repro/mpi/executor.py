"""The simulated-MPI executor for PowerFunctions.

Executes the real computation (results are exact) while advancing a
virtual clock through the scatter → local-compute → combine-tree pattern
of JPLF's MPI backend.  See the package docstring for the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common import IllegalArgumentError, exact_log2, is_power_of_two
from repro.jplf.executors import SequentialExecutor
from repro.jplf.power_function import PowerFunction
from repro.mpi.costs import CommModel
from repro.simcore.costmodel import CostModel
from repro.simcore.dag import build_dc_dag
from repro.simcore.machine import SimMachine


@dataclass
class MpiRunReport:
    """Outcome of one simulated distributed execution.

    Attributes:
        result: the real computed value (identical to sequential).
        finish_time: virtual completion time (makespan across ranks).
        scatter_time: virtual time when the slowest rank received its
            sub-problem.
        local_time: the slowest rank's local compute duration.
        combine_time: time spent in the combine tree (critical path).
        ranks: number of simulated ranks.
        threads_per_rank: virtual cores per rank.
    """

    result: object
    finish_time: float
    scatter_time: float
    local_time: float
    combine_time: float
    ranks: int
    threads_per_rank: int


def _default_result_elements(result: object) -> int:
    """Number of elements in a partial result (for message sizing)."""
    if hasattr(result, "__len__"):
        return len(result)  # type: ignore[arg-type]
    if isinstance(result, tuple):
        return sum(_default_result_elements(part) for part in result)
    return 1


class MpiExecutor:
    """Runs PowerFunctions on a simulated cluster.

    Args:
        ranks: number of MPI ranks (a power of two — the deconstruction
            tree is binary).
        threads_per_rank: virtual cores for each rank's local phase.
        comm: interconnect model.
        cost: node-level compute cost model (same meaning as in simcore).
        operator_profile: simcore function profile for local-phase DAG
            shape (e.g. ``"polynomial"``, ``"reduce"``, ``"map"``).
        result_elements: sizing function for partial-result messages.
    """

    def __init__(
        self,
        ranks: int,
        threads_per_rank: int = 1,
        comm: CommModel | None = None,
        cost: CostModel | None = None,
        operator_profile: str = "reduce",
        result_elements: Callable[[object], int] = _default_result_elements,
    ) -> None:
        if not is_power_of_two(ranks):
            raise IllegalArgumentError(f"ranks must be a power of two, got {ranks}")
        if threads_per_rank < 1:
            raise IllegalArgumentError("threads_per_rank must be >= 1")
        self.ranks = ranks
        self.threads_per_rank = threads_per_rank
        self.comm = comm if comm is not None else CommModel()
        self.cost = cost if cost is not None else CostModel()
        self.operator_profile = operator_profile
        self.result_elements = result_elements
        # Real results come from sequential recursion; a bulk leaf keeps
        # the Python-side cost of large local phases reasonable.
        self._local_executor = SequentialExecutor(threshold=1024)

    # -- local phase ------------------------------------------------------- #

    def _local_time(self, n: int) -> float:
        """Virtual duration of one rank's local computation of ``n``
        elements on ``threads_per_rank`` virtual cores."""
        from repro.simcore.adapters import default_threshold, profile_model

        model, operator = profile_model(self.operator_profile, self.cost)
        if self.threads_per_rank == 1:
            return model.leaf_cost(n)
        threshold = default_threshold(n, self.threads_per_rank)
        dag = build_dc_dag(n, threshold, model, operator)
        return SimMachine(self.threads_per_rank, model.steal_latency).run(dag).makespan

    # -- the scatter / compute / combine recursion -------------------------- #

    def execute(self, function: PowerFunction) -> MpiRunReport:
        """Run ``function`` on the simulated cluster."""
        levels = exact_log2(self.ranks)
        if len(function.data) < self.ranks:
            raise IllegalArgumentError(
                f"input of {len(function.data)} elements cannot feed "
                f"{self.ranks} ranks"
            )
        scatter_times: list[float] = []
        local_times: list[float] = []

        def recurse(fn: PowerFunction, depth: int, ready: float) -> tuple[object, float]:
            """Returns (result, virtual finish time of this subtree)."""
            if depth == 0:
                # One rank: data arrived at `ready`; compute locally.
                local = self._local_time(len(fn.data))
                scatter_times.append(ready)
                local_times.append(local)
                return self._local_executor.execute(fn), ready + local

            left_fn, right_fn = fn.subfunctions()
            # The holder keeps the left half and ships the right half to a
            # peer rank (binomial scatter): the peer starts after transfer.
            transfer = self.comm.element_message_time(len(right_fn.data))
            left_result, left_done = recurse(left_fn, depth - 1, ready)
            right_result, right_done = recurse(right_fn, depth - 1, ready + transfer)

            # The peer ships its partial result back; combining runs on the
            # holder after both the local result and the message arrive.
            result_msg = self.comm.element_message_time(
                self.result_elements(right_result)
            )
            combine_start = max(left_done, right_done + result_msg)
            combined = fn.combine(left_result, right_result)
            return combined, combine_start + self.cost.combine_cost(len(fn.data))

        result, finish = recurse(function, levels, 0.0)
        scatter_time = max(scatter_times)
        local_time = max(local_times)
        return MpiRunReport(
            result=result,
            finish_time=finish,
            scatter_time=scatter_time,
            local_time=local_time,
            combine_time=finish - scatter_time - local_time
            if finish > scatter_time + local_time
            else 0.0,
            ranks=self.ranks,
            threads_per_rank=self.threads_per_rank,
        )
