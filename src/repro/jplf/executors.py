"""JPLF executors: the same function, different execution engines.

Separating execution from definition is the framework's design center
(Section III).  An :class:`Executor` consumes any
:class:`~repro.jplf.power_function.PowerFunction` through its primitives
only:

* :class:`SequentialExecutor` — recursion to a leaf threshold, leaves
  finished by ``leaf_case``;
* :class:`ForkJoinExecutor` — the multithreading execution used in the
  paper's comparisons, on our work-stealing pool.

The simulated-machine executor lives in :mod:`repro.simcore.adapters` and
the simulated-MPI executor in :mod:`repro.mpi.executor`, completing the
sequential / multithreaded / MPI triple the paper describes.
"""

from __future__ import annotations

import abc
from typing import Generic, TypeVar

from repro.common import check_positive
from repro.forkjoin.pool import ForkJoinPool, common_pool
from repro.forkjoin.task import RecursiveTask
from repro.jplf.power_function import PowerFunction

R = TypeVar("R")


class Executor(abc.ABC, Generic[R]):
    """Executes PowerFunctions; knows nothing about specific functions."""

    @abc.abstractmethod
    def execute(self, function: PowerFunction) -> R:
        """Compute ``function`` on this executor's engine."""


class SequentialExecutor(Executor[R]):
    """Depth-first recursion with a leaf threshold.

    Args:
        threshold: maximum leaf length; at or below it the function's
            ``leaf_case`` finishes the work (1 recurses to singletons).
    """

    def __init__(self, threshold: int = 1) -> None:
        self.threshold = check_positive(threshold, "threshold")

    def execute(self, function: PowerFunction) -> R:
        if len(function.data) <= self.threshold:
            return function.leaf_case()
        left_fn, right_fn = function.subfunctions()
        return function.combine(self.execute(left_fn), self.execute(right_fn))


class _PowerFunctionTask(RecursiveTask):
    """Fork/join mirror of the template method."""

    __slots__ = ("function", "threshold")

    def __init__(self, function: PowerFunction, threshold: int) -> None:
        super().__init__()
        self.function = function
        self.threshold = threshold

    def compute(self):
        function = self.function
        if len(function.data) <= self.threshold:
            return function.leaf_case()
        left_fn, right_fn = function.subfunctions()
        left_task = _PowerFunctionTask(left_fn, self.threshold)
        left_task.fork()
        right_result = _PowerFunctionTask(right_fn, self.threshold).compute()
        return function.combine(left_task.join(), right_result)


class ForkJoinExecutor(Executor[R]):
    """Multithreaded execution on a work-stealing pool.

    Args:
        pool: the fork/join pool (common pool when None).
        threshold: leaf length at which tasks stop splitting; when None,
            Java's heuristic ``len / (4 × parallelism)`` is applied per
            invocation.
    """

    def __init__(self, pool: ForkJoinPool | None = None, threshold: int | None = None) -> None:
        self.pool = pool
        self.threshold = threshold

    def execute(self, function: PowerFunction) -> R:
        pool = self.pool if self.pool is not None else common_pool()
        threshold = self.threshold
        if threshold is None:
            threshold = max(len(function.data) // (4 * pool.parallelism), 1)
        return pool.invoke(_PowerFunctionTask(function, threshold))
