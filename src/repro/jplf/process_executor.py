"""Process-pool execution of PowerFunctions — real parallelism in CPython.

The paper's multithreading maps onto JVM threads; in CPython the GIL
serializes threads, so the engine that actually buys wall-clock speedup on
a multi-core host is **multiprocessing**.  :class:`ProcessExecutor`
descends the function's own deconstruction tree ``log2(processes)`` levels
(cheap views), ships each sub-function to a worker process, and combines
the returned partial results in the parent — structurally the same
scatter/compute/combine pattern as the MPI executor, with real OS
processes instead of a simulated cluster.

Constraints inherited from pickling: the function object and its captured
state must be picklable (named functions or ``operator.*`` instead of
lambdas; the view-based ``PowerList`` pickles fine, though each worker
receives a *copy* of the underlying storage — inter-process shipping is
exactly the copy cost the alpha–beta model charges for MPI).

Robustness (``docs/robustness.md``): the executor follows the same
lifecycle contract as :class:`repro.forkjoin.pool.ForkJoinPool` —
``shutdown()`` is idempotent, ``execute`` after shutdown raises
:class:`~repro.common.RejectedExecutionError`, and the executor is a
context manager.  Fault injection hooks (site ``proc:worker-<i>``) let a
:class:`repro.faults.plan.FaultPlan` raise in, delay, or SIGKILL-style
kill a worker mid-run; a killed worker breaks the ``ProcessPoolExecutor``
(``BrokenProcessPool``), which the executor contains by discarding its
owned pool so a retry starts on fresh processes.  Pass ``retry=`` /
``fallback=True`` to recover automatically; degraded runs re-execute
sequentially in the parent and are counted in :meth:`stats`.
"""

from __future__ import annotations

import os
import threading
import time

from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.common import (
    IllegalArgumentError,
    RejectedExecutionError,
    TaskTimeoutError,
    exact_log2,
    is_power_of_two,
)
from repro.faults.plan import FaultInjected, current_fault_plan
from repro.jplf.executors import Executor, SequentialExecutor
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import current_profiler
from repro.jplf.power_function import PowerFunction
from repro.powerlist import shm as _shm

#: Leaf threshold used inside each worker (bulk leaf_case below it).
_WORKER_LEAF_THRESHOLD = 1024

#: How often the scatter wait loop wakes to re-check for a concurrent
#: shutdown().  Completions still wake it immediately; this only bounds
#: the latency of noticing an executor-level cancellation.
_SHUTDOWN_POLL_S = 0.05

#: The cancellation flag for the leaf batch currently running in THIS
#: worker process (None in the parent and between batches).  Leaf runners
#: that want chunk-boundary abort — the stream process backend's sinks —
#: read it via :func:`current_leaf_cancel` and poll ``is_set()``.
_leaf_cancel: "_shm.SharedFlag | None" = None


def current_leaf_cancel():
    """The in-flight batch's shared cancellation flag, or None."""
    return _leaf_cancel


def _run_subfunction(function: PowerFunction):
    """Top-level worker entry point (must be module-level to pickle)."""
    return SequentialExecutor(threshold=_WORKER_LEAF_THRESHOLD).execute(function)


def _run_subfunction_faulty(function: PowerFunction, mode: str, delay: float):
    """Worker entry point with a fault decision already made by the parent.

    The parent process owns the (seeded, deterministic) strike decision;
    the child merely enacts it, so determinism survives process
    boundaries.  ``kill`` hard-exits the child the way a SIGKILL would —
    bypassing cleanup — which surfaces in the parent as
    ``BrokenProcessPool``.
    """
    if mode == "kill":
        os._exit(13)
    if delay > 0.0:
        time.sleep(delay)
    if mode == "raise":
        raise FaultInjected(f"injected fault in process worker (pid {os.getpid()})")
    return _run_subfunction(function)


def _run_leaf_batch(runner, payloads, cancel_name: str | None = None):
    """Top-level worker entry point for generic leaf batches.

    Used by the stream process backend: one submission carries a whole
    contiguous batch of leaf payloads, so a 64-leaf terminal costs
    ~``processes`` IPC round trips instead of 64.  Returns
    ``(pid, results, duration_ns)`` — the pid keys the parent's
    per-worker labeled metrics.

    ``cancel_name`` names the run's shared cancellation flag.  It is
    published via :func:`current_leaf_cancel` for the duration of the
    batch so leaf sinks can poll it at chunk boundaries (aborting a
    RUNNING leaf, not just skipping pending ones), and checked between
    leaves here so a cancelled batch stops scanning untouched leaves.
    A flag the parent already unlinked means the run was abandoned
    (failure or deadline) — the batch returns placeholder results.
    """
    global _leaf_cancel
    flag = None
    if cancel_name is not None:
        try:
            flag = _shm.SharedFlag.attach(cancel_name)
        except FileNotFoundError:
            return os.getpid(), [None] * len(payloads), 0
    start = time.perf_counter_ns()
    results: list = []
    _leaf_cancel = flag
    try:
        for payload in payloads:
            if flag is not None and flag.is_set():
                results.append(None)
                continue
            results.append(runner(payload))
    finally:
        _leaf_cancel = None
        if flag is not None:
            flag.close()
    return os.getpid(), results, time.perf_counter_ns() - start


def _run_leaf_batch_faulty(runner, payloads, mode: str, delay: float,
                           cancel_name: str | None = None):
    """Leaf-batch entry point enacting a parent-decided fault verdict."""
    if mode == "kill":
        os._exit(13)
    if delay > 0.0:
        time.sleep(delay)
    if mode == "raise":
        raise FaultInjected(f"injected fault in process worker (pid {os.getpid()})")
    return _run_leaf_batch(runner, payloads, cancel_name)


class _ActiveRun:
    """One in-flight ``run_leaves`` scatter, registered so ``shutdown()``
    can reach its cancellation flag and pending futures."""

    __slots__ = ("cancel", "futures")

    def __init__(self, cancel, futures: list) -> None:
        self.cancel = cancel
        self.futures = futures


class ProcessExecutor(Executor):
    """Executes a PowerFunction across OS processes.

    Args:
        processes: number of worker processes; a power of two, since the
            deconstruction tree is binary.
        pool: an optional pre-started ``ProcessPoolExecutor`` to reuse
            (workers are expensive to fork; share one across calls).
        retry: optional :class:`repro.faults.policy.RetryPolicy` — a
            failed scatter/compute/combine run is re-executed (on a fresh
            pool if the old one broke).
        fallback: when True, a run whose retries are exhausted degrades to
            sequential execution in the parent process.
    """

    def __init__(
        self,
        processes: int = 2,
        pool: ProcessPoolExecutor | None = None,
        *,
        retry=None,
        fallback: bool = False,
    ) -> None:
        if not is_power_of_two(processes):
            raise IllegalArgumentError(
                f"processes must be a power of two, got {processes}"
            )
        self.processes = processes
        self._pool = pool
        self._owns_pool = pool is None
        self._shutdown = False
        # In-flight run_leaves scatters, so a concurrent shutdown() can
        # cancel their pending futures and wake their wait loops instead
        # of leaving a waiter hanging on abandoned children.
        self._active_lock = threading.Lock()
        self._active_runs: set[_ActiveRun] = set()
        self.retry = retry
        self.fallback = fallback
        # Labeled counters: every ProcessExecutor gets its own registry so
        # scraping (repro.obs.prom.render) can tell executors apart by the
        # ``processes`` label without cross-instance interference.  The
        # ``pool="process"`` label puts these series in the same Prometheus
        # families as the thread pools', so one scrape covers both engines.
        self.metrics = MetricsRegistry(name="procexec")
        labels = {"pool": "process", "processes": str(processes)}
        self._labels = labels
        self._runs = self.metrics.counter("runs", **labels)
        self._retries = self.metrics.counter("retries", **labels)
        self._degraded = self.metrics.counter("degraded_runs", **labels)
        self._broken = self.metrics.counter("broken_pools", **labels)
        self._timeouts = self.metrics.counter("deadline_timeouts", **labels)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.processes)
        return self._pool

    def _discard_broken_pool(self) -> None:
        """Drop a broken owned pool so the next attempt forks fresh workers."""
        self._broken.inc()
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown(wait=False)
            self._pool = None
            self._owns_pool = True

    def _execute_once(self, function: PowerFunction):
        levels = exact_log2(self.processes)
        if levels == 0:
            return _run_subfunction(function)

        # Descend: build the 2^levels sub-functions plus the combine plan.
        frontier: list[PowerFunction] = [function]
        parents: list[list[PowerFunction]] = []
        for _ in range(levels):
            parents.append(frontier)
            next_frontier: list[PowerFunction] = []
            for fn in frontier:
                left, right = fn.subfunctions()
                next_frontier.extend((left, right))
            frontier = next_frontier

        pool = self._ensure_pool()
        plan = current_fault_plan()
        profiler = current_profiler()
        scatter_start = time.perf_counter_ns() if profiler is not None else 0
        futures = []
        for i, fn in enumerate(frontier):
            action = None
            if plan is not None:
                # The strike decision stays in the parent (deterministic);
                # the child only enacts the shipped (mode, delay) verdict.
                action = plan.fire(
                    "proc", (f"worker-{i}",),
                    allowed=("raise", "delay", "kill"), index=i,
                )
            if action is None:
                futures.append(pool.submit(_run_subfunction, fn))
            else:
                futures.append(
                    pool.submit(_run_subfunction_faulty, fn, action.mode, action.delay)
                )
        try:
            results = [f.result() for f in futures]
        except BrokenProcessPool:
            # A killed child poisons the whole pool; replace it so a retry
            # does not immediately re-fail on the same broken executor.
            self._discard_broken_pool()
            raise
        if profiler is not None:
            profiler.profile.record_stage(
                "proc:scatter",
                time.perf_counter_ns() - scatter_start,
                elements=len(frontier),
            )

        # Ascend: combine pairwise with each level's parent functions.
        combine_start = time.perf_counter_ns() if profiler is not None else 0
        for level_parents in reversed(parents):
            results = [
                parent.combine(results[2 * i], results[2 * i + 1])
                for i, parent in enumerate(level_parents)
            ]
        if profiler is not None:
            profiler.profile.record_stage(
                "proc:combine",
                time.perf_counter_ns() - combine_start,
                elements=sum(len(p) for p in parents),
            )
        return results[0]

    def execute(self, function: PowerFunction):
        if self._shutdown:
            raise RejectedExecutionError(
                "ProcessExecutor has been shut down and no longer accepts work"
            )
        if len(function.data) < self.processes:
            raise IllegalArgumentError(
                f"input of {len(function.data)} elements cannot feed "
                f"{self.processes} processes"
            )
        self._runs.inc()
        if self.retry is None and not self.fallback:
            return self._execute_once(function)

        from repro.faults.policy import run_resilient

        def on_retry(attempt, exc):
            self._retries.inc()

        def on_degrade(exc):
            self._degraded.inc()

        def sequential():
            return _run_subfunction(function)

        return run_resilient(
            lambda: self._execute_once(function),
            retry=self.retry,
            fallback=sequential if self.fallback else None,
            label=f"ProcessExecutor[{self.processes}]",
            on_retry=on_retry,
            on_degrade=on_degrade,
        )

    # ------------------------------------------------------------------ #
    # Generic leaf-batch execution (the stream process backend's engine)
    # ------------------------------------------------------------------ #

    def _observe_batch(self, pid: int, leaves: int, duration_ns: int) -> None:
        """Per-worker labeled series: which child did how much, how fast."""
        worker = {"worker": str(pid), **self._labels}
        self.metrics.counter("worker_batches", **worker).inc()
        self.metrics.counter("worker_leaves", **worker).inc(leaves)
        self.metrics.histogram("worker_batch_duration_ns", **worker).observe(
            duration_ns
        )

    def _map_leaves_once(self, runner, payloads, deadline, early_stop, label,
                         observer=None, early_stop_slots=None):
        """One scatter of ``payloads`` over the pool, batched and ordered.

        Payloads are grouped into at most ``2 × processes`` contiguous
        batches (amortizing submission overhead while leaving slack for
        load balancing) and the results are returned in payload order.

        Every scatter creates one :class:`repro.powerlist.shm.SharedFlag`
        whose segment name rides along with each batch submission.  The
        flag is the run's cross-process cancellation token: the parent
        sets it on failure, deadline expiry, or early stop, and workers
        poll it both between leaves and — via ``current_leaf_cancel`` —
        inside a leaf at chunk boundaries, so a RUNNING leaf aborts
        instead of scanning to completion after the answer is known.

        * ``deadline`` bounds the whole wait: on expiry, every pending
          batch future is cancelled and :class:`TaskTimeoutError` raised —
          outstanding child work is abandoned, not blocked on.
        * ``early_stop(result)``: checked against each leaf result as its
          batch completes; once satisfied, pending batches are cancelled
          and their slots come back as ``None`` (the short-circuit used by
          the match/find terminals).
        * ``early_stop_slots(lo, hi, batch_results)``: like ``early_stop``
          but position-aware — receives the slot bounds of the completed
          batch so the caller can apply order-sensitive stop rules (the
          counted-``limit`` budget only stops once a *contiguous* prefix
          of leaves has produced enough elements).
        * The first batch failure cancels the remaining batches and
          re-raises — the process-side analogue of the thread terminals'
          ``_TerminalContext`` fail-fast contract.  A dead worker
          (``BrokenProcessPool``) additionally discards the owned pool so
          a retry starts on fresh processes.
        * ``observer``: optional adaptive-scheduling
          :class:`repro.streams.adaptive.RunObservation` — fed each
          batch's measured duration, slot-spread over its leaves.
        """
        n = len(payloads)
        if n == 0:
            return []
        if self._shutdown:
            raise RejectedExecutionError(
                "ProcessExecutor has been shut down and no longer accepts work"
            )
        pool = self._ensure_pool()
        plan = current_fault_plan()
        batch_count = min(n, self.processes * 2)
        bounds = [
            (n * i // batch_count, n * (i + 1) // batch_count)
            for i in range(batch_count)
        ]
        futures: list = []
        results: list = [None] * n
        cancel = _shm.SharedFlag.create()
        run = _ActiveRun(cancel, futures)
        with self._active_lock:
            self._active_runs.add(run)
        # Submission itself can raise BrokenProcessPool (an already-killed
        # worker fails the pool before the next submit lands), so it must
        # sit inside the containment block or the broken pool would never
        # be discarded and every later run would inherit it.
        try:
            for i, (lo, hi) in enumerate(bounds):
                batch = payloads[lo:hi]
                action = None
                if plan is not None:
                    # Strike decisions stay in the parent (deterministic);
                    # the child only enacts the shipped (mode, delay)
                    # verdict.
                    action = plan.fire(
                        "proc", (f"worker-{i}",),
                        allowed=("raise", "delay", "kill"), index=i,
                    )
                if action is None:
                    futures.append(
                        pool.submit(_run_leaf_batch, runner, batch, cancel.name)
                    )
                else:
                    futures.append(
                        pool.submit(
                            _run_leaf_batch_faulty, runner, batch,
                            action.mode, action.delay, cancel.name,
                        )
                    )

            scatter_ns = time.perf_counter_ns()
            slot_of = {future: bounds[i] for i, future in enumerate(futures)}
            not_done = set(futures)
            first_round = True
            while not_done:
                # Bounded wait: Future.cancel() on a pending process-pool
                # work item never notifies wait() waiters (the manager
                # thread drops cancelled items without the notify-cancel
                # handshake), so a concurrent shutdown() cannot wake this
                # loop through the futures themselves — it must observe
                # ``_shutdown`` on the next poll tick instead.
                timeout = _SHUTDOWN_POLL_S
                if deadline is not None:
                    timeout = min(deadline.remaining(), timeout)
                done, not_done = wait(
                    not_done, timeout=timeout, return_when=FIRST_EXCEPTION
                )
                if self._shutdown:
                    # A concurrent shutdown() cancelled our pending
                    # futures and set the cancel flag; abandon the run
                    # instead of blocking on children that may never
                    # report back (the post-shutdown rejection contract).
                    raise RejectedExecutionError(
                        f"ProcessExecutor was shut down with {label} in "
                        "flight; its leaf batches were cancelled"
                    )
                # A future cancelled by shutdown() lands in ``done`` but
                # raises CancelledError from exception()/result(); skip
                # them here (the shutdown check above owns that path).
                failed = next(
                    (
                        f for f in done
                        if not f.cancelled() and f.exception() is not None
                    ),
                    None,
                )
                if failed is not None:
                    raise failed.exception()
                if not done and not_done:
                    if deadline is None or not deadline.expired:
                        continue  # poll tick, not an expiry
                    self._timeouts.inc()
                    raise TaskTimeoutError(
                        f"{label} exceeded its deadline with "
                        f"{len(not_done)} of {len(futures)} leaf batches "
                        "outstanding"
                    )
                stop = False
                round_ns = time.perf_counter_ns()
                for future in done:
                    if future.cancelled():
                        continue
                    lo, hi = slot_of[future]
                    pid, batch_results, duration_ns = future.result()
                    results[lo:hi] = batch_results
                    self._observe_batch(pid, hi - lo, duration_ns)
                    if observer is not None:
                        observer.record_batch(lo, hi, duration_ns)
                        if first_round:
                            # Round-trip minus child compute = dispatch
                            # overhead (pickling, queueing, IPC) — the
                            # sample the adaptive policy derives its
                            # leaf-span target from.  Only the first
                            # completion round: later rounds conflate
                            # overhead with waiting behind siblings.
                            overhead = round_ns - scatter_ns - duration_ns
                            if overhead > 0:
                                observer.record_dispatch(overhead)
                    if early_stop is not None and any(
                        early_stop(r) for r in batch_results
                    ):
                        stop = True
                    if early_stop_slots is not None and early_stop_slots(
                        lo, hi, batch_results
                    ):
                        stop = True
                first_round = False
                if stop:
                    # Tell RUNNING leaves in other workers to abort at
                    # their next chunk boundary, then stop collecting.
                    cancel.set()
                    break
        except BrokenProcessPool:
            cancel.set()
            for future in futures:
                future.cancel()
            self._discard_broken_pool()
            raise
        except BaseException:
            cancel.set()
            for future in futures:
                future.cancel()
            raise
        finally:
            with self._active_lock:
                self._active_runs.discard(run)
            cancel.close()
        for future in not_done:
            future.cancel()
        return results

    def run_leaves(self, runner, payloads, *, deadline=None, early_stop=None,
                   label: str = "leaf batch", observer=None,
                   early_stop_slots=None):
        """Run picklable leaf ``payloads`` across the worker pool.

        ``runner`` must be a module-level callable (it crosses the pickle
        boundary); each payload's result comes back in payload order.
        Applies this executor's ``retry``/``fallback`` policies: exhausted
        retries degrade to running the payloads sequentially in the parent
        (counted in :meth:`stats` as a degraded run; the degraded path
        skips ``observer`` — in-parent timings would poison the memo).
        Deadline expiry raises :class:`~repro.common.TaskTimeoutError`
        and is never retried.
        """
        if self._shutdown:
            raise RejectedExecutionError(
                "ProcessExecutor has been shut down and no longer accepts work"
            )
        self._runs.inc()
        if self.retry is None and not self.fallback:
            return self._map_leaves_once(
                runner, payloads, deadline, early_stop, label, observer,
                early_stop_slots,
            )

        from repro.faults.policy import run_resilient

        def primary():
            return self._map_leaves_once(
                runner, payloads, deadline, early_stop, label, observer,
                early_stop_slots,
            )

        def sequential():
            out = []
            for i, payload in enumerate(payloads):
                result = runner(payload)
                out.append(result)
                if early_stop is not None and early_stop(result):
                    out.extend([None] * (len(payloads) - len(out)))
                    break
                if early_stop_slots is not None and early_stop_slots(
                    i, i + 1, [result]
                ):
                    out.extend([None] * (len(payloads) - len(out)))
                    break
            return out

        return run_resilient(
            primary,
            retry=self.retry,
            deadline=deadline,
            fallback=sequential if self.fallback else None,
            label=label,
            on_retry=lambda attempt, exc: self._retries.inc(),
            on_degrade=lambda exc: self._degraded.inc(),
        )

    def stats(self) -> dict:
        """Counters for this executor: runs, retries, degraded runs, broken
        pools discarded after a worker death, plus per-worker batch/leaf
        counts keyed by child pid (populated by :meth:`run_leaves`)."""
        workers: dict[str, dict] = {}
        for entry in self.metrics.collect():
            pid = entry["labels"].get("worker")
            if pid is None or entry["name"] == "worker_batch_duration_ns":
                continue
            workers.setdefault(pid, {})[entry["name"]] = entry["value"]
        return {
            "runs": self._runs.value,
            "retries": self._retries.value,
            "degraded_runs": self._degraded.value,
            "broken_pools": self._broken.value,
            "deadline_timeouts": self._timeouts.value,
            "workers": workers,
        }

    def shutdown(self) -> None:
        """Stop the worker processes and reject further ``execute`` calls.

        Idempotent; mirrors ``ForkJoinPool.shutdown`` semantics.  A
        borrowed pool is left running (its owner shuts it down) but this
        executor still transitions to the rejecting state.

        A shutdown that races an active :meth:`run_leaves` does not hang
        either side: each in-flight run's cancellation flag is set (so
        RUNNING leaves abort at their next chunk boundary), its pending
        futures are cancelled (waking the FIRST_EXCEPTION wait loop, which
        raises :class:`~repro.common.RejectedExecutionError`), and the
        owned pool is released without blocking on abandoned children.
        """
        self._shutdown = True
        with self._active_lock:
            active = list(self._active_runs)
        for run in active:
            run.cancel.set()
            for future in run.futures:
                future.cancel()
        if self._pool is not None and self._owns_pool:
            # With runs in flight, a blocking shutdown would wait on the
            # very children the waiter just abandoned — hand the pool its
            # cancellations and return; idle executors keep the old
            # synchronous teardown.
            self._pool.shutdown(wait=not active, cancel_futures=bool(active))
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
