"""Process-pool execution of PowerFunctions — real parallelism in CPython.

The paper's multithreading maps onto JVM threads; in CPython the GIL
serializes threads, so the engine that actually buys wall-clock speedup on
a multi-core host is **multiprocessing**.  :class:`ProcessExecutor`
descends the function's own deconstruction tree ``log2(processes)`` levels
(cheap views), ships each sub-function to a worker process, and combines
the returned partial results in the parent — structurally the same
scatter/compute/combine pattern as the MPI executor, with real OS
processes instead of a simulated cluster.

Constraints inherited from pickling: the function object and its captured
state must be picklable (named functions or ``operator.*`` instead of
lambdas; the view-based ``PowerList`` pickles fine, though each worker
receives a *copy* of the underlying storage — inter-process shipping is
exactly the copy cost the alpha–beta model charges for MPI).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.common import IllegalArgumentError, exact_log2, is_power_of_two
from repro.jplf.executors import Executor, SequentialExecutor
from repro.jplf.power_function import PowerFunction

#: Leaf threshold used inside each worker (bulk leaf_case below it).
_WORKER_LEAF_THRESHOLD = 1024


def _run_subfunction(function: PowerFunction):
    """Top-level worker entry point (must be module-level to pickle)."""
    return SequentialExecutor(threshold=_WORKER_LEAF_THRESHOLD).execute(function)


class ProcessExecutor(Executor):
    """Executes a PowerFunction across OS processes.

    Args:
        processes: number of worker processes; a power of two, since the
            deconstruction tree is binary.
        pool: an optional pre-started ``ProcessPoolExecutor`` to reuse
            (workers are expensive to fork; share one across calls).
    """

    def __init__(self, processes: int = 2, pool: ProcessPoolExecutor | None = None) -> None:
        if not is_power_of_two(processes):
            raise IllegalArgumentError(
                f"processes must be a power of two, got {processes}"
            )
        self.processes = processes
        self._pool = pool
        self._owns_pool = pool is None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.processes)
        return self._pool

    def execute(self, function: PowerFunction):
        levels = exact_log2(self.processes)
        if len(function.data) < self.processes:
            raise IllegalArgumentError(
                f"input of {len(function.data)} elements cannot feed "
                f"{self.processes} processes"
            )
        if levels == 0:
            return _run_subfunction(function)

        # Descend: build the 2^levels sub-functions plus the combine plan.
        frontier: list[PowerFunction] = [function]
        parents: list[list[PowerFunction]] = []
        for _ in range(levels):
            parents.append(frontier)
            next_frontier: list[PowerFunction] = []
            for fn in frontier:
                left, right = fn.subfunctions()
                next_frontier.extend((left, right))
            frontier = next_frontier

        pool = self._ensure_pool()
        futures = [pool.submit(_run_subfunction, fn) for fn in frontier]
        results = [f.result() for f in futures]

        # Ascend: combine pairwise with each level's parent functions.
        for level_parents in reversed(parents):
            results = [
                parent.combine(results[2 * i], results[2 * i + 1])
                for i, parent in enumerate(level_parents)
            ]
        return results[0]

    def shutdown(self) -> None:
        """Stop the worker processes (only if this executor created them)."""
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
