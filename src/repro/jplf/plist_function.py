"""JPLF PList functions — multi-way divide-and-conquer templates.

The paper (Section III, citing [21]) notes that "the JPLF also includes
PList functions, that express multi-way divide-and-conquer computations".
:class:`PListFunction` is the n-way analogue of
:class:`~repro.jplf.power_function.PowerFunction`: the deconstruction
yields ``arity`` sub-problems, the combination merges the ordered list of
sub-results.

The arity may vary per level — :meth:`PListFunction.arity_of` picks a
divisor of the current length (default: the smallest prime factor, which
maximizes decomposition depth).
"""

from __future__ import annotations

import abc
from typing import Callable, Generic, TypeVar

from repro.common import IllegalArgumentError
from repro.forkjoin.pool import ForkJoinPool, common_pool
from repro.forkjoin.task import RecursiveTask, invoke_all
from repro.powerlist.plist import PList

T = TypeVar("T")
R = TypeVar("R")


def smallest_prime_factor(n: int) -> int:
    """The smallest prime dividing ``n`` (``n`` itself when prime)."""
    if n < 2:
        raise IllegalArgumentError(f"need n >= 2, got {n}")
    d = 2
    while d * d <= n:
        if n % d == 0:
            return d
        d += 1
    return n


class PListFunction(abc.ABC, Generic[T, R]):
    """A multi-way divide-and-conquer function over a PList argument."""

    #: ``"tie"`` (segment) or ``"zip"`` (interleave) deconstruction.
    operator: str = "tie"

    def __init__(self, data: PList[T]) -> None:
        self.data = data

    # -- primitives --------------------------------------------------------- #

    @abc.abstractmethod
    def basic_case(self) -> R:
        """The value on a singleton."""

    @abc.abstractmethod
    def combine_all(self, results: list[R]) -> R:
        """Merge the ordered sub-results of one node."""

    @abc.abstractmethod
    def create_subfunction(self, part: PList[T]) -> "PListFunction[T, R]":
        """Build the sub-problem on one deconstruction component."""

    # -- template machinery -------------------------------------------------- #

    def arity_of(self, length: int) -> int:
        """The split arity at a node of ``length`` elements (override to
        change the decomposition shape)."""
        return smallest_prime_factor(length)

    def split(self) -> list[PList[T]]:
        """Deconstruct with the declared operator at the chosen arity."""
        arity = self.arity_of(len(self.data))
        if self.operator == "tie":
            return self.data.tie_split_n(arity)
        if self.operator == "zip":
            return self.data.zip_split_n(arity)
        raise IllegalArgumentError(f"unknown operator {self.operator!r}")

    def leaf_case(self) -> R:
        """Value on a non-singleton leaf; defaults to full recursion."""
        return self.compute()

    def compute(self) -> R:
        """Sequential template method."""
        if self.data.is_singleton():
            return self.basic_case()
        parts = self.split()
        return self.combine_all(
            [self.create_subfunction(part).compute() for part in parts]
        )


class PListMap(PListFunction[T, list]):
    """n-way ``map``."""

    def __init__(self, data: PList[T], f: Callable[[T], object]) -> None:
        super().__init__(data)
        self.f = f

    def basic_case(self) -> list:
        return [self.f(self.data[0])]

    def leaf_case(self) -> list:
        f = self.f
        return [f(x) for x in self.data]

    def combine_all(self, results: list[list]) -> list:
        out = results[0]
        for part in results[1:]:
            out.extend(part)
        return out

    def create_subfunction(self, part: PList[T]) -> "PListMap":
        return PListMap(part, self.f)


class PListReduce(PListFunction[T, T]):
    """n-way ``reduce`` with an associative operator (tie order)."""

    def __init__(self, data: PList[T], op: Callable[[T, T], T]) -> None:
        super().__init__(data)
        self.op = op

    def basic_case(self) -> T:
        return self.data[0]

    def leaf_case(self) -> T:
        it = iter(self.data)
        acc = next(it)
        for x in it:
            acc = self.op(acc, x)
        return acc

    def combine_all(self, results: list[T]) -> T:
        acc = results[0]
        for value in results[1:]:
            acc = self.op(acc, value)
        return acc

    def create_subfunction(self, part: PList[T]) -> "PListReduce":
        return PListReduce(part, self.op)


class _PListTask(RecursiveTask):
    """Fork/join execution: fork all parts but the last."""

    __slots__ = ("function", "threshold")

    def __init__(self, function: PListFunction, threshold: int) -> None:
        super().__init__()
        self.function = function
        self.threshold = threshold

    def compute(self):
        function = self.function
        if len(function.data) <= self.threshold:
            return function.leaf_case()
        parts = function.split()
        subtasks = [
            _PListTask(function.create_subfunction(part), self.threshold)
            for part in parts
        ]
        results = invoke_all(*subtasks)
        return function.combine_all(results)


class PListForkJoinExecutor:
    """Multithreaded executor for PList functions.

    Args:
        pool: fork/join pool (common pool when None).
        threshold: leaf size; defaults to ``len / (4 × parallelism)``.
    """

    def __init__(self, pool: ForkJoinPool | None = None, threshold: int | None = None) -> None:
        self.pool = pool
        self.threshold = threshold

    def execute(self, function: PListFunction):
        pool = self.pool if self.pool is not None else common_pool()
        threshold = self.threshold
        if threshold is None:
            threshold = max(len(function.data) // (4 * pool.parallelism), 1)
        return pool.invoke(_PListTask(function, threshold))
