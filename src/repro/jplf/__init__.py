"""A reimplementation of the JPLF framework — the paper's comparator.

JPLF (Niculescu et al., PDCAT 2017) computes PowerList functions through
the *template method* pattern: a
:class:`~repro.jplf.power_function.PowerFunction` defines ``compute`` in
terms of four primitives the user supplies —

* ``basic_case``             — the value on a singleton (or leaf);
* ``combine``                — merge the two sub-results;
* ``create_left_function`` / ``create_right_function`` — build the
  sub-problems (where descending-phase transformations happen naturally,
  e.g. squaring the evaluation point of a polynomial).

Execution is managed *separately* from the function definition (the
framework's key advantage per Section III): the same function runs under a
:class:`~repro.jplf.executors.SequentialExecutor`, a fork/join
:class:`~repro.jplf.executors.ForkJoinExecutor`, the simulated-machine
executor in :mod:`repro.simcore.adapters`, or the simulated-MPI executor in
:mod:`repro.mpi.executor`.
"""

from repro.jplf.power_function import PowerFunction
from repro.jplf.executors import Executor, ForkJoinExecutor, SequentialExecutor
from repro.jplf.process_executor import ProcessExecutor
from repro.jplf.plist_function import (
    PListForkJoinExecutor,
    PListFunction,
    PListMap,
    PListReduce,
)
from repro.jplf.grid_function import (
    GridForkJoinExecutor,
    GridFunction,
    GridMax,
    GridSum,
    GridTrace,
)
from repro.jplf.functions import (
    JplfFft,
    JplfIdentity,
    JplfInv,
    JplfMap,
    JplfPolynomialValue,
    JplfPrefixSum,
    JplfReduce,
    JplfSort,
    JplfWalshHadamard,
)

__all__ = [
    "Executor",
    "ForkJoinExecutor",
    "GridForkJoinExecutor",
    "GridFunction",
    "GridMax",
    "GridSum",
    "GridTrace",
    "JplfFft",
    "JplfIdentity",
    "JplfInv",
    "JplfMap",
    "JplfWalshHadamard",
    "JplfPolynomialValue",
    "JplfPrefixSum",
    "JplfReduce",
    "JplfSort",
    "PListForkJoinExecutor",
    "PListFunction",
    "PListMap",
    "PListReduce",
    "PowerFunction",
    "ProcessExecutor",
    "SequentialExecutor",
]
