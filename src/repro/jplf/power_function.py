"""The JPLF ``PowerFunction`` template.

A PowerList function is specified by its primitives; the template method
:meth:`PowerFunction.compute` implements the solving strategy (deconstruct
→ recurse → combine) once, and executors re-express the same strategy with
different scheduling (this separation is the framework's design center).

Unlike the stream adaptation, JPLF works on
:class:`~repro.powerlist.powerlist.PowerList` *views*: no element is copied
during the descending phase unless the function itself transforms data.
"""

from __future__ import annotations

import abc
from typing import Generic, Sequence, TypeVar

from repro.common import IllegalArgumentError
from repro.powerlist.powerlist import PowerList

T = TypeVar("T")
R = TypeVar("R")


class PowerFunction(abc.ABC, Generic[T, R]):
    """A divide-and-conquer function over a PowerList argument.

    Attributes:
        operator: ``"tie"`` or ``"zip"`` — the deconstruction operator the
            recursion uses.
        data: the (view-based) argument list.
    """

    operator: str = "tie"

    def __init__(self, data: PowerList[T]) -> None:
        self.data = data

    # -- primitives supplied per function --------------------------------- #

    @abc.abstractmethod
    def basic_case(self) -> R:
        """The function's value when ``self.data`` is a singleton."""

    @abc.abstractmethod
    def combine(self, left: R, right: R) -> R:
        """Merge the results of the two sub-functions (ascending phase)."""

    @abc.abstractmethod
    def create_left_function(self, left: PowerList[T]) -> "PowerFunction[T, R]":
        """The sub-problem on the first deconstruction component.

        Descending-phase computation (e.g. squaring a polynomial's
        evaluation point) belongs here.
        """

    @abc.abstractmethod
    def create_right_function(self, right: PowerList[T]) -> "PowerFunction[T, R]":
        """The sub-problem on the second deconstruction component."""

    # -- template machinery ------------------------------------------------ #

    def split(self) -> tuple[PowerList[T], PowerList[T]]:
        """Deconstruct the argument with the declared operator (O(1))."""
        if self.operator == "tie":
            return self.data.tie_split()
        if self.operator == "zip":
            return self.data.zip_split()
        raise IllegalArgumentError(f"unknown operator {self.operator!r}")

    def subfunctions(self) -> tuple["PowerFunction[T, R]", "PowerFunction[T, R]"]:
        """Deconstruct and build both sub-problems."""
        left, right = self.split()
        return self.create_left_function(left), self.create_right_function(right)

    def leaf_case(self) -> R:
        """The value on a (possibly non-singleton) leaf.

        Executors stop decomposing at a threshold; by default the leaf is
        finished by sequential recursion, but functions may override this
        with a bulk computation (JPLF's specialized basic cases).
        """
        return self.compute()

    def compute(self) -> R:
        """The template method: full sequential recursion to singletons."""
        if self.data.is_singleton():
            return self.basic_case()
        left_fn, right_fn = self.subfunctions()
        return self.combine(left_fn.compute(), right_fn.compute())
