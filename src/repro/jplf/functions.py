"""The JPLF function library.

Each class supplies the four primitives; note how descending-phase
computation (``JplfPolynomialValue`` passing ``x²`` to its children) is
*structural* here — no shared state, no synchronization — which is exactly
the contrast the paper draws with the stream adaptation's
``PZipSpliterator`` mechanism.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.core.fft import fft_sequential, powers
from repro.core.sorting import odd_even_merge
from repro.jplf.power_function import PowerFunction
from repro.powerlist.powerlist import PowerList

T = TypeVar("T")
U = TypeVar("U")


class JplfIdentity(PowerFunction):
    """Identity — decompose/recompose round trip (validation function)."""

    operator = "tie"

    def basic_case(self) -> list:
        return [self.data[0]]

    def leaf_case(self) -> list:
        return self.data.to_list()

    def combine(self, left: list, right: list) -> list:
        left.extend(right)
        return left

    def create_left_function(self, left: PowerList) -> "JplfIdentity":
        return JplfIdentity(left)

    def create_right_function(self, right: PowerList) -> "JplfIdentity":
        return JplfIdentity(right)


class JplfMap(PowerFunction):
    """``map(f)`` with a bulk leaf case."""

    operator = "tie"

    def __init__(self, data: PowerList, f: Callable[[T], U]) -> None:
        super().__init__(data)
        self.f = f

    def basic_case(self) -> list:
        return [self.f(self.data[0])]

    def leaf_case(self) -> list:
        f = self.f
        return [f(x) for x in self.data]

    def combine(self, left: list, right: list) -> list:
        left.extend(right)
        return left

    def create_left_function(self, left: PowerList) -> "JplfMap":
        return JplfMap(left, self.f)

    def create_right_function(self, right: PowerList) -> "JplfMap":
        return JplfMap(right, self.f)


class JplfReduce(PowerFunction):
    """``reduce(op)`` with an associative operator (tie order)."""

    operator = "tie"

    def __init__(self, data: PowerList, op: Callable[[T, T], T]) -> None:
        super().__init__(data)
        self.op = op

    def basic_case(self):
        return self.data[0]

    def leaf_case(self):
        it = iter(self.data)
        acc = next(it)
        for x in it:
            acc = self.op(acc, x)
        return acc

    def combine(self, left, right):
        return self.op(left, right)

    def create_left_function(self, left: PowerList) -> "JplfReduce":
        return JplfReduce(left, self.op)

    def create_right_function(self, right: PowerList) -> "JplfReduce":
        return JplfReduce(right, self.op)


class JplfPolynomialValue(PowerFunction):
    """Equation 4: ``vp(p ♮ q, x) = vp(p, x²) + x·vp(q, x²)``.

    Coefficients in decreasing degree order (``numpy.polyval`` convention,
    matching :mod:`repro.core.polynomial`).  The point transformation is
    carried *down* through the sub-function constructors — the natural
    JPLF phrasing of descending-phase computation.
    """

    operator = "zip"

    def __init__(self, data: PowerList, x: float) -> None:
        super().__init__(data)
        self.x = x

    def basic_case(self) -> float:
        return float(self.data[0])

    def leaf_case(self) -> float:
        # Horner on the leaf's view at this node's point.
        val = 0.0
        for c in self.data:
            val = val * self.x + c
        return val

    def combine(self, left: float, right: float) -> float:
        # p holds the higher-degree coefficients of each pair: P·x + Q.
        return left * self.x + right

    def create_left_function(self, left: PowerList) -> "JplfPolynomialValue":
        return JplfPolynomialValue(left, self.x * self.x)

    def create_right_function(self, right: PowerList) -> "JplfPolynomialValue":
        return JplfPolynomialValue(right, self.x * self.x)


class JplfFft(PowerFunction):
    """Equation 3: ``fft(p ♮ q) = (P + u×Q) | (P − u×Q)``."""

    operator = "zip"

    def basic_case(self) -> list[complex]:
        return [complex(self.data[0])]

    def leaf_case(self) -> list[complex]:
        return fft_sequential(self.data.to_list())

    def combine(self, left: list[complex], right: list[complex]) -> list[complex]:
        n = len(left)
        u = powers(n)
        plus = [left[k] + u[k] * right[k] for k in range(n)]
        minus = [left[k] - u[k] * right[k] for k in range(n)]
        return plus + minus

    def create_left_function(self, left: PowerList) -> "JplfFft":
        return JplfFft(left)

    def create_right_function(self, right: PowerList) -> "JplfFft":
        return JplfFft(right)


class JplfPrefixSum(PowerFunction):
    """Inclusive scan; results carry ``(prefix_list, total)``."""

    operator = "tie"

    def __init__(self, data: PowerList, op: Callable = lambda a, b: a + b) -> None:
        super().__init__(data)
        self.op = op

    def basic_case(self):
        v = self.data[0]
        return ([v], v)

    def leaf_case(self):
        out = []
        acc = None
        for x in self.data:
            acc = x if acc is None else self.op(acc, x)
            out.append(acc)
        return (out, acc)

    def combine(self, left, right):
        prefix, total = left
        rprefix, rtotal = right
        shift = total
        prefix.extend(self.op(shift, v) for v in rprefix)
        return (prefix, self.op(shift, rtotal))

    def create_left_function(self, left: PowerList) -> "JplfPrefixSum":
        return JplfPrefixSum(left, self.op)

    def create_right_function(self, right: PowerList) -> "JplfPrefixSum":
        return JplfPrefixSum(right, self.op)


class JplfInv(PowerFunction):
    """Equation 2: ``inv(p | q) = inv(p) ♮ inv(q)`` — tie down, zip up."""

    operator = "tie"

    def basic_case(self) -> list:
        return [self.data[0]]

    def leaf_case(self) -> list:
        from repro.common import bit_reverse, exact_log2

        view = self.data.to_list()
        k = exact_log2(len(view))
        out = [None] * len(view)
        for i, item in enumerate(view):
            out[bit_reverse(i, k)] = item
        return out

    def combine(self, left: list, right: list) -> list:
        out = [None] * (len(left) + len(right))
        out[0::2] = left
        out[1::2] = right
        return out

    def create_left_function(self, left: PowerList) -> "JplfInv":
        return JplfInv(left)

    def create_right_function(self, right: PowerList) -> "JplfInv":
        return JplfInv(right)


class JplfWalshHadamard(PowerFunction):
    """Equation 5 instance: ``wht(p | q) = wht(p + q) | wht(p − q)``.

    The JPLF phrasing of descending-phase element transforms: the
    sub-problem constructors *are* the transformation — no spliterator
    specialization, no shared state.  Contrast
    :class:`repro.core.extended_ops.DescendTransformCollector`.
    """

    operator = "tie"

    def basic_case(self) -> list:
        return [self.data[0]]

    def combine(self, left: list, right: list) -> list:
        left.extend(right)
        return left

    def _halves(self) -> tuple[list, list]:
        half = len(self.data) // 2
        view = self.data.to_list()
        return view[:half], view[half:]

    def create_left_function(self, left: PowerList) -> "JplfWalshHadamard":
        # The descending transform replaces the raw halves: left recursion
        # receives p + q.  (The split views are discarded; the transform
        # materializes, as any Equation-5 function must.)
        p, q = self._halves()
        return JplfWalshHadamard(PowerList([a + b for a, b in zip(p, q)]))

    def create_right_function(self, right: PowerList) -> "JplfWalshHadamard":
        p, q = self._halves()
        return JplfWalshHadamard(PowerList([a - b for a, b in zip(p, q)]))


class JplfSort(PowerFunction):
    """Batcher merge sort: sort halves, odd-even merge."""

    operator = "tie"

    def basic_case(self) -> list:
        return [self.data[0]]

    def leaf_case(self) -> list:
        return sorted(self.data)

    def combine(self, left: list, right: list) -> list:
        return odd_even_merge(left, right)

    def create_left_function(self, left: PowerList) -> "JplfSort":
        return JplfSort(left)

    def create_right_function(self, right: PowerList) -> "JplfSort":
        return JplfSort(right)
