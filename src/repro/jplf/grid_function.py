"""Quad-tree (2-D PowerList) function templates.

The 2-D analogue of :class:`~repro.jplf.power_function.PowerFunction`:
a :class:`GridFunction` deconstructs its :class:`~repro.powerlist.grid.
Grid` argument into the four quadrants, recurses, and combines four
sub-results — the recursion scheme of the matrix algorithms in Misra §10
and the GPU-powerlist work ([3]).
"""

from __future__ import annotations

import abc
from typing import Generic, TypeVar

from repro.forkjoin.pool import ForkJoinPool, common_pool
from repro.forkjoin.task import RecursiveTask, invoke_all
from repro.powerlist.grid import Grid

R = TypeVar("R")


class GridFunction(abc.ABC, Generic[R]):
    """A divide-and-conquer function over a quad-decomposable Grid."""

    def __init__(self, data: Grid) -> None:
        self.data = data

    @abc.abstractmethod
    def basic_case(self) -> R:
        """Value on a 1×1 grid."""

    @abc.abstractmethod
    def combine(self, a: R, b: R, c: R, d: R) -> R:
        """Merge the quadrant results (top-left, top-right, bottom-left,
        bottom-right)."""

    @abc.abstractmethod
    def create_subfunction(self, quadrant: Grid) -> "GridFunction[R]":
        """Build the sub-problem on one quadrant."""

    def splittable(self) -> bool:
        """True while both dimensions can halve."""
        return self.data.rows >= 2 and self.data.cols >= 2

    def leaf_case(self) -> R:
        """Value on a non-1×1 leaf; defaults to full recursion."""
        return self.compute()

    def compute(self) -> R:
        """Sequential quad recursion."""
        if not self.splittable():
            if self.data.is_singleton():
                return self.basic_case()
            return self.leaf_case()
        quadrants = self.data.quad_split()
        results = [self.create_subfunction(q).compute() for q in quadrants]
        return self.combine(*results)


class GridSum(GridFunction[float]):
    """Sum of all elements (the simplest quad homomorphism)."""

    def basic_case(self) -> float:
        return self.data.get(0, 0)

    def leaf_case(self) -> float:
        return sum(
            self.data.get(i, j)
            for i in range(self.data.rows)
            for j in range(self.data.cols)
        )

    def combine(self, a, b, c, d):
        return a + b + c + d

    def create_subfunction(self, quadrant: Grid) -> "GridSum":
        return GridSum(quadrant)


class GridMax(GridFunction[float]):
    """Maximum element."""

    def basic_case(self) -> float:
        return self.data.get(0, 0)

    def leaf_case(self) -> float:
        return max(
            self.data.get(i, j)
            for i in range(self.data.rows)
            for j in range(self.data.cols)
        )

    def combine(self, a, b, c, d):
        return max(a, b, c, d)

    def create_subfunction(self, quadrant: Grid) -> "GridMax":
        return GridMax(quadrant)


class GridTrace(GridFunction[float]):
    """Sum of the main diagonal (square grids).

    Off-diagonal quadrants contribute nothing — the combiner simply drops
    them, a quad function that is *not* a plain fold.
    """

    def basic_case(self) -> float:
        return self.data.get(0, 0)

    def leaf_case(self) -> float:
        n = min(self.data.rows, self.data.cols)
        return sum(self.data.get(i, i) for i in range(n))

    def combine(self, a, b, c, d):
        return a + d  # only the diagonal quadrants carry diagonal entries

    def create_subfunction(self, quadrant: Grid) -> "GridTrace":
        return GridTrace(quadrant)


class _GridTask(RecursiveTask):
    __slots__ = ("function", "threshold")

    def __init__(self, function: GridFunction, threshold: int) -> None:
        super().__init__()
        self.function = function
        self.threshold = threshold

    def compute(self):
        function = self.function
        if (
            not function.splittable()
            or function.data.rows * function.data.cols <= self.threshold
        ):
            return function.leaf_case()
        quadrants = function.data.quad_split()
        tasks = [
            _GridTask(function.create_subfunction(q), self.threshold)
            for q in quadrants
        ]
        results = invoke_all(*tasks)
        return function.combine(*results)


class GridForkJoinExecutor:
    """Fork/join executor for quad-tree functions.

    Args:
        pool: fork/join pool (common pool when None).
        threshold: element count below which a node is a leaf; defaults
            to ``elements / (4 × parallelism)``.
    """

    def __init__(self, pool: ForkJoinPool | None = None, threshold: int | None = None) -> None:
        self.pool = pool
        self.threshold = threshold

    def execute(self, function: GridFunction):
        pool = self.pool if self.pool is not None else common_pool()
        threshold = self.threshold
        if threshold is None:
            elements = function.data.rows * function.data.cols
            threshold = max(elements // (4 * pool.parallelism), 1)
        return pool.invoke(_GridTask(function, threshold))
