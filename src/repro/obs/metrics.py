"""Process metrics: counters, gauges, log-scale histograms, registry.

All metrics created by one :class:`MetricsRegistry` share the registry's
single re-entrant lock.  That makes every increment atomic *and* makes
:meth:`MetricsRegistry.snapshot` a consistent cut across all metrics —
the fix for the torn reads ``ForkJoinPool.stats()`` used to risk when it
summed plain-int worker counters while workers were mutating them.

Python-level ``+=`` on an int is *not* atomic (LOAD / ADD / STORE can
interleave between threads), so the lock is load-bearing, not ceremony.

Metrics may carry **labels** (``registry.counter("steals", pool="fjp",
worker="3")``): the same metric name with different label sets names
different time series, exactly as in Prometheus.  :func:`metric_key`
renders the canonical ``name{k="v",...}`` form used as the snapshot key
(a metric without labels keeps its plain name, so pre-label snapshot
consumers are unaffected), and :meth:`MetricsRegistry.collect` exposes a
typed view that :func:`repro.obs.prom.render` turns into the Prometheus
text exposition format.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

from repro.common import IllegalArgumentError, check_positive

#: Canonical label tuple: sorted ``(key, value)`` pairs with string values.
LabelItems = "tuple[tuple[str, str], ...]"


def _label_items(labels: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def metric_key(name: str, **labels: Any) -> str:
    """The canonical snapshot key: ``name`` or ``name{k="v",...}``.

    Label pairs are sorted by key, so the rendering is unique for a given
    label set — ``ForkJoinPool.stats()`` and the snapshot writer both use
    this function, which keeps them in lockstep by construction.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in _label_items(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(
        self,
        name: str,
        _lock: threading.RLock | None = None,
        labels: dict | None = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._value = 0
        self._lock = _lock if _lock is not None else threading.RLock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise IllegalArgumentError(f"counter {self.name}: cannot add {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({metric_key(self.name, **self.labels)!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (e.g. queue depth)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(
        self,
        name: str,
        _lock: threading.RLock | None = None,
        labels: dict | None = None,
    ) -> None:
        self.name = name
        self.labels = dict(labels) if labels else {}
        self._value = 0.0
        self._lock = _lock if _lock is not None else threading.RLock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Gauge({metric_key(self.name, **self.labels)!r}, value={self.value})"


class Histogram:
    """A histogram with fixed log-scale (power-of-two) buckets.

    Bucket ``i`` (for ``i < num_buckets - 1``) counts observations
    ``edge[i-1] < v <= edge[i]`` with ``edge[i] = 2**i``; the last bucket
    is unbounded.  Designed for nanosecond durations: 40 buckets cover
    1 ns .. ~9 minutes.
    """

    __slots__ = ("name", "labels", "edges", "_counts", "_sum", "_lock")

    def __init__(
        self,
        name: str,
        num_buckets: int = 40,
        _lock: threading.RLock | None = None,
        labels: dict | None = None,
    ) -> None:
        check_positive(num_buckets, "num_buckets")
        self.name = name
        self.labels = dict(labels) if labels else {}
        #: Upper bounds of the bounded buckets: 2^0, 2^1, ..., 2^(n-2).
        self.edges: tuple[int, ...] = tuple(1 << i for i in range(num_buckets - 1))
        self._counts = [0] * num_buckets
        self._sum = 0.0
        self._lock = _lock if _lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        if value < 0:
            raise IllegalArgumentError(f"histogram {self.name}: negative {value}")
        index = bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def counts(self) -> list[int]:
        with self._lock:
            return list(self._counts)

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def quantile_bound(self, q: float) -> float:
        """Upper bucket edge at or above quantile ``q`` (0 < q <= 1)."""
        if not 0 < q <= 1:
            raise IllegalArgumentError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            total = sum(self._counts)
            if total == 0:
                return 0.0
            rank = q * total
            seen = 0
            for i, c in enumerate(self._counts):
                seen += c
                if seen >= rank:
                    return float(self.edges[i]) if i < len(self.edges) else float("inf")
        return float("inf")

    def __repr__(self) -> str:
        return f"Histogram({metric_key(self.name, **self.labels)!r}, count={self.count})"


class MetricsRegistry:
    """Creates and owns named metrics; one lock, consistent snapshots.

    Metrics are keyed by ``(name, labels)``: the same name with different
    label sets yields distinct series, while the same name must keep one
    metric *type* across all label sets (the Prometheus family rule).
    """

    __slots__ = ("name", "_metrics", "_types", "_lock")

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._metrics: dict[tuple[str, tuple], Any] = {}
        self._types: dict[str, type] = {}
        # RLock: snapshot() holds it while reading each metric's value,
        # which re-acquires the same lock through the metric's accessors.
        self._lock = threading.RLock()

    def _get_or_create(self, name: str, cls, args: tuple, labels: dict):
        items = _label_items(labels)
        with self._lock:
            registered = self._types.get(name)
            if registered is not None and registered is not cls:
                raise IllegalArgumentError(
                    f"metric {name!r} already registered as "
                    f"{registered.__name__}, not {cls.__name__}"
                )
            existing = self._metrics.get((name, items))
            if existing is not None:
                return existing
            metric = cls(name, *args, _lock=self._lock, labels=dict(items))
            self._types[name] = cls
            self._metrics[(name, items)] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(name, Counter, (), labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(name, Gauge, (), labels)

    def histogram(self, name: str, num_buckets: int = 40, **labels: Any) -> Histogram:
        return self._get_or_create(name, Histogram, (num_buckets,), labels)

    def snapshot(self) -> dict:
        """A consistent point-in-time view of every registered metric.

        Holding the single registry lock for the whole walk means no
        metric can change mid-snapshot — the per-worker counters read by
        ``ForkJoinPool.stats()`` all come from the same instant.  Keys
        are :func:`metric_key` renderings (plain names for unlabeled
        metrics).
        """
        with self._lock:
            out: dict[str, Any] = {}
            for (name, items), metric in sorted(self._metrics.items()):
                key = metric_key(name, **dict(items))
                if isinstance(metric, (Counter, Gauge)):
                    out[key] = metric._value
                elif isinstance(metric, Histogram):
                    out[key] = {
                        "count": sum(metric._counts),
                        "sum": metric._sum,
                        "counts": list(metric._counts),
                    }
            return out

    def collect(self) -> list[dict]:
        """A typed, label-preserving view for exposition writers.

        Returns one entry per metric, all read under the single registry
        lock: ``{"name", "labels", "type", ...}`` where counters and
        gauges carry ``"value"`` and histograms carry ``"edges"``,
        ``"counts"`` and ``"sum"``.
        """
        with self._lock:
            out = []
            for (name, items), metric in sorted(self._metrics.items()):
                entry: dict[str, Any] = {"name": name, "labels": dict(items)}
                if isinstance(metric, Counter):
                    entry["type"] = "counter"
                    entry["value"] = metric._value
                elif isinstance(metric, Gauge):
                    entry["type"] = "gauge"
                    entry["value"] = metric._value
                elif isinstance(metric, Histogram):
                    entry["type"] = "histogram"
                    entry["edges"] = metric.edges
                    entry["counts"] = list(metric._counts)
                    entry["sum"] = metric._sum
                out.append(entry)
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({self.name!r}, metrics={len(self)})"


_global = MetricsRegistry(name="process")


def global_registry() -> MetricsRegistry:
    """The process-wide registry (for code without a natural owner)."""
    return _global
