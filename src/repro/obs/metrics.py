"""Process metrics: counters, gauges, log-scale histograms, registry.

All metrics created by one :class:`MetricsRegistry` share the registry's
single re-entrant lock.  That makes every increment atomic *and* makes
:meth:`MetricsRegistry.snapshot` a consistent cut across all metrics —
the fix for the torn reads ``ForkJoinPool.stats()`` used to risk when it
summed plain-int worker counters while workers were mutating them.

Python-level ``+=`` on an int is *not* atomic (LOAD / ADD / STORE can
interleave between threads), so the lock is load-bearing, not ceremony.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any

from repro.common import IllegalArgumentError, check_positive


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, _lock: threading.RLock | None = None) -> None:
        self.name = name
        self._value = 0
        self._lock = _lock if _lock is not None else threading.RLock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise IllegalArgumentError(f"counter {self.name}: cannot add {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A value that can go up and down (e.g. queue depth)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, _lock: threading.RLock | None = None) -> None:
        self.name = name
        self._value = 0.0
        self._lock = _lock if _lock is not None else threading.RLock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A histogram with fixed log-scale (power-of-two) buckets.

    Bucket ``i`` (for ``i < num_buckets - 1``) counts observations
    ``edge[i-1] < v <= edge[i]`` with ``edge[i] = 2**i``; the last bucket
    is unbounded.  Designed for nanosecond durations: 40 buckets cover
    1 ns .. ~9 minutes.
    """

    __slots__ = ("name", "edges", "_counts", "_sum", "_lock")

    def __init__(
        self,
        name: str,
        num_buckets: int = 40,
        _lock: threading.RLock | None = None,
    ) -> None:
        check_positive(num_buckets, "num_buckets")
        self.name = name
        #: Upper bounds of the bounded buckets: 2^0, 2^1, ..., 2^(n-2).
        self.edges: tuple[int, ...] = tuple(1 << i for i in range(num_buckets - 1))
        self._counts = [0] * num_buckets
        self._sum = 0.0
        self._lock = _lock if _lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        if value < 0:
            raise IllegalArgumentError(f"histogram {self.name}: negative {value}")
        index = bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value

    @property
    def counts(self) -> list[int]:
        with self._lock:
            return list(self._counts)

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def quantile_bound(self, q: float) -> float:
        """Upper bucket edge at or above quantile ``q`` (0 < q <= 1)."""
        if not 0 < q <= 1:
            raise IllegalArgumentError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            total = sum(self._counts)
            if total == 0:
                return 0.0
            rank = q * total
            seen = 0
            for i, c in enumerate(self._counts):
                seen += c
                if seen >= rank:
                    return float(self.edges[i]) if i < len(self.edges) else float("inf")
        return float("inf")

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Creates and owns named metrics; one lock, consistent snapshots."""

    __slots__ = ("name", "_metrics", "_lock")

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._metrics: dict[str, Any] = {}
        # RLock: snapshot() holds it while reading each metric's value,
        # which re-acquires the same lock through the metric's accessors.
        self._lock = threading.RLock()

    def _get_or_create(self, name: str, cls, *args):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise IllegalArgumentError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name, *args, _lock=self._lock)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, num_buckets: int = 40) -> Histogram:
        return self._get_or_create(name, Histogram, num_buckets)

    def snapshot(self) -> dict:
        """A consistent point-in-time view of every registered metric.

        Holding the single registry lock for the whole walk means no
        metric can change mid-snapshot — the per-worker counters read by
        ``ForkJoinPool.stats()`` all come from the same instant.
        """
        with self._lock:
            out: dict[str, Any] = {}
            for name, metric in sorted(self._metrics.items()):
                if isinstance(metric, Counter):
                    out[name] = metric._value
                elif isinstance(metric, Gauge):
                    out[name] = metric._value
                elif isinstance(metric, Histogram):
                    out[name] = {
                        "count": sum(metric._counts),
                        "sum": metric._sum,
                        "counts": list(metric._counts),
                    }
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({self.name!r}, metrics={len(self)})"


_global = MetricsRegistry(name="process")


def global_registry() -> MetricsRegistry:
    """The process-wide registry (for code without a natural owner)."""
    return _global
