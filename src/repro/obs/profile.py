"""Per-run pipeline profiling: stage attribution, leaf timing, reports.

The profiler answers "where did this stream's wall time go?" by wrapping
each op's sink in a counting/timing probe at terminal time, then folding
the measurements into one :class:`RunProfile`:

* per-stage **self time** and element/chunk counts (a probe measures the
  inclusive time of everything downstream of it; self time is the
  difference between adjacent probes);
* a **leaf-duration histogram** and **chunk-size distribution** across
  the run, plus counters for traversals, fused kernels, and which bulk
  path each traversal took;
* **pool deltas** (tasks executed, steals, idle wakeups) captured across
  the profiled region when a pool is attached.

Cost model — the same contract as :mod:`repro.faults`:

* **Disabled is free.**  Every hook site does
  ``profiler = current_profiler()`` followed by ``if profiler is None``
  — one module-global read, one identity check, nothing else.
* **Enabled is sampled.**  Probes are only installed on 1 in
  :data:`DEFAULT_PROFILE_SAMPLE` traversals (per-traversal, so parallel
  leaves are sampled independently); unsampled traversals still count
  toward the cheap aggregate counters.

This module deliberately imports nothing from :mod:`repro.streams` — the
probes duck-type the sink protocol (``begin`` / ``accept`` /
``accept_chunk`` / ``end`` / ``cancellation_requested``) so that
``repro.streams.ops`` can import the profiler without a cycle.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import Histogram
from repro.obs.tracer import _env_int

#: Default sampling rate: one traversal in N gets per-stage probes.
#: Override with ``REPRO_PROFILE_SAMPLE`` (1 = profile every traversal).
DEFAULT_PROFILE_SAMPLE = _env_int("REPRO_PROFILE_SAMPLE", 16)

_perf_ns = time.perf_counter_ns


class _Probe:
    """A counting/timing sink wrapper around one pipeline stage.

    Measures the *inclusive* time spent in its downstream chain: the
    probe in front of stage ``i`` times everything from stage ``i``
    through the terminal.  Self time per stage falls out as the
    difference between adjacent probes, which also cancels most of the
    probes' own overhead (each probe's clock calls are inside the
    enclosing probe's window on both sides).
    """

    __slots__ = ("downstream", "ns", "elements", "chunks", "chunk_hist")

    def __init__(self, downstream, chunk_hist: Histogram | None = None) -> None:
        self.downstream = downstream
        self.ns = 0
        self.elements = 0
        self.chunks = 0
        self.chunk_hist = chunk_hist

    def begin(self, size: int) -> None:
        self.downstream.begin(size)

    def accept(self, value) -> None:
        self.elements += 1
        start = _perf_ns()
        self.downstream.accept(value)
        self.ns += _perf_ns() - start

    def accept_chunk(self, chunk) -> None:
        self.elements += len(chunk)
        self.chunks += 1
        if self.chunk_hist is not None:
            self.chunk_hist.observe(len(chunk))
        start = _perf_ns()
        self.downstream.accept_chunk(chunk)
        self.ns += _perf_ns() - start

    def end(self) -> None:
        start = _perf_ns()
        self.downstream.end()
        self.ns += _perf_ns() - start

    def cancellation_requested(self) -> bool:
        return self.downstream.cancellation_requested()


def _op_label(op) -> str:
    """A short stable label for an op: ``MapOp`` → ``map``, and a fused
    op renders its stage kinds, e.g. ``fused(map|filter)``."""
    kinds = getattr(op, "kinds", None)
    if kinds is not None:
        return f"fused({'|'.join(kinds)})"
    name = type(op).__name__
    if name.endswith("Op"):
        name = name[:-2]
    out = []
    for i, ch in enumerate(name):
        if ch.isupper() and i > 0:
            out.append("_")
        out.append(ch.lower())
    return "".join(out)


def _new_stage() -> dict:
    return {
        "elements": 0,
        "chunks": 0,
        "inclusive_ns": 0,
        "self_ns": 0,
        "traversals": 0,
    }


class RunProfile:
    """Aggregated measurements of every traversal inside one profiled
    region.  Thread-safe: parallel leaves record concurrently."""

    def __init__(self, sample_rate: int) -> None:
        self._lock = threading.Lock()
        self.sample_rate = sample_rate
        #: ``{"<position>:<label>": {elements, chunks, inclusive_ns,
        #: self_ns, traversals}}`` — keyed by position so two ``map``
        #: stages stay distinct.
        self.stages: dict[str, dict] = {}
        self.leaf_durations = Histogram("leaf_duration_ns")
        self.chunk_sizes = Histogram("chunk_size")
        #: Which bulk path each traversal took (mirrors ``bulk_stats``,
        #: but per-profiled-region and counting parallel leaves).
        self.modes = {"chunked": 0, "element": 0, "short_circuit": 0}
        self.traversals = 0
        self.sampled_traversals = 0
        self.fused_kernels = 0
        self.leaves = 0
        self.pool_stats: dict[str, Any] = {}
        self._pool = None
        self._pool_before: dict | None = None

    # -- recording (called by the engine) ---------------------------------- #

    def record_traversal(
        self,
        mode: str,
        probes: "list[_Probe] | None",
        labels: "list[str] | None",
        fused_kernels: int = 0,
    ) -> None:
        """Fold one finished traversal into the profile.

        ``probes``/``labels`` are None for unsampled traversals — those
        still count toward the mode/traversal/kernel aggregates.
        """
        with self._lock:
            self.traversals += 1
            self.modes[mode] = self.modes.get(mode, 0) + 1
            self.fused_kernels += fused_kernels
            if probes is None or labels is None:
                return
            self.sampled_traversals += 1
            count = len(probes)
            for i, (probe, label) in enumerate(zip(probes, labels)):
                key = f"{i}:{label}"
                stage = self.stages.get(key)
                if stage is None:
                    stage = self.stages[key] = _new_stage()
                # Self time: my inclusive window minus the next probe's.
                downstream_ns = probes[i + 1].ns if i + 1 < count else 0
                stage["elements"] += probe.elements
                stage["chunks"] += probe.chunks
                stage["inclusive_ns"] += probe.ns
                stage["self_ns"] += max(probe.ns - downstream_ns, 0)
                stage["traversals"] += 1

    def record_stage(
        self, stage: str, self_ns: int, elements: int = 0, chunks: int = 0
    ) -> None:
        """Attribute time to a named stage outside the sink chain (used
        by e.g. the process executor for scatter/combine phases)."""
        with self._lock:
            entry = self.stages.get(stage)
            if entry is None:
                entry = self.stages[stage] = _new_stage()
            entry["elements"] += elements
            entry["chunks"] += chunks
            entry["inclusive_ns"] += self_ns
            entry["self_ns"] += self_ns
            entry["traversals"] += 1

    def record_leaf(self, duration_ns: int, size: int) -> None:
        with self._lock:
            self.leaves += 1
        # Histogram has its own lock; keep the hot section minimal.
        self.leaf_durations.observe(duration_ns)

    def attach_pool(self, pool) -> None:
        """Capture ``pool.stats()`` now so :meth:`finish` can report the
        delta across the profiled region.  First pool wins; re-attaching
        the same pool is a no-op."""
        with self._lock:
            if self._pool is not None:
                return
            self._pool = pool
            self._pool_before = pool.stats()

    def finish(self) -> None:
        """Compute pool deltas; called when the profiled region closes."""
        with self._lock:
            pool, before = self._pool, self._pool_before
        if pool is None or before is None:
            return
        after = pool.stats()
        executed = after["tasks_executed"] - before["tasks_executed"]
        steals = after["steals"] - before["steals"]
        stats = {
            "pool": getattr(pool, "name", "?"),
            "parallelism": after.get("parallelism", len(after["per_worker"])),
            "tasks_executed": executed,
            "steals": steals,
            "idle_wakeups": after["idle_wakeups"] - before["idle_wakeups"],
            "steal_ratio": steals / executed if executed > 0 else 0.0,
        }
        with self._lock:
            self.pool_stats = stats

    # -- reporting ---------------------------------------------------------- #

    def hot_stages(self, limit: int | None = None) -> list[tuple[str, dict]]:
        """Stages ranked by self time, hottest first."""
        with self._lock:
            ranked = sorted(
                self.stages.items(), key=lambda kv: kv[1]["self_ns"], reverse=True
            )
        return ranked[:limit] if limit is not None else ranked

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "sample_rate": self.sample_rate,
                "traversals": self.traversals,
                "sampled_traversals": self.sampled_traversals,
                "modes": dict(self.modes),
                "fused_kernels": self.fused_kernels,
                "leaves": self.leaves,
                "stages": {k: dict(v) for k, v in self.stages.items()},
                "leaf_duration_ns": {
                    "count": self.leaf_durations.count,
                    "sum": self.leaf_durations.total,
                    "p50_bound": self.leaf_durations.quantile_bound(0.5),
                    "p99_bound": self.leaf_durations.quantile_bound(0.99),
                },
                "chunk_sizes": {
                    "count": self.chunk_sizes.count,
                    "p50_bound": self.chunk_sizes.quantile_bound(0.5),
                },
                "pool": dict(self.pool_stats),
            }

    def report(self) -> str:
        """Human-readable profile summary (the Gantt's cost counterpart)."""
        d = self.to_dict()
        lines = [
            f"profile: {d['traversals']} traversal(s), "
            f"{d['sampled_traversals']} sampled (1/{d['sample_rate']})",
            f"  modes: chunked={d['modes']['chunked']} "
            f"element={d['modes']['element']} "
            f"short_circuit={d['modes']['short_circuit']}  "
            f"fused_kernels={d['fused_kernels']}",
        ]
        if d["leaves"]:
            leaf = d["leaf_duration_ns"]
            lines.append(
                f"  leaves: {d['leaves']}  "
                f"p50<={leaf['p50_bound']:.0f}ns p99<={leaf['p99_bound']:.0f}ns"
            )
        if d["chunk_sizes"]["count"]:
            lines.append(
                f"  chunks: {d['chunk_sizes']['count']}  "
                f"p50<={d['chunk_sizes']['p50_bound']:.0f}"
            )
        if d["pool"]:
            p = d["pool"]
            lines.append(
                f"  pool {p['pool']!r} (par={p['parallelism']}): "
                f"tasks={p['tasks_executed']} steals={p['steals']} "
                f"(ratio={p['steal_ratio']:.2f}) "
                f"idle_wakeups={p['idle_wakeups']}"
            )
        hot = self.hot_stages()
        if hot:
            total_self = sum(s["self_ns"] for _, s in hot) or 1
            lines.append("  hot stages (self time):")
            for key, stage in hot:
                share = stage["self_ns"] / total_self
                lines.append(
                    f"    {key:<28} {stage['self_ns'] / 1e6:9.3f}ms "
                    f"{share:6.1%}  elements={stage['elements']}"
                    f" chunks={stage['chunks']}"
                )
        return "\n".join(lines)


class Profiler:
    """The active profiling session: sampling decisions + probe factory."""

    __slots__ = ("profile", "sample_rate", "_ticks")

    def __init__(self, sample_rate: int | None = None) -> None:
        if sample_rate is None:
            sample_rate = DEFAULT_PROFILE_SAMPLE
        if sample_rate < 1:
            sample_rate = 1
        self.sample_rate = sample_rate
        self.profile = RunProfile(sample_rate)
        # itertools.count consumed under the GIL is atomic enough for a
        # sampling decision; tick 0 samples, so the first traversal of a
        # profiled region is always captured.
        self._ticks = itertools.count()

    def sample(self) -> bool:
        """Should the next traversal get per-stage probes?"""
        return next(self._ticks) % self.sample_rate == 0

    def instrument(self, ops, terminal):
        """Wrap the op chain's sinks in probes.

        Returns ``(sink, probes, labels)`` where ``sink`` replaces the
        result of ``wrap_ops(ops, terminal)`` and ``probes``/``labels``
        are ordered outermost (source side) first — pass them to
        :meth:`RunProfile.record_traversal` after the traversal.
        """
        chunk_hist = self.profile.chunk_sizes
        sink = _Probe(terminal)
        probes = [sink]
        labels = [f"terminal:{type(terminal).__name__}"]
        for op in reversed(ops):
            sink = _Probe(op.wrap_sink(sink))
            probes.append(sink)
            labels.append(_op_label(op))
        probes.reverse()
        labels.reverse()
        # Only the outermost probe sees source-sized chunks.
        probes[0].chunk_hist = chunk_hist
        return sink, probes, labels


# -- the active profiler ---------------------------------------------------- #

_active: Profiler | None = None


def current_profiler() -> Profiler | None:
    """The installed profiler, or None (the zero-cost disabled path)."""
    return _active


def set_profiler(profiler: Profiler | None) -> Profiler | None:
    """Install ``profiler`` process-wide; ``None`` disables profiling.

    Returns the previously installed profiler so callers can restore it.
    """
    global _active
    previous = _active
    _active = profiler
    return previous


@contextmanager
def profiled(
    sample: int | None = None,
    pool=None,
    profiler: Profiler | None = None,
) -> Iterator[RunProfile]:
    """Profile every stream traversal in the ``with`` block.

    >>> with profiled() as prof:
    ...     Stream.range(0, 1 << 16).map(f).filter(g).sum()
    >>> print(prof.report())

    ``pool`` pre-attaches a fork/join pool so its counter deltas appear
    in the profile even if no parallel terminal runs inside the block.
    """
    active = profiler if profiler is not None else Profiler(sample)
    if pool is not None:
        active.profile.attach_pool(pool)
    previous = _active
    set_profiler(active)
    try:
        yield active.profile
    finally:
        set_profiler(previous)
        active.profile.finish()
