"""Real-execution observability: spans, metrics, trace export.

``repro.obs`` is the *real-execution* mirror of :mod:`repro.simcore`'s
simulated tracing.  The simulator returns a perfect trace for free; a
real run on the :class:`~repro.forkjoin.pool.ForkJoinPool` has to be
instrumented, and that instrumentation must cost ~nothing when disabled
so the measured path stays the measured path.

Three layers:

* :mod:`repro.obs.tracer`  — span recording (``split`` / ``leaf`` /
  ``combine`` / ``task`` / ``steal`` / ``idle`` events with worker ids)
  into a thread-safe ring buffer; a null tracer makes the disabled path
  a single attribute check;
* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  behind a :class:`MetricsRegistry` whose single lock gives consistent
  snapshots (this is what ``ForkJoinPool.stats()`` now reads);
* :mod:`repro.obs.export`  — Chrome trace-event JSON (open in Perfetto
  or ``chrome://tracing``), a per-worker utilization/Gantt report in the
  style of :mod:`repro.simcore.trace`, and a plain-dict snapshot for
  tests;
* :mod:`repro.obs.profile` — per-run cost attribution: stage self-time
  probes, leaf-duration and chunk-size histograms, pool counter deltas,
  sampled 1-in-N with a free disabled path (``current_profiler() is
  None``);
* :mod:`repro.obs.prom`    — Prometheus text exposition of any
  :class:`MetricsRegistry`, labels and histogram buckets included.

Tunables (overridable via environment):

* :data:`DEFAULT_TRACE_CAPACITY` (``REPRO_TRACE_CAPACITY``, default
  ``1 << 16``) — ring-buffer span capacity;
* :data:`DEFAULT_PROFILE_SAMPLE` (``REPRO_PROFILE_SAMPLE``, default 16)
  — probe one traversal in N inside a profiled region.
"""

from repro.obs.export import (
    chrome_trace_events,
    render_gantt,
    summarize_workers,
    to_chrome_trace,
    trace_snapshot,
    worker_report,
    write_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    metric_key,
)
from repro.obs.profile import (
    DEFAULT_PROFILE_SAMPLE,
    Profiler,
    RunProfile,
    current_profiler,
    profiled,
    set_profiler,
)
from repro.obs.prom import render as render_prometheus
from repro.obs.tracer import (
    DEFAULT_TRACE_CAPACITY,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Counter",
    "DEFAULT_PROFILE_SAMPLE",
    "DEFAULT_TRACE_CAPACITY",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Profiler",
    "RunProfile",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "current_profiler",
    "current_tracer",
    "global_registry",
    "metric_key",
    "profiled",
    "render_gantt",
    "render_prometheus",
    "set_profiler",
    "set_tracer",
    "summarize_workers",
    "to_chrome_trace",
    "trace_snapshot",
    "tracing",
    "worker_report",
    "write_chrome_trace",
]
