"""Real-execution observability: spans, metrics, trace export.

``repro.obs`` is the *real-execution* mirror of :mod:`repro.simcore`'s
simulated tracing.  The simulator returns a perfect trace for free; a
real run on the :class:`~repro.forkjoin.pool.ForkJoinPool` has to be
instrumented, and that instrumentation must cost ~nothing when disabled
so the measured path stays the measured path.

Three layers:

* :mod:`repro.obs.tracer`  — span recording (``split`` / ``leaf`` /
  ``combine`` / ``task`` / ``steal`` / ``idle`` events with worker ids)
  into a thread-safe ring buffer; a null tracer makes the disabled path
  a single attribute check;
* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  behind a :class:`MetricsRegistry` whose single lock gives consistent
  snapshots (this is what ``ForkJoinPool.stats()`` now reads);
* :mod:`repro.obs.export`  — Chrome trace-event JSON (open in Perfetto
  or ``chrome://tracing``), a per-worker utilization/Gantt report in the
  style of :mod:`repro.simcore.trace`, and a plain-dict snapshot for
  tests.
"""

from repro.obs.export import (
    chrome_trace_events,
    render_gantt,
    summarize_workers,
    to_chrome_trace,
    trace_snapshot,
    worker_report,
    write_chrome_trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, global_registry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "current_tracer",
    "global_registry",
    "render_gantt",
    "set_tracer",
    "summarize_workers",
    "to_chrome_trace",
    "trace_snapshot",
    "tracing",
    "worker_report",
    "write_chrome_trace",
]
