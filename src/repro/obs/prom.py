"""Prometheus text exposition format for :class:`MetricsRegistry`.

:func:`render` turns one or more registries into the standard text
format (version 0.0.4) that a Prometheus server, ``promtool``, or any
OpenMetrics-adjacent scraper can ingest:

* counters get the conventional ``_total`` suffix;
* histograms emit cumulative ``_bucket{le="..."}`` series (our internal
  per-bucket counts are converted to cumulative-at-or-below counts, with
  the trailing ``le="+Inf"`` bucket) plus ``_sum`` and ``_count``;
* labels render sorted by key with proper value escaping, and metric
  names are sanitized to the legal ``[a-zA-Z_:][a-zA-Z0-9_:]*`` charset.

No HTTP server is included — ``repro.serve`` exposes this string via
``ExecutionService.metrics_text()`` for a ``/metrics`` mount; here it is
just a pure function of ``collect()``.
"""

from __future__ import annotations

import re

from repro.common import IllegalArgumentError
from repro.obs.metrics import MetricsRegistry, global_registry

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    clean = _NAME_BAD.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: dict, extra: "tuple[str, str] | None" = None) -> str:
    items = sorted((str(k), str(v)) for k, v in labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    inner = ",".join(f'{_sanitize(k)}="{_escape(v)}"' for k, v in items)
    return f"{{{inner}}}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def render(*registries: MetricsRegistry, namespace: str = "repro") -> str:
    """The text exposition of every metric in ``registries``.

    With no arguments, renders :func:`~repro.obs.metrics.global_registry`.
    Metrics are grouped into families by fully-qualified name; a name
    collected under two different types is an error (the same rule
    :class:`MetricsRegistry` enforces per registry, re-checked here
    because multiple registries may collide).
    """
    if not registries:
        registries = (global_registry(),)
    prefix = _sanitize(namespace) + "_" if namespace else ""

    # family name -> {"type": ..., "series": [entry, ...]}
    families: dict[str, dict] = {}
    for registry in registries:
        for entry in registry.collect():
            fq = prefix + _sanitize(entry["name"])
            family = families.get(fq)
            if family is None:
                family = families[fq] = {"type": entry["type"], "series": []}
            elif family["type"] != entry["type"]:
                raise IllegalArgumentError(
                    f"metric family {fq!r} collected as both "
                    f"{family['type']} and {entry['type']}"
                )
            family["series"].append(entry)

    lines: list[str] = []
    for fq in sorted(families):
        family = families[fq]
        kind = family["type"]
        if kind == "counter":
            lines.append(f"# TYPE {fq}_total counter")
            for entry in family["series"]:
                labels = _render_labels(entry["labels"])
                lines.append(f"{fq}_total{labels} {_format_value(entry['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {fq} gauge")
            for entry in family["series"]:
                labels = _render_labels(entry["labels"])
                lines.append(f"{fq}{labels} {_format_value(entry['value'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {fq} histogram")
            for entry in family["series"]:
                cumulative = 0
                edges = list(entry["edges"]) + [float("inf")]
                for edge, count in zip(edges, entry["counts"]):
                    cumulative += count
                    le = _format_value(float(edge))
                    labels = _render_labels(entry["labels"], extra=("le", le))
                    lines.append(f"{fq}_bucket{labels} {cumulative}")
                labels = _render_labels(entry["labels"])
                lines.append(f"{fq}_sum{labels} {_format_value(entry['sum'])}")
                lines.append(f"{fq}_count{labels} {cumulative}")
    return "\n".join(lines) + "\n" if lines else ""
