"""Low-overhead span tracing for real fork/join executions.

Design constraints, in order:

1. **Disabled must be free.**  Every instrumentation site does
   ``tracer = current_tracer()`` once and then ``if tracer.enabled:`` per
   event — with the default :class:`NullTracer` that is one module-global
   read plus one attribute check, no allocation, no lock.
2. **Enabled must not serialize workers.**  Spans go into a
   ``collections.deque(maxlen=...)`` ring buffer; under the GIL ``append``
   is atomic, so concurrent workers never contend on a lock to record.
   When the ring wraps, the *oldest* spans are dropped — the tail of a run
   is usually where the interesting scheduling behaviour is.
3. **Timestamps are ``time.perf_counter_ns()``** — monotonic, ns
   resolution, comparable across threads of one process.

The tracer itself knows nothing about the pool or the streams; the
instrumentation sites (``repro.forkjoin.pool``, ``repro.streams.parallel``,
``repro.core.power_collector``) pass worker ids in.  That keeps this module
dependency-free and import cycles impossible.
"""

from __future__ import annotations

import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator

from repro.common import check_positive


def _env_int(name: str, default: int) -> int:
    """An integer default overridable via the environment (bad values
    fall back silently — observability config must never crash a run)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return value if value > 0 else default


#: Default ring-buffer capacity for :class:`Tracer` (spans kept before the
#: oldest are dropped).  Override with ``REPRO_TRACE_CAPACITY``.
DEFAULT_TRACE_CAPACITY = _env_int("REPRO_TRACE_CAPACITY", 1 << 16)

#: Span kinds emitted by the built-in instrumentation sites.  ``split`` /
#: ``leaf`` / ``combine`` mirror the simulator's strand kinds; ``task`` /
#: ``steal`` / ``idle`` are scheduler-level; ``function`` wraps one whole
#: PowerList-function execution; ``cancel`` marks a fail-fast trip (first
#: failure cancelling a terminal's task tree) and ``crash`` an exception
#: that escaped the scheduling machinery (both zero-duration instants).
#: ``fault`` / ``retry`` / ``degraded`` instants come from
#: :mod:`repro.faults`: an injector strike, a policy-driven re-attempt,
#: and a sequential fallback execution respectively.  ``fuse`` marks one
#: stage-fusion rewrite of an op chain at terminal time
#: (:mod:`repro.streams.fusion`), carrying the collapsed stage count.
SPAN_KINDS = (
    "split", "leaf", "combine", "task", "steal", "idle", "function",
    "cancel", "crash", "fault", "retry", "degraded", "fuse",
)

#: Worker id used for events emitted from threads outside the pool.
EXTERNAL_WORKER = -1


class Span:
    """One recorded interval (or instant, when ``start_ns == end_ns``)."""

    __slots__ = ("kind", "name", "worker", "start_ns", "end_ns", "args")

    def __init__(
        self,
        kind: str,
        name: str | None,
        worker: int,
        start_ns: int,
        end_ns: int,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.kind = kind
        self.name = name if name is not None else kind
        self.worker = worker
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.args = args

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def is_instant(self) -> bool:
        return self.end_ns == self.start_ns

    def __repr__(self) -> str:
        return (
            f"Span({self.kind!r}, name={self.name!r}, worker={self.worker}, "
            f"dur={self.duration_ns}ns)"
        )


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumentation sites branch on :attr:`enabled`, so with this tracer
    installed the hot path pays one attribute check and nothing else.
    """

    __slots__ = ()

    enabled = False

    def now(self) -> int:
        return 0

    def emit(self, kind: str, **kwargs) -> None:
        pass

    def instant(self, kind: str, **kwargs) -> None:
        pass

    def spans(self) -> list[Span]:
        return []

    def clear(self) -> None:
        pass

    dropped = 0


#: The process-wide disabled tracer (stateless, shareable).
NULL_TRACER = NullTracer()


class Tracer:
    """Records spans into a bounded, thread-safe ring buffer."""

    __slots__ = ("capacity", "_buffer", "dropped")

    enabled = True

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is None:
            capacity = DEFAULT_TRACE_CAPACITY
        check_positive(capacity, "capacity")
        self.capacity = capacity
        # deque(maxlen=...) drops from the head on overflow; append is
        # atomic under the GIL, so emitting never takes a lock.
        self._buffer: deque[Span] = deque(maxlen=capacity)
        #: Spans evicted by ring-buffer overflow.  Maintained with an
        #: unlocked ``+=`` — concurrent emitters can undercount it, so
        #: treat it as advisory ("at least this many lost"), which is all
        #: the truncation warning in the reports needs.
        self.dropped = 0

    def now(self) -> int:
        """Current monotonic timestamp in nanoseconds."""
        return time.perf_counter_ns()

    def emit(
        self,
        kind: str,
        worker: int = EXTERNAL_WORKER,
        start_ns: int = 0,
        end_ns: int = 0,
        name: str | None = None,
        **args: Any,
    ) -> None:
        """Record a completed interval ``[start_ns, end_ns]``."""
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(
            Span(kind, name, worker, start_ns, end_ns, args or None)
        )

    def instant(
        self,
        kind: str,
        worker: int = EXTERNAL_WORKER,
        at_ns: int | None = None,
        name: str | None = None,
        **args: Any,
    ) -> None:
        """Record a zero-duration event (e.g. a steal)."""
        ts = at_ns if at_ns is not None else time.perf_counter_ns()
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(Span(kind, name, worker, ts, ts, args or None))

    @contextmanager
    def span(
        self,
        kind: str,
        worker: int = EXTERNAL_WORKER,
        name: str | None = None,
        **args: Any,
    ) -> Iterator[None]:
        """Context manager recording the enclosed block as one span."""
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.emit(
                kind, worker=worker, start_ns=start,
                end_ns=time.perf_counter_ns(), name=name, **args,
            )

    def spans(self) -> list[Span]:
        """Snapshot of recorded spans, ordered by start time."""
        return sorted(self._buffer, key=lambda s: s.start_ns)

    def clear(self) -> None:
        self._buffer.clear()
        self.dropped = 0

    @property
    def wrapped(self) -> bool:
        """True when the ring is full (older spans have been dropped)."""
        return len(self._buffer) == self.capacity

    def __len__(self) -> int:
        return len(self._buffer)


# -- the active tracer ----------------------------------------------------- #

_active: Tracer | NullTracer = NULL_TRACER


def current_tracer() -> Tracer | NullTracer:
    """The tracer instrumentation sites should emit to (never None)."""
    return _active


def set_tracer(tracer: Tracer | NullTracer | None) -> Tracer | NullTracer:
    """Install ``tracer`` process-wide; ``None`` disables tracing."""
    global _active
    _active = tracer if tracer is not None else NULL_TRACER
    return _active


@contextmanager
def tracing(
    capacity: int | None = None, tracer: Tracer | None = None
) -> Iterator[Tracer]:
    """Enable tracing for the dynamic extent of the ``with`` block.

    >>> with tracing() as t:
    ...     Stream.range(0, 1 << 16).parallel().sum()
    >>> write_chrome_trace("run.json", t.spans())
    """
    active = tracer if tracer is not None else Tracer(capacity)
    previous = _active
    set_tracer(active)
    try:
        yield active
    finally:
        set_tracer(previous)
