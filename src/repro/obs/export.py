"""Exporters for recorded spans: Chrome trace JSON, Gantt, dict snapshot.

Three consumers, three formats:

* **Perfetto / ``chrome://tracing``** — :func:`write_chrome_trace` emits
  the Trace Event Format (``{"traceEvents": [...]}``): one ``"X"``
  (complete) event per span, one ``"i"`` (instant) event per
  zero-duration span, with ``tid`` = worker id so each pool worker gets
  its own track;
* **a terminal** — :func:`render_gantt` / :func:`worker_report` reuse the
  rendering style of :mod:`repro.simcore.trace` (same glyphs, same row
  layout) but are fed from *real* nanosecond events;
* **tests** — :func:`trace_snapshot` reduces a span list to a plain dict
  of counts and durations that assertions can poke at.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.common import IllegalArgumentError
from repro.obs.tracer import Span

#: Glyph per span kind in the Gantt rendering (superset of the
#: simulator's: real traces also carry scheduler-level ``task`` spans).
_KIND_GLYPH = {
    "split": "s", "leaf": "#", "combine": "c", "task": "t",
    "function": "f", "fuse": "F",
}

#: Kinds drawn on the Gantt; ``task`` envelops split/leaf/combine spans
#: emitted inside it, so it is drawn first and overdrawn by its phases.
_GANTT_ORDER = ("task", "function", "fuse", "split", "leaf", "combine")


# -- Chrome trace-event JSON ----------------------------------------------- #


def chrome_trace_events(spans: Sequence[Span], pid: int = 1) -> list[dict]:
    """Convert spans to Trace Event Format dicts (timestamps in µs).

    Timestamps are rebased so the earliest span starts at t=0; ``tid`` is
    the worker id (``-1`` for events from non-pool threads).
    """
    if not spans:
        return []
    base_ns = min(s.start_ns for s in spans)
    events: list[dict] = []
    for s in spans:
        event = {
            "name": s.name,
            "cat": s.kind,
            "pid": pid,
            "tid": s.worker,
            "ts": (s.start_ns - base_ns) / 1e3,
        }
        if s.is_instant:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = s.duration_ns / 1e3
        if s.args:
            event["args"] = dict(s.args)
        events.append(event)
    return events


def to_chrome_trace(
    spans: Sequence[Span],
    metadata: dict | None = None,
    *,
    dropped: int = 0,
    profile=None,
) -> dict:
    """The full Chrome trace document (loadable as-is in Perfetto).

    ``dropped`` (ring-buffer evictions) and ``profile`` (a
    :class:`~repro.obs.profile.RunProfile`) are recorded under
    ``otherData`` only when present, so plain exports stay byte-stable.
    """
    doc: dict = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    other: dict = dict(metadata) if metadata else {}
    if dropped:
        other["spans_dropped"] = dropped
    if profile is not None:
        other["profile"] = profile.to_dict()
    if other:
        doc["otherData"] = other
    return doc


def write_chrome_trace(
    path: str | Path,
    spans: Sequence[Span],
    metadata: dict | None = None,
    *,
    dropped: int = 0,
    profile=None,
) -> Path:
    """Serialize spans as Chrome trace JSON at ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    doc = to_chrome_trace(spans, metadata, dropped=dropped, profile=profile)
    path.write_text(json.dumps(doc, indent=1))
    return path


# -- plain-dict snapshot (for tests) --------------------------------------- #


def trace_snapshot(spans: Iterable[Span], dropped: int | None = None) -> dict:
    """Reduce spans to counts/durations: the test-friendly view.

    Accepts either a span sequence or a tracer (whose ``spans()`` and
    ``dropped`` are used).  Returns ``{"counts": {kind: n},
    "duration_ns": {kind: total}, "per_worker": {worker: {kind: n}},
    "dropped": n}``.
    """
    spans_method = getattr(spans, "spans", None)
    if callable(spans_method):
        if dropped is None:
            dropped = getattr(spans, "dropped", 0)
        spans = spans_method()
    counts: dict[str, int] = {}
    duration: dict[str, int] = {}
    per_worker: dict[int, dict[str, int]] = {}
    for s in spans:
        counts[s.kind] = counts.get(s.kind, 0) + 1
        duration[s.kind] = duration.get(s.kind, 0) + s.duration_ns
        worker_counts = per_worker.setdefault(s.worker, {})
        worker_counts[s.kind] = worker_counts.get(s.kind, 0) + 1
    return {
        "counts": counts,
        "duration_ns": duration,
        "per_worker": per_worker,
        "dropped": dropped or 0,
    }


# -- per-worker utilization / Gantt ---------------------------------------- #


@dataclass(frozen=True)
class ObservedWorkerSummary:
    """Aggregate activity of one real pool worker (nanoseconds)."""

    worker: int
    busy_ns: int
    idle_ns: int
    spans: int
    steals: int
    by_kind: dict

    @property
    def utilization(self) -> float:
        total = self.busy_ns + self.idle_ns
        return self.busy_ns / total if total > 0 else 1.0


def _busy_kinds(spans: Sequence[Span]) -> list[Span]:
    # ``task`` envelops the split/leaf/combine work done inside it;
    # counting both would double-book busy time, so busy time is the task
    # spans (plus function spans from non-pool threads).
    return [s for s in spans if s.kind in ("task", "function") and not s.is_instant]


def summarize_workers(spans: Sequence[Span]) -> list[ObservedWorkerSummary]:
    """Per-worker busy/idle/steal statistics over a recorded run."""
    if not spans:
        return []
    t0 = min(s.start_ns for s in spans)
    t1 = max(s.end_ns for s in spans)
    wallclock = t1 - t0
    workers = sorted({s.worker for s in spans})
    summaries = []
    for worker in workers:
        mine = [s for s in spans if s.worker == worker]
        busy = sum(s.duration_ns for s in _busy_kinds(mine))
        by_kind: dict[str, int] = {}
        for s in mine:
            by_kind[s.kind] = by_kind.get(s.kind, 0) + s.duration_ns
        summaries.append(
            ObservedWorkerSummary(
                worker=worker,
                busy_ns=busy,
                idle_ns=max(wallclock - busy, 0),
                spans=len(mine),
                steals=sum(1 for s in mine if s.kind == "steal"),
                by_kind=by_kind,
            )
        )
    return summaries


def render_gantt(spans: Sequence[Span], width: int = 72, dropped: int = 0) -> str:
    """ASCII Gantt from real events: one row per worker, time → right.

    Same glyphs as the simulator's chart (``s`` split, ``#`` leaf, ``c``
    combine) plus ``t`` for scheduler task spans; ``*`` marks a steal
    instant, ``.`` is time not covered by any span.  ``dropped`` > 0
    flags ring-buffer truncation in the header.
    """
    if width < 10:
        raise IllegalArgumentError("width must be >= 10")
    if not spans:
        return "(empty trace)"
    t0 = min(s.start_ns for s in spans)
    t1 = max(s.end_ns for s in spans)
    wallclock = t1 - t0
    # A run of pure instants (or identical timestamps) still deserves a
    # chart: with zero wallclock everything lands in column 0.
    scale = width / wallclock if wallclock > 0 else 0.0
    workers = sorted({s.worker for s in spans})
    by_worker = {w: [s for s in spans if s.worker == w] for w in workers}
    rows = []
    for worker in workers:
        cells = ["."] * width
        mine = by_worker[worker]
        for kind in _GANTT_ORDER:
            for s in mine:
                if s.kind != kind or s.is_instant:
                    continue
                lo = min(int((s.start_ns - t0) * scale), width - 1)
                hi = min(max(int((s.end_ns - t0) * scale), lo + 1), width)
                glyph = _KIND_GLYPH.get(s.kind, "?")
                for i in range(lo, hi):
                    cells[i] = glyph
        for s in mine:
            if s.kind == "steal":
                cells[min(int((s.start_ns - t0) * scale), width - 1)] = "*"
            elif s.kind in ("cancel", "crash"):
                cells[min(int((s.start_ns - t0) * scale), width - 1)] = "x"
            elif s.kind in ("fault", "retry", "degraded"):
                cells[min(int((s.start_ns - t0) * scale), width - 1)] = "!"
        label = f"w{worker}" if worker >= 0 else "ext"
        rows.append(f"{label:<3} |{''.join(cells)}|")
    header = f"wallclock={wallclock / 1e6:.3f}ms  spans={len(spans)}"
    if dropped > 0:
        header += f"  dropped={dropped} (ring buffer overflowed)"
    legend = (
        "     s=split  #=leaf  c=combine  t=task  F=fuse  *=steal  "
        "x=cancel/crash  !=fault/retry/degraded  .=uncovered"
    )
    return "\n".join([header, *rows, legend])


def worker_report(
    spans: Sequence[Span], width: int = 72, dropped: int = 0, profile=None
) -> str:
    """Gantt plus a per-worker utilization table — the human-readable
    counterpart of the Chrome trace export.  When a
    :class:`~repro.obs.profile.RunProfile` is given, its hot-stage
    report is appended below the table."""
    gantt = render_gantt(spans, width, dropped=dropped)
    summaries = summarize_workers(spans)
    if not summaries:
        return gantt
    lines = [gantt, "", "worker  busy_ms  util   spans  steals"]
    for s in summaries:
        label = f"w{s.worker}" if s.worker >= 0 else "ext"
        lines.append(
            f"{label:<6}  {s.busy_ns / 1e6:7.3f}  {s.utilization:5.1%}"
            f"  {s.spans:5d}  {s.steals:6d}"
        )
    if profile is not None:
        lines.extend(["", profile.report()])
    return "\n".join(lines)
