"""A from-scratch reimplementation of the Java Streams API core in Python.

This package reproduces the machinery that the paper builds on:

* :mod:`repro.streams.spliterator` — the ``Spliterator`` protocol with
  characteristic flags (including the paper's ``POWER2`` extension);
* :mod:`repro.streams.spliterators` — standard sources (list, range,
  iterator, array, empty);
* :mod:`repro.streams.collector` / :mod:`repro.streams.collectors` — the
  ``Collector`` triple *(supplier, accumulator, combiner)* used as the
  divide-and-conquer template method, plus a library of stock collectors;
* :mod:`repro.streams.stream` — the lazy pipeline (``map`` / ``filter`` /
  ``flat_map`` / ``sorted`` / ``limit`` / … with sequential and parallel
  terminal operations);
* :mod:`repro.streams.parallel` — fork/join evaluation of pipelines driven
  by ``try_split`` decomposition;
* :mod:`repro.streams.adaptive` — the metrics-driven ``auto`` split
  policy: leaf thresholds and chunk sizes chosen from observed
  per-element cost and scheduler feedback;
* :mod:`repro.streams.stream_support` — ``StreamSupport``-style factory.

Naming follows Python conventions (``try_split`` for ``trySplit``), with the
Java semantics preserved: mutable reduction via ``collect`` uses the
combiner only on parallel execution, splitting is directed entirely by the
spliterator, and collector characteristics drive evaluation choices.
"""

from repro.streams.spliterator import Characteristics, Spliterator
from repro.streams.spliterators import (
    ArraySpliterator,
    EmptySpliterator,
    IteratorSpliterator,
    ListSpliterator,
    RangeSpliterator,
    spliterator_of,
)
from repro.streams.optional import Optional
from repro.streams.collector import Collector, CollectorCharacteristics
from repro.streams import collectors as Collectors
from repro.streams.ops import (
    CHUNK_SIZE,
    bulk_execution,
    bulk_execution_enabled,
    bulk_stats,
    set_bulk_execution,
)
from repro.streams.fusion import (
    FusedOp,
    fusion,
    fusion_enabled,
    fusion_stats,
    set_fusion,
)
from repro.streams.explain import ExplainPlan
from repro.streams.adaptive import (
    VALID_POLICIES,
    reset_split_policy,
    set_split_policy,
    split_policy,
    split_policy_mode,
    split_policy_stats,
)
from repro.streams.parallel import (
    VALID_BACKENDS,
    parallel_backend,
    parallel_backend_name,
    set_parallel_backend,
)
from repro.streams.stream import Stream
from repro.streams.stream_support import StreamSupport, stream_of

__all__ = [
    "ArraySpliterator",
    "CHUNK_SIZE",
    "Characteristics",
    "Collector",
    "CollectorCharacteristics",
    "Collectors",
    "EmptySpliterator",
    "ExplainPlan",
    "IteratorSpliterator",
    "ListSpliterator",
    "Optional",
    "RangeSpliterator",
    "Spliterator",
    "Stream",
    "StreamSupport",
    "FusedOp",
    "VALID_BACKENDS",
    "VALID_POLICIES",
    "bulk_execution",
    "bulk_execution_enabled",
    "bulk_stats",
    "fusion",
    "fusion_enabled",
    "fusion_stats",
    "parallel_backend",
    "parallel_backend_name",
    "reset_split_policy",
    "set_bulk_execution",
    "set_fusion",
    "set_parallel_backend",
    "set_split_policy",
    "split_policy",
    "split_policy_mode",
    "split_policy_stats",
    "spliterator_of",
    "stream_of",
]
