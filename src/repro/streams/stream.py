"""The ``Stream`` pipeline class.

A stream is a *conduit*: a source spliterator, a chain of lazy intermediate
operations, and at most one terminal operation.  Streams are single-use —
invoking an intermediate or terminal operation *links* (consumes) the
receiver, and further use raises ``IllegalStateError``, exactly as in Java.

Parallel execution is selected per-stream with :meth:`Stream.parallel` and
runs on a :class:`~repro.forkjoin.pool.ForkJoinPool` (the common pool by
default, or one supplied via :meth:`Stream.with_pool`).  Pipelines with
stateful operations (``sorted``, ``distinct``, ``limit``, ``skip``, …) are
evaluated in parallel *segments*: the stateless prefix runs as a parallel
mutable reduction into a buffer, the stateful op is applied as a barrier,
and evaluation resumes on the buffered data — the same semantic barriers
the JDK inserts.

Every parallel terminal (``collect``, ``reduce``, ``for_each``, the match
family, the find family) is *fail-fast*: the first exception raised by any
leaf or combiner cancels the remaining fork/join task tree and re-raises
the original exception to the caller promptly, instead of letting sibling
subtrees burn through the rest of the workload first.  See
``docs/robustness.md`` for the cancellation model.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Iterator, TypeVar

from repro.common import IllegalArgumentError, IllegalStateError
from repro.forkjoin.pool import ForkJoinPool, common_pool
from repro.streams import parallel as _parallel
from repro.streams.collector import Collector, CollectorCharacteristics
from repro.streams.ops import (
    AccumulatorSink,
    DistinctOp,
    DropWhileOp,
    FilterOp,
    FlatMapOp,
    LimitOp,
    MapOp,
    Op,
    PeekOp,
    ReducingSink,
    SkipOp,
    SortedOp,
    TakeWhileOp,
    TerminalSink,
    pull_iterator,
    run_pipeline,
    wrap_ops,
)
from repro.streams.optional import Optional
from repro.streams.spliterator import Spliterator
from repro.streams.spliterators import (
    EmptySpliterator,
    IteratorSpliterator,
    ListSpliterator,
    RangeSpliterator,
    spliterator_of,
)

T = TypeVar("T")
U = TypeVar("U")


class Stream:
    """A lazy, possibly parallel pipeline over a spliterator source."""

    __slots__ = (
        "_spliterator", "_ops", "_parallel", "_pool", "_consumed",
        "_target_size", "_close_handlers", "_deadline", "_backend",
    )

    def __init__(
        self,
        spliterator: Spliterator,
        ops: list[Op] | None = None,
        parallel: bool = False,
        pool: ForkJoinPool | None = None,
        target_size: int | None = None,
    ) -> None:
        self._spliterator = spliterator
        self._ops: list[Op] = ops if ops is not None else []
        self._parallel = parallel
        self._pool = pool
        self._consumed = False
        self._target_size = target_size
        self._close_handlers: list[Callable[[], None]] = []
        self._deadline = None
        self._backend: str | None = None

    # ------------------------------------------------------------------ #
    # Factories
    # ------------------------------------------------------------------ #

    @staticmethod
    def of_items(*items: T) -> "Stream":
        """A sequential stream of the given elements."""
        return Stream(ListSpliterator(items))

    @staticmethod
    def of_iterable(source: Iterable[T]) -> "Stream":
        """A sequential stream over any iterable (sequences split well)."""
        return Stream(spliterator_of(source))

    @staticmethod
    def empty() -> "Stream":
        """The empty stream."""
        return Stream(EmptySpliterator())

    @staticmethod
    def range(lo: int, hi: int) -> "Stream":
        """The integers ``lo, lo+1, …, hi-1`` (like ``IntStream.range``)."""
        return Stream(RangeSpliterator(lo, hi))

    @staticmethod
    def range_closed(lo: int, hi: int) -> "Stream":
        """The integers ``lo, …, hi`` inclusive (``IntStream.rangeClosed``)."""
        return Stream(RangeSpliterator(lo, hi + 1))

    @staticmethod
    def of_nullable(value: T | None) -> "Stream":
        """A one-element stream, or empty when ``value`` is None
        (``Stream.ofNullable``)."""
        if value is None:
            return Stream.empty()
        return Stream.of_items(value)

    @staticmethod
    def iterate(
        seed: T,
        f_or_predicate: Callable[[T], T] | Callable[[T], bool],
        f: Callable[[T], T] | None = None,
    ) -> "Stream":
        """``iterate(seed, f)`` — the infinite stream ``seed, f(seed), …``;
        ``iterate(seed, has_next, f)`` — the Java 9 bounded form, stopping
        before the first value failing ``has_next``."""
        if f is None:
            step = f_or_predicate

            def gen() -> Iterator[T]:
                value = seed
                while True:
                    yield value
                    value = step(value)

        else:
            has_next = f_or_predicate
            step = f

            def gen() -> Iterator[T]:
                value = seed
                while has_next(value):
                    yield value
                    value = step(value)

        return Stream(IteratorSpliterator(gen()))

    @staticmethod
    def generate(supplier: Callable[[], T]) -> "Stream":
        """An infinite stream of ``supplier()`` values."""

        def gen() -> Iterator[T]:
            while True:
                yield supplier()

        return Stream(IteratorSpliterator(gen()))

    @staticmethod
    def concat(first: "Stream", second: "Stream") -> "Stream":
        """Concatenate two streams (both are consumed)."""
        a = first._materialize()
        b = second._materialize()
        out = Stream.of_iterable(a + b)
        out._parallel = first._parallel or second._parallel
        out._pool = first._pool or second._pool
        return out

    # ------------------------------------------------------------------ #
    # Close handlers (``Stream.onClose`` / ``close`` / try-with-resources)
    # ------------------------------------------------------------------ #

    def on_close(self, handler: Callable[[], None]) -> "Stream":
        """Register a handler invoked by :meth:`close`, in order."""
        self._close_handlers.append(handler)
        return self

    def close(self) -> None:
        """Run all close handlers (each once), even if some raise.

        The first raised exception propagates after every handler ran,
        mirroring Java's suppression semantics (without the attachment).
        """
        handlers, self._close_handlers = self._close_handlers, []
        failure: BaseException | None = None
        for handler in handlers:
            try:
                handler()
            except BaseException as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure

    def __enter__(self) -> "Stream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Mode control
    # ------------------------------------------------------------------ #

    def parallel(self) -> "Stream":
        """Mark the pipeline for parallel execution."""
        self._check_linked()
        return self._derive(self._spliterator, self._ops, parallel=True)

    def sequential(self) -> "Stream":
        """Mark the pipeline for sequential execution."""
        self._check_linked()
        return self._derive(self._spliterator, self._ops, parallel=False)

    @property
    def is_parallel(self) -> bool:
        """True if terminal ops will run on the fork/join pool."""
        return self._parallel

    def with_pool(self, pool: ForkJoinPool) -> "Stream":
        """Use ``pool`` instead of the common pool for parallel execution."""
        self._check_linked()
        out = self._derive(self._spliterator, self._ops, parallel=self._parallel)
        out._pool = pool
        return out

    def with_target_size(self, target_size) -> "Stream":
        """Override the split threshold (leaf size) for parallel execution.

        Java computes ``size / (4 × parallelism)``; the paper's analysis of
        where decomposition "automatically stops" corresponds to this knob.

        Pass the string ``"auto"`` to let the adaptive split policy pick
        the threshold from observed per-element cost and scheduler
        feedback (see :mod:`repro.streams.adaptive`) for this stream only,
        regardless of the global ``set_split_policy`` mode.
        """
        if isinstance(target_size, str):
            if target_size != "auto":
                raise IllegalArgumentError(
                    f"target_size must be an int >= 1 or 'auto', "
                    f"got {target_size!r}"
                )
        elif not isinstance(target_size, int) or target_size < 1:
            raise IllegalArgumentError(
                f"target_size must be an int >= 1 or 'auto', got {target_size!r}"
            )
        self._check_linked()
        out = self._derive(self._spliterator, self._ops, parallel=self._parallel)
        out._target_size = target_size
        return out

    def with_deadline(self, deadline) -> "Stream":
        """Bound parallel terminal evaluation by a wall-clock deadline.

        Accepts seconds (a fresh budget starting now) or a
        :class:`repro.faults.Deadline` shared across several operations.
        A parallel terminal that overruns raises
        :class:`~repro.common.TaskTimeoutError` (the root task is
        cancelled if no worker claimed it yet; running leaves are never
        interrupted — see ``docs/robustness.md``).  Sequential terminals
        ignore the deadline.
        """
        from repro.faults.policy import Deadline

        if not isinstance(deadline, Deadline):
            deadline = Deadline.after(float(deadline))
        self._check_linked()
        out = self._derive(self._spliterator, self._ops, parallel=self._parallel)
        out._deadline = deadline
        return out

    def with_backend(self, backend: str) -> "Stream":
        """Select the execution backend for parallel terminals.

        ``'threads'`` (fork/join pool, the default), ``'process'`` (worker
        processes — Python-heavy stages scale with cores, but every
        function crossing the boundary must pickle; ndarray sources shared
        via :func:`repro.powerlist.shm.share_array` ship as zero-copy
        descriptors), or ``'sequential'``.  Overrides the session default
        set by :func:`repro.streams.set_parallel_backend` /
        ``REPRO_PARALLEL_BACKEND``.  No effect on sequential streams.
        """
        _parallel._validate_backend(backend)
        self._check_linked()
        out = self._derive(self._spliterator, self._ops, parallel=self._parallel)
        out._backend = backend
        return out

    # ------------------------------------------------------------------ #
    # Intermediate operations (lazy)
    # ------------------------------------------------------------------ #

    def map(self, f: Callable[[T], U]) -> "Stream":
        """Transform each element with ``f``."""
        return self._append(MapOp(f))

    def filter(self, predicate: Callable[[T], bool]) -> "Stream":
        """Keep only elements satisfying ``predicate``."""
        return self._append(FilterOp(predicate))

    def flat_map(self, f: Callable[[T], Iterable[U]]) -> "Stream":
        """Replace each element with the elements of ``f(element)``."""
        return self._append(FlatMapOp(f))

    def map_multi(self, f: Callable[[T, Callable[[U], None]], None]) -> "Stream":
        """Consumer-driven flat map (Java 16's ``mapMulti``): ``f`` is
        called with each element and an ``emit`` callback."""
        from repro.streams.ops import MapMultiOp

        return self._append(MapMultiOp(f))

    def peek(self, action: Callable[[T], None]) -> "Stream":
        """Observe each element as it flows by (for debugging)."""
        return self._append(PeekOp(action))

    def distinct(self) -> "Stream":
        """Drop duplicate elements (first occurrence wins)."""
        return self._append(DistinctOp())

    def sorted(self, key: Callable[[T], Any] | None = None, reverse: bool = False) -> "Stream":
        """Emit elements in sorted order (stable)."""
        return self._append(SortedOp(key, reverse))

    def limit(self, n: int) -> "Stream":
        """Truncate to at most ``n`` elements."""
        return self._append(LimitOp(n))

    def skip(self, n: int) -> "Stream":
        """Discard the first ``n`` elements."""
        return self._append(SkipOp(n))

    def zip(self, other: "Stream", combine: Callable | None = None) -> "Stream":
        """Pair this stream with ``other`` elementwise, stopping at the
        shorter side.

        Without ``combine`` the elements are ``(a, b)`` tuples; with it,
        ``combine(a, b)`` results.  Both sides' pending op chains are
        stage-fused and drained in lockstep through one two-cursor
        chunked source (:class:`repro.streams.zipper.ZipSpliterator`);
        when ``combine`` is a numpy ufunc and both sides yield ndarray
        chunks, each pair chunk is one vectorized call.  Consumes both
        streams.
        """
        from repro.streams.zipper import ZipSpliterator, _ZipCursor

        if not isinstance(other, Stream):
            raise IllegalArgumentError(
                f"zip expects a Stream, got {type(other).__name__}"
            )
        self._check_linked()
        other._check_linked()
        left_spliterator, left_ops = self._terminal()
        right_spliterator, right_ops = other._terminal()
        zipped = ZipSpliterator(
            _ZipCursor(left_spliterator, left_ops),
            _ZipCursor(right_spliterator, right_ops),
            combine,
        )
        derived = Stream(
            zipped, [], self._parallel, self._pool, self._target_size
        )
        derived._close_handlers = self._close_handlers + other._close_handlers
        derived._deadline = self._deadline
        derived._backend = self._backend
        return derived

    def zip_with(self, other: "Stream", combine: Callable) -> "Stream":
        """:meth:`zip` with a required combiner (``zipWith`` idiom)."""
        if combine is None:
            raise IllegalArgumentError("zip_with requires a combiner")
        return self.zip(other, combine)

    def take_while(self, predicate: Callable[[T], bool]) -> "Stream":
        """Longest prefix of elements satisfying ``predicate``."""
        return self._append(TakeWhileOp(predicate))

    def drop_while(self, predicate: Callable[[T], bool]) -> "Stream":
        """Drop the longest prefix satisfying ``predicate``."""
        return self._append(DropWhileOp(predicate))

    # ------------------------------------------------------------------ #
    # Terminal operations
    # ------------------------------------------------------------------ #

    def collect(
        self,
        collector_or_supplier,
        accumulator: Callable[[Any, T], None] | None = None,
        combiner: Callable[[Any, Any], Any] | None = None,
    ):
        """Mutable reduction — the template method of the paper.

        Accepts either a :class:`Collector` or the raw
        ``(supplier, accumulator, combiner)`` triple.  The combiner is
        exercised only on parallel execution, per the Java contract.
        Parallel collects are fail-fast: one poisoned element cancels the
        remaining task tree instead of completing every sibling leaf.
        """
        if isinstance(collector_or_supplier, Collector):
            collector = collector_or_supplier
        else:
            if accumulator is None or combiner is None:
                raise IllegalArgumentError(
                    "collect needs a Collector or all of supplier/accumulator/combiner"
                )
            def _wrap(combine):
                def merged(a, b):
                    result = combine(a, b)
                    return a if result is None else result
                return merged
            collector = Collector.of(
                collector_or_supplier,
                accumulator,
                _wrap(combiner),
                None,
                CollectorCharacteristics.IDENTITY_FINISH,
            )
        spliterator, ops = self._terminal()
        if self._parallel:
            spliterator, ops = self._barrier_stateful(spliterator, ops)
            return _parallel.parallel_collect(
                spliterator, ops, collector, self._effective_pool(),
                self._target_size, self._deadline, self._backend,
            )
        sink = AccumulatorSink(
            collector.supplier()(),
            collector.accumulator(),
            collector.chunk_accumulator(),
        )
        run_pipeline(spliterator, ops, sink)
        return collector.finisher()(sink.container)

    def reduce(self, *args):
        """Immutable reduction.

        * ``reduce(op)`` → :class:`Optional`;
        * ``reduce(identity, op)`` → value;
        * ``reduce(identity, accumulator, combiner)`` → value (the Java
          three-argument form; the combiner merges partial results in
          parallel runs).
        """
        if len(args) == 1:
            (op,) = args
            identity, has_identity, combiner = None, False, op
            accumulator = op
        elif len(args) == 2:
            identity, accumulator = args
            has_identity, combiner = True, accumulator
        elif len(args) == 3:
            identity, accumulator, combiner = args
            has_identity = True
        else:
            raise IllegalArgumentError("reduce takes 1, 2 or 3 arguments")

        spliterator, ops = self._terminal()
        if self._parallel:
            spliterator, ops = self._barrier_stateful(spliterator, ops)
            if len(args) == 3:
                # Distinct accumulator/combiner: leaf-fold with accumulator,
                # merge partials with combiner via a collector.
                collector = Collector.of(
                    lambda: [identity],
                    lambda acc, t: acc.__setitem__(0, accumulator(acc[0], t)),
                    lambda a, b: ([a.__setitem__(0, combiner(a[0], b[0]))], a)[1],
                    lambda acc: acc[0],
                    CollectorCharacteristics.NONE,
                )
                return _parallel.parallel_collect(
                    spliterator, ops, collector, self._effective_pool(),
                    self._target_size, self._deadline, self._backend,
                )
            return _parallel.parallel_reduce(
                spliterator,
                ops,
                combiner,
                self._effective_pool(),
                identity,
                has_identity,
                self._target_size,
                self._deadline,
                self._backend,
            )
        # Sequential fold.
        sink = ReducingSink(accumulator, identity, has_identity)
        run_pipeline(spliterator, ops, sink)
        if has_identity:
            return sink.value
        return Optional.of(sink.value) if sink.seen else Optional.empty()

    def for_each(self, action: Callable[[T], None]) -> None:
        """Apply ``action`` to each element (unordered when parallel)."""
        spliterator, ops = self._terminal()
        if self._parallel:
            spliterator, ops = self._barrier_stateful(spliterator, ops)
            _parallel.parallel_for_each(
                spliterator, ops, action, self._effective_pool(),
                self._target_size, self._deadline, self._backend,
            )
            return

        class _ForEach(TerminalSink):
            def accept(self, item):
                action(item)

        run_pipeline(spliterator, ops, _ForEach())

    def for_each_ordered(self, action: Callable[[T], None]) -> None:
        """Apply ``action`` in encounter order even on parallel streams."""
        for item in self._materialize_terminal():
            action(item)

    def to_list(self) -> list:
        """Collect into a list (encounter order)."""
        from repro.streams import collectors

        return self.collect(collectors.to_list())

    def to_set(self) -> set:
        """Collect into a set."""
        from repro.streams import collectors

        return self.collect(collectors.to_set())

    def to_dict(self, key_fn: Callable[[T], Any], value_fn: Callable[[T], Any]) -> dict:
        """Collect into a dict (duplicate keys raise, like ``toMap``)."""
        from repro.streams import collectors

        return self.collect(collectors.to_dict(key_fn, value_fn))

    def count(self) -> int:
        """Number of elements."""
        from repro.streams import collectors

        return self.collect(collectors.counting())

    def sum(self) -> Any:
        """Sum of the elements (0 for an empty stream)."""
        return self.reduce(0, lambda a, b: a + b)

    def min(self, key: Callable[[T], Any] | None = None) -> Optional:
        """Minimum element as an :class:`Optional`."""
        key_fn = key if key is not None else (lambda x: x)
        return self.reduce(lambda a, b: a if key_fn(a) <= key_fn(b) else b)

    def max(self, key: Callable[[T], Any] | None = None) -> Optional:
        """Maximum element as an :class:`Optional`."""
        key_fn = key if key is not None else (lambda x: x)
        return self.reduce(lambda a, b: a if key_fn(a) >= key_fn(b) else b)

    def any_match(self, predicate: Callable[[T], bool]) -> bool:
        """True if any element satisfies ``predicate`` (short-circuits)."""
        return self._match(predicate, "any")

    def all_match(self, predicate: Callable[[T], bool]) -> bool:
        """True if every element satisfies ``predicate`` (short-circuits)."""
        return self._match(predicate, "all")

    def none_match(self, predicate: Callable[[T], bool]) -> bool:
        """True if no element satisfies ``predicate`` (short-circuits)."""
        return self._match(predicate, "none")

    def find_first(self) -> Optional:
        """The first element, honoring encounter order."""
        return self._find(first=True)

    def find_any(self) -> Optional:
        """Any element (parallel-friendly)."""
        return self._find(first=False)

    def explain(self) -> "Any":
        """The execution plan, predicted without executing (non-terminal).

        Returns an :class:`~repro.streams.explain.ExplainPlan`: the op
        chain, the fusion rewrite (fused runs, kernel shapes, barriers),
        the traversal mode ``run_pipeline`` would select, and — for
        parallel pipelines — the segmenting at stateful barriers plus the
        predicted split tree.  ``to_dict()`` for tests/tools,
        ``render()`` (or ``str()``) for humans.  The stream is *not*
        consumed: explaining then executing is the normal flow.
        """
        from repro.streams.explain import explain_stream

        return explain_stream(self)

    def profile(self, terminal: Callable[["Stream"], Any], *, sample: int | None = None):
        """Run ``terminal(self)`` under a profiler; returns
        ``(result, RunProfile)``.

        Convenience wrapper over :func:`repro.obs.profiled` that also
        pre-attaches this stream's pool for parallel pipelines::

            result, prof = Stream.range(0, n).parallel().profile(
                lambda s: s.map(f).sum()
            )
            print(prof.report())
        """
        from repro.obs.profile import profiled

        pool = self._effective_pool() if self._parallel else None
        with profiled(sample=sample, pool=pool) as run_profile:
            result = terminal(self)
        return result, run_profile

    def spliterator(self) -> Spliterator:
        """A spliterator over this pipeline's output (terminal op).

        With no intermediate ops the source spliterator is returned
        directly (keeping its splitting behaviour and characteristics);
        otherwise the pipeline output is evaluated lazily element-by-
        element through an :class:`IteratorSpliterator`, like Java's
        wrapping spliterator.
        """
        spliterator, ops = self._terminal()
        if not ops:
            return spliterator
        self._consumed = False  # iterator() below re-consumes
        self._spliterator, self._ops = spliterator, ops
        return IteratorSpliterator(self.iterator())

    def iterator(self) -> Iterator[T]:
        """A lazy sequential iterator over the pipeline's output."""
        from repro.streams.fusion import maybe_fuse

        spliterator, ops = self._terminal()
        ops = maybe_fuse(ops)

        buffer: deque = deque()

        class _Buffer(TerminalSink):
            def accept(self, item):
                buffer.append(item)

        sink = wrap_ops(ops, _Buffer())
        sink.begin(spliterator.get_exact_size_if_known())
        return pull_iterator(spliterator, sink, buffer)

    def __iter__(self) -> Iterator[T]:
        return self.iterator()

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _check_linked(self) -> None:
        if self._consumed:
            raise IllegalStateError(
                "stream has already been operated upon or closed"
            )

    def _derive(self, spliterator: Spliterator, ops: list[Op], parallel: bool) -> "Stream":
        self._consumed = True
        derived = Stream(spliterator, ops, parallel, self._pool, self._target_size)
        # Close handlers travel with the pipeline (Java's onClose contract).
        derived._close_handlers = self._close_handlers
        derived._deadline = self._deadline
        derived._backend = self._backend
        return derived

    def _append(self, op: Op) -> "Stream":
        self._check_linked()
        return self._derive(self._spliterator, self._ops + [op], self._parallel)

    def _terminal(self) -> tuple[Spliterator, list[Op]]:
        self._check_linked()
        self._consumed = True
        return self._spliterator, self._ops

    def _effective_pool(self) -> ForkJoinPool:
        return self._pool if self._pool is not None else common_pool()

    def _barrier_stateful(
        self, spliterator: Spliterator, ops: list[Op]
    ) -> tuple[Spliterator, list[Op]]:
        """Evaluate stateful ops as barriers, returning the residual tail.

        Splits ``ops`` at each stateful stage: the stateless run before it
        executes as a parallel ``to_list`` reduction, the stateful op is
        applied to the buffer sequentially, and the buffer becomes the new
        (splittable) source.

        A ``limit(n)`` cut additionally passes its count as the collect's
        *budget*: leaves truncate locally through counted fused kernels
        and a satisfied contiguous prefix of leaves cancels still-running
        siblings (threads: ``_TerminalContext.cancel``; process:
        ``SharedFlag``), so the barrier scan stops near the cut instead of
        draining the whole source.  ``apply_to_buffer`` below still
        truncates the merged buffer, keeping semantics exact.
        """
        from repro.streams import collectors

        while any(op.stateful for op in ops):
            cut = next(i for i, op in enumerate(ops) if op.stateful)
            prefix, stateful, ops = ops[:cut], ops[cut], ops[cut + 1 :]
            budget = stateful.n if isinstance(stateful, LimitOp) else None
            buffer = _parallel.parallel_collect(
                spliterator,
                prefix,
                collectors.to_list(),
                self._effective_pool(),
                self._target_size,
                self._deadline,
                self._backend,
                budget=budget,
            )
            buffer = stateful.apply_to_buffer(buffer)
            spliterator = ListSpliterator(buffer)
        return spliterator, ops

    def _match(self, predicate: Callable[[T], bool], kind: str) -> bool:
        spliterator, ops = self._terminal()
        if self._parallel:
            spliterator, ops = self._barrier_stateful(spliterator, ops)
            return _parallel.parallel_match(
                spliterator, ops, predicate, self._effective_pool(), kind,
                self._target_size, self._deadline, self._backend,
            )
        found = [False]
        trigger = predicate if kind in ("any", "none") else (lambda t: not predicate(t))

        class _Match(TerminalSink):
            def accept(self, item):
                if not found[0] and trigger(item):
                    found[0] = True

            def cancellation_requested(self):
                return found[0]

        run_pipeline(spliterator, ops, _Match(), force_short_circuit=True)
        return found[0] if kind == "any" else not found[0]

    def _find(self, first: bool) -> Optional:
        spliterator, ops = self._terminal()
        if self._parallel:
            spliterator, ops = self._barrier_stateful(spliterator, ops)
            return _parallel.parallel_find(
                spliterator, ops, self._effective_pool(), first,
                self._target_size, self._deadline, self._backend,
            )
        result: list = []

        class _Find(TerminalSink):
            def accept(self, item):
                if not result:
                    result.append(item)

            def cancellation_requested(self):
                return bool(result)

        run_pipeline(spliterator, ops, _Find(), force_short_circuit=True)
        return Optional.of(result[0]) if result else Optional.empty()

    def _materialize(self) -> list:
        """Consume into a list, preserving mode flags for ``concat``."""
        parallel = self._parallel
        out = self.to_list()
        self._parallel = parallel
        return out

    def _materialize_terminal(self) -> list:
        return self.to_list()
