"""The ``Collector`` abstraction — mutable reduction as a template method.

A collector packages the three functions of
``Stream.collect(supplier, accumulator, combiner)`` (plus an optional
finisher), exactly as ``java.util.stream.Collector<T, A, R>`` does:

* ``supplier()``      → fresh mutable result container ``A``;
* ``accumulator()``   → ``(A, T) -> None``, folds one element in;
* ``combiner()``      → ``(A, A) -> A``, merges two partial containers
  (used *only* by parallel execution — the paper leans on this to place
  the divide-and-conquer combining phase here);
* ``finisher()``      → ``A -> R`` final transform (identity when the
  ``IDENTITY_FINISH`` characteristic is set).

The paper's central move is to implement each PowerList function as a class
implementing this interface; :mod:`repro.core.power_collector` builds on the
definitions here.
"""

from __future__ import annotations

import abc
from enum import Flag, auto
from typing import Callable, Generic, Sequence, TypeVar

T = TypeVar("T")  # input element type
A = TypeVar("A")  # mutable accumulation type
R = TypeVar("R")  # result type


class CollectorCharacteristics(Flag):
    """Hints that allow the implementation to optimize reduction."""

    NONE = 0
    #: The combiner may fold containers in any pairing order.
    UNORDERED = auto()
    #: The accumulator may be called concurrently on one container.
    CONCURRENT = auto()
    #: ``finisher`` is the identity; the container *is* the result.
    IDENTITY_FINISH = auto()


class Collector(abc.ABC, Generic[T, A, R]):
    """Abstract mutable-reduction recipe ``Collector<T, A, R>``."""

    @abc.abstractmethod
    def supplier(self) -> Callable[[], A]:
        """A function creating a new mutable result container.

        In a parallel execution this is called once per leaf of the
        decomposition tree and must return a fresh value each time.
        """

    @abc.abstractmethod
    def accumulator(self) -> Callable[[A, T], None]:
        """An associative, non-interfering fold of one element into a
        container."""

    @abc.abstractmethod
    def combiner(self) -> Callable[[A, A], A]:
        """Merge two partial containers, folding the second into the first
        (and returning the merged container)."""

    def chunk_accumulator(self) -> "Callable[[A, Sequence[T]], None] | None":
        """Optional bulk accumulator folding a whole encounter-ordered
        sublist into a container in one call (``None`` when the collector
        has no bulk rewrite).

        Used by the chunked execution path; must be behaviorally identical
        to applying :meth:`accumulator` to each chunk element in order.
        """
        return None

    def finisher(self) -> Callable[[A], R]:
        """Final container-to-result transform; identity by default."""
        return lambda container: container  # type: ignore[return-value]

    def characteristics(self) -> CollectorCharacteristics:
        """This collector's :class:`CollectorCharacteristics`."""
        return CollectorCharacteristics.IDENTITY_FINISH

    @staticmethod
    def of(
        supplier: Callable[[], A],
        accumulator: Callable[[A, T], None],
        combiner: Callable[[A, A], A],
        finisher: Callable[[A], R] | None = None,
        characteristics: CollectorCharacteristics | None = None,
        chunk_accumulator: "Callable[[A, Sequence[T]], None] | None" = None,
    ) -> "Collector[T, A, R]":
        """Build a collector from plain functions (Java's ``Collector.of``)."""
        return _FunctionCollector(
            supplier, accumulator, combiner, finisher, characteristics,
            chunk_accumulator,
        )


class _FunctionCollector(Collector[T, A, R]):
    """A collector assembled from free functions."""

    __slots__ = (
        "_supplier", "_accumulator", "_combiner", "_finisher", "_chars",
        "_chunk_accumulator",
    )

    def __init__(
        self,
        supplier: Callable[[], A],
        accumulator: Callable[[A, T], None],
        combiner: Callable[[A, A], A],
        finisher: Callable[[A], R] | None,
        characteristics: CollectorCharacteristics | None,
        chunk_accumulator: "Callable[[A, Sequence[T]], None] | None" = None,
    ) -> None:
        self._supplier = supplier
        self._accumulator = accumulator
        self._combiner = combiner
        self._finisher = finisher
        self._chunk_accumulator = chunk_accumulator
        if characteristics is None:
            characteristics = (
                CollectorCharacteristics.IDENTITY_FINISH
                if finisher is None
                else CollectorCharacteristics.NONE
            )
        self._chars = characteristics

    def supplier(self) -> Callable[[], A]:
        return self._supplier

    def accumulator(self) -> Callable[[A, T], None]:
        return self._accumulator

    def combiner(self) -> Callable[[A, A], A]:
        return self._combiner

    def chunk_accumulator(self) -> "Callable[[A, Sequence[T]], None] | None":
        return self._chunk_accumulator

    def finisher(self) -> Callable[[A], R]:
        if self._finisher is None:
            return lambda container: container  # type: ignore[return-value]
        return self._finisher

    def characteristics(self) -> CollectorCharacteristics:
        return self._chars
