"""Process-backend evaluation of the parallel terminal families.

The threaded fork/join terminals (:mod:`repro.streams.parallel`) serialize
pure-Python leaf work on the GIL; this module runs the same five terminal
families — collect, reduce, for_each, match, find — across OS processes,
where Python-heavy leaves scale with cores.  Selected per-stream with
``Stream.with_backend('process')`` or globally via
``set_parallel_backend`` / ``REPRO_PARALLEL_BACKEND``.

Execution model (scatter/compute/combine, mirroring the thread path):

1. the source spliterator is split to leaves with the *same* recursion as
   ``_ReduceTask`` (prefix first, so leaf order == encounter order) down
   to the same target size, computed against the worker-process count;
2. each leaf becomes a picklable payload: a **source spec** + the raw
   (unfused) op chain + a terminal spec + the parent's bulk/fusion flags.
   Fused kernels are ``exec``-compiled and cannot pickle — the child
   re-fuses the shipped op chain itself, so fusion and the chunked bulk
   path both engage inside workers;
3. payloads ship in contiguous batches through
   :meth:`repro.jplf.process_executor.ProcessExecutor.run_leaves`, which
   carries the lifecycle contract: first-failure cancellation of
   outstanding batches (the process-side ``_TerminalContext`` fail-fast),
   deadline-bounded waits that cancel pending child work, broken-pool
   containment after a worker death, and retry / sequential-degradation
   policies;
4. partial results merge in the parent, in encounter order.

Shipping modes (reported by ``Stream.explain()``):

* ``shm-descriptor`` — the leaf is a view over an ndarray shared with
  :func:`repro.powerlist.shm.share_array`: it ships as a ~100-byte
  (segment, dtype, count, offset, stride) descriptor and re-attaches
  zero-copy in the child.  ``tie``/``zip``/slice views are all closed
  under this form.
* ``descriptor`` — range sources ship as ``(lo, hi)`` bounds.
* ``pickle`` — everything else ships as a pickled copy of the leaf's
  elements (the copy cost the alpha–beta model charges for MPI).

Constraints: every user function crossing the boundary (ops, predicates,
reduce operators, collectors) must pickle — module-level functions,
``functools.partial``, ``operator.*``.  Stock collectors built from
lambdas are handled by an automatic fallback where leaves return their
element lists and the parent folds them in order.  ``for_each`` actions
run *in the worker process*: side effects on parent state are invisible —
use ``backend='threads'`` for those.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Any, Callable

import numpy as np

from repro.common import IllegalArgumentError
from repro.jplf.process_executor import ProcessExecutor, current_leaf_cancel
from repro.powerlist import shm as _shm
from repro.powerlist.powerlist import PowerList
from repro.streams import adaptive
# Imported by name: the package re-exports a ``fusion()`` function that
# shadows the ``repro.streams.fusion`` submodule attribute, so module-alias
# imports would bind the function instead.
from repro.streams.fusion import fusion as _fusion_scope
from repro.streams.fusion import fusion_enabled as _fusion_enabled
from repro.streams import ops as _ops
from repro.streams.collector import Collector
from repro.streams.ops import (
    AccumulatorSink,
    CHUNK_SIZE,
    LimitOp,
    Op,
    ReducingSink,
    Sink,
    run_pipeline,
)
from repro.streams.optional import Optional
from repro.streams.spliterator import Spliterator, UNKNOWN_SIZE
from repro.streams.spliterators import ListSpliterator, RangeSpliterator

# --------------------------------------------------------------------------- #
# The shared executor (lazy: forking workers is expensive, reuse them)
# --------------------------------------------------------------------------- #

_executor_lock = threading.Lock()
_shared_executor: ProcessExecutor | None = None


def default_process_count() -> int:
    """Largest power of two ≤ the machine's core count (≥ 1).

    The leaf tree is binary, so a power-of-two worker count keeps the
    scatter balanced — the same constraint :class:`ProcessExecutor`
    enforces.
    """
    cores = os.cpu_count() or 1
    processes = 1
    while processes * 2 <= cores:
        processes *= 2
    return processes


def shared_executor() -> ProcessExecutor:
    """The process pool shared by every process-backend terminal.

    Created on first use with :func:`default_process_count` workers;
    shut down with :func:`shutdown_shared_executor` (the test suite does
    this at session end so no worker outlives the run).
    """
    global _shared_executor
    with _executor_lock:
        if _shared_executor is None:
            _shared_executor = ProcessExecutor(processes=default_process_count())
        return _shared_executor


def shutdown_shared_executor() -> None:
    """Stop the shared workers (idempotent; a new one forks on next use)."""
    global _shared_executor
    with _executor_lock:
        executor, _shared_executor = _shared_executor, None
    if executor is not None:
        executor.shutdown()


# --------------------------------------------------------------------------- #
# Leaf splitting and shipping
# --------------------------------------------------------------------------- #


def split_to_leaves(spliterator: Spliterator, target_size: int) -> list[Spliterator]:
    """Split down to the target size, leaves in encounter order.

    The same recursion as the thread path's ``_ReduceTask`` — prefix
    (the spliterator returned by ``try_split``) first — so merging leaf
    results left-to-right reproduces encounter order.
    """
    leaves: list[Spliterator] = []

    def descend(node: Spliterator) -> None:
        while node.estimate_size() > target_size:
            prefix = node.try_split()
            if prefix is None:
                break
            descend(prefix)
        leaves.append(node)

    descend(spliterator)
    return leaves


def _leaf_source_spec(leaf: Spliterator) -> tuple:
    """The picklable shipping form of one leaf's data.

    Prefers descriptors (range bounds, shared-memory views) over pickled
    copies; anything unrecognized is drained in the parent and shipped as
    an element list.
    """
    if isinstance(leaf, RangeSpliterator):
        return ("range", leaf._lo, leaf._hi)
    if isinstance(leaf, ListSpliterator):
        source, lo, hi = leaf._source, leaf._index, leaf._fence
        try:
            view = source[lo:hi]
        except Exception:
            # e.g. a PowerList view whose slice length is not a power of
            # two — fall back to an elementwise copy.
            view = [source[i] for i in range(lo, hi)]
        if isinstance(view, np.ndarray):
            descriptor = _shm.describe(view)
            if descriptor is not None:
                return ("shm", descriptor)
            return ("seq", view)
        if isinstance(view, PowerList):
            descriptor = _shm.describe_powerlist(view)
            if descriptor is not None:
                return ("shm", descriptor)
            return ("seq", view.to_list())
        return ("seq", list(view))
    drained: list = []
    while True:
        chunk = leaf.next_chunk(CHUNK_SIZE)
        if chunk is None or len(chunk) == 0:
            break
        drained.extend(chunk)
    return ("seq", drained)


def _rebuild_source(spec: tuple) -> Spliterator:
    """Child side: re-materialize a leaf spliterator from its spec."""
    kind = spec[0]
    if kind == "range":
        return RangeSpliterator(spec[1], spec[2])
    if kind == "shm":
        return ListSpliterator(_shm.rebuild(spec[1]))
    return ListSpliterator(spec[1])


def shipping_mode(spliterator: Spliterator) -> str:
    """Predicted shipping mode for a source (used by ``Stream.explain``)."""
    if isinstance(spliterator, RangeSpliterator):
        return "descriptor"
    if isinstance(spliterator, ListSpliterator):
        source = spliterator._source
        if isinstance(source, PowerList):
            source = source.storage
        if isinstance(source, np.ndarray) and _shm.storage_of(source) is not None:
            return "shm-descriptor"
    return "pickle"


def _check_picklable(what: str, *objects: Any) -> bool:
    try:
        pickle.dumps(objects)
        return True
    except Exception:
        return False


def _require_picklable(what: str, *objects: Any) -> None:
    try:
        pickle.dumps(objects)
    except Exception as exc:
        raise IllegalArgumentError(
            f"backend='process' requires picklable {what} (module-level "
            f"functions, functools.partial, operator.*) — pickling failed "
            f"with {type(exc).__name__}: {exc}.  Lambdas and closures only "
            f"work with backend='threads'."
        ) from None


# --------------------------------------------------------------------------- #
# Child-side leaf execution
# --------------------------------------------------------------------------- #


def _append(container: list, item: Any) -> None:
    container.append(item)


def _extend(container: list, chunk) -> None:
    container.extend(chunk)


class _CancellableReducingSink(ReducingSink):
    """A ReducingSink that also honors the batch's shared cancel flag.

    ``copy_into_chunked`` polls ``cancellation_requested`` once per chunk,
    so a running reduce leaf aborts at the next chunk boundary after the
    parent (or a sibling worker) sets the flag.  An aborted leaf's partial
    value is never merged — the parent discards results of cancelled runs.
    """

    __slots__ = ("_cancel",)

    def __init__(self, op, identity=None, has_identity=False, cancel=None):
        super().__init__(op, identity, has_identity)
        self._cancel = cancel

    def cancellation_requested(self):
        return self._cancel is not None and self._cancel.is_set()


def _run_leaf(payload: tuple) -> Any:
    """Top-level worker entry point (module-level so it pickles).

    Re-fuses the shipped op chain and re-applies the parent's bulk/fusion
    flags, so the child's ``run_pipeline`` makes the same mode decisions
    the parent would have — a long-lived worker forked before a flag
    changed must not keep the stale inherited value.

    Every sink built here wires in the batch's shared cancellation flag
    (:func:`repro.jplf.process_executor.current_leaf_cancel`): when the
    parent aborts the run or another worker's match/find leaf hits a
    witness, this leaf stops at its next poll point — a chunk boundary
    for the bulk terminals, the next element for short-circuit ones —
    instead of scanning to completion.
    """
    source_spec, ops, terminal, bulk_enabled, fusion_on, chunk_size = payload
    spliterator = _rebuild_source(source_spec)
    cancel = current_leaf_cancel()
    with _ops.bulk_execution(bulk_enabled), _fusion_scope(fusion_on):
        kind = terminal[0]
        if kind == "collect":
            collector = terminal[1]
            sink = AccumulatorSink(
                collector.supplier()(),
                collector.accumulator(),
                collector.chunk_accumulator(),
                cancel=cancel,
            )
            run_pipeline(spliterator, ops, sink, chunk_size=chunk_size)
            return sink.container
        if kind == "elements":
            sink = AccumulatorSink([], _append, _extend, cancel=cancel)
            run_pipeline(spliterator, ops, sink, chunk_size=chunk_size)
            return sink.container
        if kind == "reduce":
            _, op, identity, has_identity = terminal
            sink = run_pipeline(
                spliterator, ops,
                _CancellableReducingSink(op, identity, has_identity, cancel),
                chunk_size=chunk_size,
            )
            return (sink.value, sink.seen)
        if kind == "for_each":
            action = terminal[1]

            class _ForEach(Sink):
                def accept(self, item):
                    action(item)

                def cancellation_requested(self):
                    return cancel is not None and cancel.is_set()

            run_pipeline(spliterator, ops, _ForEach(), chunk_size=chunk_size)
            return None
        if kind == "match":
            _, predicate, match_kind = terminal
            if match_kind == "all":
                trigger = lambda item: not predicate(item)  # noqa: E731
            else:
                trigger = predicate
            found = [False]

            class _MatchSink(Sink):
                def accept(self, item):
                    if not found[0] and trigger(item):
                        found[0] = True
                        if cancel is not None:
                            # A witness anywhere decides the whole match
                            # (any → True, all/none → False): broadcast so
                            # RUNNING sibling leaves abort mid-scan.
                            cancel.set()

                def cancellation_requested(self):
                    return found[0] or (
                        cancel is not None and cancel.is_set()
                    )

            run_pipeline(spliterator, ops, _MatchSink(), force_short_circuit=True)
            return found[0]
        if kind == "find":
            first = terminal[1] if len(terminal) > 1 else True
            result: list = []

            class _FindSink(Sink):
                def accept(self, item):
                    if not result:
                        result.append(item)
                        if not first and cancel is not None:
                            # find_any: any hit is the answer — broadcast.
                            # find_first must NOT: every leaf reports its
                            # own first so the ordered merge keeps the
                            # leftmost.
                            cancel.set()

                def cancellation_requested(self):
                    return bool(result) or (
                        cancel is not None and cancel.is_set()
                    )

            run_pipeline(spliterator, ops, _FindSink(), force_short_circuit=True)
            return (True, result[0]) if result else (False, None)
        raise IllegalArgumentError(f"unknown process terminal {kind!r}")


# --------------------------------------------------------------------------- #
# Parent-side terminals
# --------------------------------------------------------------------------- #


def _build_payloads(
    spliterator: Spliterator,
    ops: list[Op],
    terminal: tuple,
    executor: ProcessExecutor,
    target_size: int | None,
    observe: bool = True,
) -> tuple[list[tuple], "adaptive.RunObservation | None"]:
    """Split to leaves and build picklable payloads.

    The leaf threshold (and, under the ``auto`` split policy, the child's
    ``run_pipeline`` chunk size) comes from :mod:`repro.streams.adaptive`,
    keyed by the pipeline shape with ``backend="process"`` so the memo
    never mixes process-side costs with thread-side ones.  Returns the
    payload list plus the run's observation handle (None outside auto or
    when ``observe`` is False) — the caller feeds it to ``run_leaves`` and
    completes it on success so measured batch durations update the memo.
    """
    size = spliterator.estimate_size()
    chunk: int | None = None
    key = None
    if adaptive.wants_auto(target_size):
        key = adaptive.shape_key(
            ops, spliterator, executor.processes, backend="process"
        )
        decision = adaptive.decide_threshold(
            size, executor.processes, explicit=target_size, key=key
        )
        target, chunk = decision.target_size, decision.chunk_size
    else:
        target = adaptive.fixed_target(size, executor.processes, target_size)
    leaves = split_to_leaves(spliterator, target)
    observer = None
    if observe and key is not None:
        # Sizes must be read before spec-building: unrecognized leaves are
        # drained into element lists by ``_leaf_source_spec``.
        sizes = [
            0 if (s := leaf.estimate_size()) == UNKNOWN_SIZE else max(s, 0)
            for leaf in leaves
        ]
        observer = adaptive.RunObservation(
            key, executor.processes, target, leaf_sizes=sizes
        )
    flags = (_ops.bulk_execution_enabled(), _fusion_enabled())
    payloads = [
        (_leaf_source_spec(leaf), ops, terminal) + flags + (chunk,)
        for leaf in leaves
    ]
    return payloads, observer


def _budget_stop(budget: int):
    """Contiguous-prefix early stop for a counted-``limit`` budget.

    Returns an ``early_stop_slots(lo, hi, batch_results)`` closure that
    fires once the leaves in slots ``0..k`` (no gaps) have together
    produced at least ``budget`` elements.  Contiguity matters: a
    satisfied budget cancels the remaining slots, and the merge below
    treats their ``None`` results as empty — sound only because every
    discarded slot lies strictly *right* of the prefix that already
    holds the global first ``budget`` elements.
    """
    produced: dict[int, int] = {}

    def early_stop_slots(lo, hi, batch_results):
        for i, r in enumerate(batch_results):
            try:
                produced[lo + i] = len(r)
            except TypeError:
                produced[lo + i] = 0
        total, slot = 0, 0
        while slot in produced:
            total += produced[slot]
            if total >= budget:
                return True
            slot += 1
        return False

    return early_stop_slots


def process_collect(
    spliterator: Spliterator,
    ops: list[Op],
    collector: Collector,
    target_size: int | None = None,
    deadline=None,
    executor: ProcessExecutor | None = None,
    budget: int | None = None,
) -> Any:
    """Mutable reduction across worker processes.

    With a picklable collector each leaf builds its own container in the
    child and the parent folds containers with the combiner, exactly like
    the thread path.  Collectors built from lambdas (the stock library)
    fall back to leaves returning element lists, folded through the
    accumulator in the parent — same result, elements cross the boundary
    instead of containers.

    ``budget`` is the counted short-circuit hook: when the caller's
    pipeline ends in ``limit(n)``, each leaf gets its own ``LimitOp(n)``
    (the global first ``n`` never needs more than the first ``n`` of any
    leaf) and a contiguous-prefix element count stops the scatter — and
    sets the run's :class:`~repro.powerlist.shm.SharedFlag` so RUNNING
    sibling leaves abort at their next chunk boundary — as soon as the
    answer is complete.  Cancelled slots come back ``None`` and merge as
    empty; the caller re-applies ``limit`` over the concatenation.
    """
    executor = executor if executor is not None else shared_executor()
    early_stop_slots = None
    if budget is not None:
        ops = list(ops) + [LimitOp(budget)]
        early_stop_slots = _budget_stop(budget)
    _require_picklable("pipeline stage functions", ops)
    combine = collector.combiner()
    finish = collector.finisher()
    if _check_picklable("collector", collector, combine):
        payloads, observer = _build_payloads(
            spliterator, ops, ("collect", collector), executor, target_size
        )
        partials = executor.run_leaves(
            _run_leaf, payloads, deadline=deadline, label="process collect",
            observer=observer, early_stop_slots=early_stop_slots,
        )
        if observer is not None:
            observer.complete()
        container = None
        seen = False
        for partial in partials:
            if partial is None:
                continue  # slot cancelled by a satisfied budget
            container = combine(container, partial) if seen else partial
            seen = True
        if not seen:
            container = collector.supplier()()
        return finish(container)
    payloads, observer = _build_payloads(
        spliterator, ops, ("elements",), executor, target_size
    )
    partials = executor.run_leaves(
        _run_leaf, payloads, deadline=deadline, label="process collect",
        observer=observer, early_stop_slots=early_stop_slots,
    )
    if observer is not None:
        observer.complete()
    container = collector.supplier()()
    accumulate = collector.accumulator()
    accumulate_chunk = collector.chunk_accumulator()
    for elements in partials:
        if elements is None:
            continue  # slot cancelled by a satisfied budget
        if accumulate_chunk is not None:
            accumulate_chunk(container, elements)
        else:
            for item in elements:
                accumulate(container, item)
    return finish(container)


def process_reduce(
    spliterator: Spliterator,
    ops: list[Op],
    op: Callable,
    identity=None,
    has_identity: bool = False,
    target_size: int | None = None,
    deadline=None,
    executor: ProcessExecutor | None = None,
):
    """Immutable reduction across worker processes (``Stream.reduce``)."""
    executor = executor if executor is not None else shared_executor()
    _require_picklable("pipeline stage functions and reduce operator", ops, op)
    payloads, observer = _build_payloads(
        spliterator, ops, ("reduce", op, identity, has_identity),
        executor, target_size,
    )
    partials = executor.run_leaves(
        _run_leaf, payloads, deadline=deadline, label="process reduce",
        observer=observer,
    )
    if observer is not None:
        observer.complete()
    value, seen = None, False
    for leaf_value, leaf_seen in partials:
        if not leaf_seen:
            continue
        value = op(value, leaf_value) if seen else leaf_value
        seen = True
    if has_identity:
        return value if seen else identity
    return Optional.of(value) if seen else Optional.empty()


def process_for_each(
    spliterator: Spliterator,
    ops: list[Op],
    action: Callable,
    target_size: int | None = None,
    deadline=None,
    executor: ProcessExecutor | None = None,
) -> None:
    """``for_each`` with the action running *in the worker process*.

    Side effects land in the child: mutating parent-process state from the
    action will silently do nothing here — use ``backend='threads'`` when
    the action closes over shared state.
    """
    executor = executor if executor is not None else shared_executor()
    _require_picklable("pipeline stage functions and action", ops, action)
    payloads, observer = _build_payloads(
        spliterator, ops, ("for_each", action), executor, target_size
    )
    executor.run_leaves(
        _run_leaf, payloads, deadline=deadline, label="process for_each",
        observer=observer,
    )
    if observer is not None:
        observer.complete()


def process_match(
    spliterator: Spliterator,
    ops: list[Op],
    predicate: Callable,
    kind: str,
    target_size: int | None = None,
    deadline=None,
    executor: ProcessExecutor | None = None,
) -> bool:
    """Short-circuiting match: each leaf stops at its own witness, and the
    first triggered batch cancels the still-pending ones."""
    if kind not in ("any", "all", "none"):
        raise ValueError(f"unknown match kind: {kind}")
    executor = executor if executor is not None else shared_executor()
    _require_picklable("pipeline stage functions and predicate", ops, predicate)
    payloads, observer = _build_payloads(
        spliterator, ops, ("match", predicate, kind), executor, target_size
    )
    results = executor.run_leaves(
        _run_leaf, payloads, deadline=deadline,
        early_stop=lambda triggered: triggered is True,
        label="process match",
        observer=observer,
    )
    triggered = any(result is True for result in results)
    # A triggered run aborted leaves mid-scan — those timings would teach
    # the memo that elements are cheaper than they are.  Only full
    # traversals feed the cost model (same rule as the thread path).
    if observer is not None and not triggered:
        observer.complete()
    return triggered if kind == "any" else not triggered


def process_find(
    spliterator: Spliterator,
    ops: list[Op],
    first: bool,
    target_size: int | None = None,
    deadline=None,
    executor: ProcessExecutor | None = None,
) -> Optional:
    """``find_first`` / ``find_any`` across worker processes.

    ``find_any`` cancels pending batches on the first hit anywhere;
    ``find_first`` must honor encounter order, so every leaf reports its
    own first element (each stops after one) and the ordered merge keeps
    the leftmost.
    """
    executor = executor if executor is not None else shared_executor()
    _require_picklable("pipeline stage functions", ops)
    # find leaves stop at their own first element by design — their spans
    # measure almost nothing, so find never feeds the adaptive memo.
    payloads, _ = _build_payloads(
        spliterator, ops, ("find", first), executor, target_size, observe=False
    )
    early_stop = None if first else (lambda result: bool(result) and result[0])
    results = executor.run_leaves(
        _run_leaf, payloads, deadline=deadline, early_stop=early_stop,
        label="process find",
    )
    for result in results:
        if result is not None and result[0]:
            return Optional.of(result[1])
    return Optional.empty()
