"""Fork/join evaluation of stream pipelines.

The parallel terminal operations mirror ``java.util.stream.AbstractTask``:
starting from the source spliterator, a task tree is grown by repeatedly
calling ``try_split`` until a node's estimated size drops to the *target
size* (``source size / (4 × parallelism)``, Java's heuristic) or the
spliterator refuses to split.  Each leaf builds a fresh result container
(the collector's ``supplier``), pushes its elements through the fused op
chain into the ``accumulator``, and the interior nodes merge containers
with the ``combiner`` in encounter order — prefix (the spliterator returned
by ``try_split``) first.

Fail-fast error propagation (``docs/robustness.md``): every terminal runs
its task tree under one :class:`_TerminalContext`.  The first exception
raised by any leaf or combiner is recorded there and trips a shared cancel
event — sibling subtrees stop splitting, skip their leaves, forked-but-
unclaimed tasks are cancelled so workers never claim them, and in-flight
collect leaves abort at the next chunk boundary.  The root then re-raises
the *original* exception to the caller, instead of burning the remaining
2^k-element workload first.

Only *stateless* ops reach these functions; :mod:`repro.streams.stream`
segments pipelines at stateful operations first.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, TypeVar

from repro.common import CancellationError, IllegalArgumentError
from repro.faults.plan import current_fault_plan
from repro.faults.policy import Deadline
from repro.forkjoin.pool import ForkJoinPool, current_worker
from repro.forkjoin.task import RecursiveTask
from repro.obs.profile import current_profiler
from repro.obs.tracer import EXTERNAL_WORKER, current_tracer
from repro.streams import adaptive
from repro.streams.adaptive import LEAF_FACTOR, compute_target_size
from repro.streams.collector import Collector
from repro.streams.fusion import maybe_fuse
from repro.streams.ops import (
    AccumulatorSink,
    LimitOp,
    Op,
    ReducingSink,
    Sink,
    run_pipeline,
)
from repro.streams.optional import Optional
from repro.streams.spliterator import Spliterator

T = TypeVar("T")
A = TypeVar("A")

# --------------------------------------------------------------------------- #
# Backend selection
# --------------------------------------------------------------------------- #

#: The recognized execution backends for parallel terminals:
#:
#: * ``threads``    — the fork/join thread pool (default; zero shipping
#:   cost, but pure-Python leaves serialize on the GIL);
#: * ``process``    — worker processes via
#:   :mod:`repro.streams.process_backend` (Python-heavy leaves scale with
#:   cores; crossing functions must pickle);
#: * ``sequential`` — run the terminal in the calling thread (baseline for
#:   benchmarks and a degraded mode for constrained environments).
VALID_BACKENDS = ("threads", "process", "sequential")


def _validate_backend(name: str) -> str:
    if name not in VALID_BACKENDS:
        raise IllegalArgumentError(
            f"unknown parallel backend {name!r}: valid backends are "
            + ", ".join(repr(b) for b in VALID_BACKENDS)
        )
    return name


def _backend_from_env() -> str:
    name = os.environ.get("REPRO_PARALLEL_BACKEND", "").strip()
    return _validate_backend(name) if name else "threads"


_backend = _backend_from_env()


def parallel_backend_name() -> str:
    """The currently selected default backend for parallel terminals."""
    return _backend


def set_parallel_backend(name: str) -> str:
    """Select the default backend for parallel terminals; returns the
    previous one.  Validates the name (:data:`VALID_BACKENDS`).  Per-stream
    ``Stream.with_backend`` and the ``backend=`` terminal kwarg override
    this; the ``REPRO_PARALLEL_BACKEND`` environment variable sets the
    initial value at import."""
    global _backend
    previous = _backend
    _backend = _validate_backend(name)
    return previous


@contextmanager
def parallel_backend(name: str):
    """Context manager scoping :func:`set_parallel_backend`."""
    previous = set_parallel_backend(name)
    try:
        yield
    finally:
        set_parallel_backend(previous)


def resolve_backend(backend: str | None) -> str:
    """An explicit backend (validated) or the session default."""
    return _validate_backend(backend) if backend is not None else _backend


def _worker_id() -> int:
    """Index of the calling pool worker, or EXTERNAL_WORKER outside one."""
    worker = current_worker()
    return worker.index if worker is not None else EXTERNAL_WORKER


def _attach_profiler(pool: ForkJoinPool) -> None:
    """Give an active profiler the pool so it can report counter deltas."""
    profiler = current_profiler()
    if profiler is not None:
        profiler.profile.attach_pool(pool)


def _resolve_threshold(
    spliterator: Spliterator,
    ops: list[Op],
    pool: ForkJoinPool,
    requested,
    observe: bool = True,
) -> tuple[int, int | None, "adaptive.RunObservation | None"]:
    """Resolve one terminal's split threshold through the shared decision
    function (:func:`repro.streams.adaptive.decide_threshold` — the same
    one ``Stream.explain()`` consults, so plans cannot drift).

    Returns ``(target_size, chunk_size, observer)``; the observer is
    non-None only for ``auto`` decisions that should feed the policy memo
    (``observe=False`` for find terminals, whose leaves stop early by
    design and would poison the per-element cost estimate).
    """
    size = spliterator.estimate_size()
    if not adaptive.wants_auto(requested):
        # Fixed-policy fast path: skip shape fingerprinting entirely.
        return adaptive.fixed_target(size, pool.parallelism, requested), None, None
    key = adaptive.shape_key(ops, spliterator, pool.parallelism, backend="threads")
    decision = adaptive.decide_threshold(
        size, pool.parallelism, explicit=requested, key=key
    )
    observer = None
    if observe:
        observer = adaptive.RunObservation(
            key, pool.parallelism, decision.target_size,
            pool_snapshot=pool.scheduling_snapshot(),
        )
    return decision.target_size, decision.chunk_size, observer


class _TerminalContext:
    """Shared cancellation state for one parallel terminal's task tree.

    Carries two distinct stop signals:

    * :attr:`cancel` — the *success* short-circuit used by match/find
      ("the answer is known, stop traversing"); leaves still run, but
      their sinks refuse elements immediately.
    * :attr:`failure` — the *error* short-circuit: the first exception
      recorded by :meth:`fail` wins, trips :attr:`cancel` too (stopping
      in-flight polled leaves), and makes every still-unsplit subtree
      return without touching its data.

    ``is_set`` is provided so the context itself can serve as the cancel
    token of an :class:`~repro.streams.ops.AccumulatorSink`, aborting
    in-flight chunked leaves at the next chunk boundary.
    """

    __slots__ = ("cancel", "failure", "_lock", "pool", "observer")

    def __init__(self, pool: ForkJoinPool | None = None) -> None:
        self.cancel = threading.Event()
        self.failure: BaseException | None = None
        self._lock = threading.Lock()
        self.pool = pool
        #: RunObservation for an adaptive (``auto``) run, else None; leaves
        #: record their span durations here for the split policy.
        self.observer = None

    def fail(self, exc: BaseException) -> None:
        """Record the first failure and cancel the remaining tree."""
        with self._lock:
            if self.failure is not None:
                return
            self.failure = exc
        self.cancel.set()
        if self.pool is not None:
            self.pool._note_failfast_cancellation()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(
                "cancel", worker=_worker_id(), error=type(exc).__name__
            )

    def is_set(self) -> bool:
        """Event-protocol view used by leaf sinks: stop on failure."""
        return self.failure is not None


class _CountedBudget:
    """Encounter-order output budget for a parallel ``limit`` prefix.

    Leaves report ``(start, end, produced)`` source-index intervals as
    they complete; the budget is *satisfied* once the contiguous-from-
    origin prefix of completed intervals has produced >= ``n`` outputs.
    Only then may sibling leaves be cancelled: every aborted partial leaf
    lies strictly to the right of the satisfied prefix, so concatenating
    partials in encounter order and truncating to ``n`` still yields
    exactly the stream's first ``n`` outputs.
    """

    __slots__ = ("n", "_origin", "_lock", "_intervals", "satisfied")

    def __init__(self, n: int, origin: int) -> None:
        self.n = n
        self._origin = origin
        self._lock = threading.Lock()
        self._intervals: dict[int, tuple[int, int]] = {}
        self.satisfied = n <= 0

    def note(self, start: int, end: int, produced: int) -> bool:
        """Record a completed leaf; True once the budget is satisfied."""
        if self.satisfied:
            return True
        with self._lock:
            self._intervals[start] = (end, produced)
            frontier = self._origin
            total = 0
            while True:
                entry = self._intervals.get(frontier)
                if entry is None:
                    return self.satisfied
                end_pos, count = entry
                total += count
                if total >= self.n:
                    self.satisfied = True
                    return True
                if end_pos <= frontier:
                    # Zero-width interval (empty source/leaf): the walk
                    # cannot advance past it, and it contributes nothing.
                    return self.satisfied
                frontier = end_pos


def _leaf_origin(spliterator: Spliterator) -> int | None:
    """The absolute source position a leaf starts at, for spliterator
    types whose splits tile the source contiguously; None disables
    cross-leaf budget cancellation (per-leaf truncation still applies)."""
    from repro.streams.spliterators import ListSpliterator, RangeSpliterator

    if isinstance(spliterator, ListSpliterator):
        return spliterator._index
    if isinstance(spliterator, RangeSpliterator):
        return spliterator._lo
    return None


class _BudgetCancelToken:
    """Leaf cancel token for budgeted collects: stops on sibling failure
    (fail-fast) *or* on a satisfied budget (success short-circuit)."""

    __slots__ = ("_ctx",)

    def __init__(self, ctx: _TerminalContext) -> None:
        self._ctx = ctx

    def is_set(self) -> bool:
        ctx = self._ctx
        return ctx.failure is not None or ctx.cancel.is_set()


class _ReduceTask(RecursiveTask):
    """Generic ordered divide-and-conquer over a spliterator.

    Parameterized by a ``leaf`` function (spliterator → partial result) and
    a ``merge`` function (prefix result, suffix result → result), it
    expresses every parallel terminal operation in this module.  All tasks
    of one terminal share a :class:`_TerminalContext` for fail-fast and
    short-circuit cancellation.
    """

    __slots__ = ("spliterator", "target_size", "leaf", "merge", "ctx", "depth")

    def __init__(
        self,
        spliterator: Spliterator,
        target_size: int,
        leaf: Callable[[Spliterator], Any],
        merge: Callable[[Any, Any], Any],
        ctx: _TerminalContext,
        depth: int = 0,
    ) -> None:
        super().__init__()
        self.spliterator = spliterator
        self.target_size = target_size
        self.leaf = leaf
        self.merge = merge
        self.ctx = ctx
        self.depth = depth

    def compute(self) -> Any:
        # The tracer is fetched once per task; with tracing disabled each
        # event site below costs one ``enabled`` attribute check.
        ctx = self.ctx
        tracer = current_tracer()
        spliterator = self.spliterator
        while True:
            if ctx.failure is not None:
                # A sibling already failed: skip this whole subtree.  The
                # value is irrelevant — the root re-raises the failure.
                return None
            if ctx.cancel.is_set():
                # Success short-circuit (match/find): stop splitting; the
                # leaf's sink refuses elements, so this returns instantly
                # with the terminal's identity result.
                return self._leaf(spliterator, tracer)
            size = spliterator.estimate_size()
            if size <= self.target_size:
                return self._leaf(spliterator, tracer)
            if tracer.enabled:
                start = time.perf_counter_ns()
                prefix = spliterator.try_split()
                tracer.emit(
                    "split",
                    worker=_worker_id(),
                    start_ns=start,
                    end_ns=time.perf_counter_ns(),
                    size=size,
                )
            else:
                prefix = spliterator.try_split()
            if prefix is None:
                return self._leaf(spliterator, tracer)
            left = _ReduceTask(
                prefix, self.target_size, self.leaf, self.merge, ctx,
                self.depth + 1,
            )
            left.fork()
            try:
                right_result = _ReduceTask(
                    spliterator, self.target_size, self.leaf, self.merge, ctx,
                    self.depth + 1,
                ).compute()
            except BaseException as exc:
                ctx.fail(exc)
                # The forked sibling would otherwise run to completion on
                # another worker; cancelling it here lets an unclaimed
                # task die on the deque without ever being executed.
                left.cancel()
                raise
            try:
                left_result = left.join()
            except BaseException as exc:
                ctx.fail(exc)
                raise
            if ctx.failure is not None:
                return None  # partials are garbage once the tree failed
            if tracer.enabled:
                start = time.perf_counter_ns()
                result = self._merge(left_result, right_result)
                tracer.emit(
                    "combine",
                    worker=_worker_id(),
                    start_ns=start,
                    end_ns=time.perf_counter_ns(),
                    size=size,
                )
                return result
            return self._merge(left_result, right_result)

    def _merge(self, left_result: Any, right_result: Any) -> Any:
        try:
            plan = current_fault_plan()
            if plan is not None:
                action = plan.fire(
                    "combine", allowed=("raise", "delay", "corrupt"),
                    depth=self.depth, worker=_worker_id(),
                )
                if action is not None:
                    action.apply_before()
                    return action.apply_result(
                        self.merge(left_result, right_result)
                    )
            return self.merge(left_result, right_result)
        except BaseException as exc:  # combiner failure is fail-fast too
            self.ctx.fail(exc)
            raise

    def _leaf(self, spliterator: Spliterator, tracer) -> Any:
        try:
            action = None
            plan = current_fault_plan()
            if plan is not None:
                action = plan.fire(
                    "leaf", allowed=("raise", "delay", "corrupt"),
                    depth=self.depth, size=spliterator.estimate_size(),
                    worker=_worker_id(),
                )
                if action is not None:
                    action.apply_before()
            profiler = current_profiler()
            observer = self.ctx.observer
            if not tracer.enabled and profiler is None and observer is None:
                result = self.leaf(spliterator)
            else:
                size = spliterator.estimate_size()
                start = time.perf_counter_ns()
                result = self.leaf(spliterator)
                end = time.perf_counter_ns()
                if tracer.enabled:
                    tracer.emit(
                        "leaf",
                        worker=_worker_id(),
                        start_ns=start,
                        end_ns=end,
                        size=size,
                    )
                if observer is not None:
                    observer.record_leaf(end - start, size)
                if profiler is not None:
                    profiler.profile.record_leaf(end - start, size)
                    pool = self.ctx.pool
                    if pool is not None:
                        pool._observe_leaf_duration(end - start)
            if action is not None:
                result = action.apply_result(result)
            return result
        except BaseException as exc:
            self.ctx.fail(exc)
            raise


def _invoke_fail_fast(
    pool: ForkJoinPool,
    root: _ReduceTask,
    ctx: _TerminalContext,
    deadline: Deadline | None = None,
):
    """Run ``root`` on ``pool``, guaranteeing the *original* failure wins.

    Once a leaf has failed, sibling tasks may settle as cancelled; which
    exception reaches the root first is a race.  This entry point pins the
    contract: the caller always sees the first recorded failure, never a
    secondary :class:`CancellationError`.

    A ``deadline`` bounds the external wait: the remaining budget becomes
    ``pool.invoke``'s timeout, so an overrunning terminal surfaces as
    :class:`~repro.common.TaskTimeoutError` instead of blocking forever.
    """
    timeout = None
    if deadline is not None:
        deadline.check("parallel terminal")
        timeout = deadline.remaining()
    try:
        return pool.invoke(root, timeout=timeout)
    except BaseException as exc:
        original = ctx.failure
        if original is not None and exc is not original:
            raise original from None
        raise


def parallel_collect(
    spliterator: Spliterator,
    ops: list[Op],
    collector: Collector,
    pool: ForkJoinPool,
    target_size: int | None = None,
    deadline: Deadline | None = None,
    backend: str | None = None,
    budget: int | None = None,
) -> Any:
    """Parallel mutable reduction (``Stream.collect``) over the pool.

    This is the paper's template method: the supplier creates the leaves of
    the divide-and-conquer tree, the accumulator fills them, the combiner
    computes interior nodes.  Runs fail-fast: the first leaf or combiner
    exception cancels the remaining tree and re-raises promptly.

    ``budget`` is set by ``Stream._barrier_stateful`` when the stateful
    cut is a ``limit(n)``: each leaf gets a per-leaf ``LimitOp(n)``
    appended (sound — the global first n outputs never need more than the
    first n of any leaf, and the counted fused kernel stops that leaf's
    scan at its cut), and a :class:`_CountedBudget` cancels still-running
    sibling leaves once the contiguous prefix of completed leaves has
    produced ``n`` outputs.  The caller truncates the merged buffer.
    """
    # Backend dispatch happens on the *raw* op chain: fused kernels are
    # exec-compiled and unpicklable, so the process backend ships unfused
    # ops and lets each worker re-fuse locally.
    backend = resolve_backend(backend)
    if backend == "process":
        from repro.streams import process_backend as _pb

        return _pb.process_collect(
            spliterator, ops, collector,
            target_size=target_size, deadline=deadline, budget=budget,
        )
    if backend == "sequential":
        if deadline is not None:
            deadline.check("sequential collect")
        if budget is not None:
            ops = list(ops) + [LimitOp(budget)]
        sink = AccumulatorSink(
            collector.supplier()(),
            collector.accumulator(),
            collector.chunk_accumulator(),
        )
        run_pipeline(spliterator, ops, sink)
        return collector.finisher()(sink.container)
    target_size, chunk_size, observer = _resolve_threshold(
        spliterator, ops, pool, target_size
    )
    counted_budget = None
    if budget is not None:
        root_origin = _leaf_origin(spliterator)
        if root_origin is not None:
            counted_budget = _CountedBudget(budget, root_origin)
        ops = list(ops) + [LimitOp(budget)]
    ops = maybe_fuse(ops)
    supplier = collector.supplier()
    accumulate = collector.accumulator()
    accumulate_chunk = collector.chunk_accumulator()
    combine = collector.combiner()
    finish = collector.finisher()
    ctx = _TerminalContext(pool)
    ctx.observer = observer
    _attach_profiler(pool)

    if counted_budget is None and budget is None:
        cancel_token: Any = ctx
    else:
        # Budgeted leaves must also stop when the budget short-circuit
        # trips ``ctx.cancel`` (not just on failure).
        cancel_token = _BudgetCancelToken(ctx)

    def leaf(leaf_spliterator: Spliterator) -> Any:
        # Each fork/join leaf traverses its sub-spliterator through the
        # shared entry point, so the chunked fast path engages per leaf:
        # O(stages) Python calls instead of O(elements × stages).  The
        # context rides along as the sink's cancel token, so an in-flight
        # leaf aborts at the next chunk boundary once a sibling fails.
        origin = None
        span = 0
        if counted_budget is not None:
            origin = _leaf_origin(leaf_spliterator)
            span = leaf_spliterator.estimate_size()
        sink = AccumulatorSink(
            supplier(), accumulate, accumulate_chunk, cancel=cancel_token
        )
        run_pipeline(leaf_spliterator, ops, sink, chunk_size=chunk_size)
        if ctx.failure is not None:
            raise CancellationError("leaf aborted by sibling failure")
        if (
            counted_budget is not None
            and origin is not None
            and not ctx.cancel.is_set()
        ):
            # Only completed leaves may report: a partial (aborted) leaf's
            # interval would break the contiguous-prefix soundness rule.
            container = sink.container
            if isinstance(container, list) and counted_budget.note(
                origin, origin + span, len(container)
            ):
                ctx.cancel.set()
        return sink.container

    root = _ReduceTask(spliterator, target_size, leaf, combine, ctx)
    result = finish(_invoke_fail_fast(pool, root, ctx, deadline))
    if observer is not None:
        observer.complete(pool)
    return result


def parallel_reduce(
    spliterator: Spliterator,
    ops: list[Op],
    op: Callable[[T, T], T],
    pool: ForkJoinPool,
    identity: T | None = None,
    has_identity: bool = False,
    target_size: int | None = None,
    deadline: Deadline | None = None,
    backend: str | None = None,
):
    """Parallel immutable reduction (``Stream.reduce``).

    With an identity the result is the bare value; without one it is an
    :class:`Optional` (empty for an empty stream).
    """
    backend = resolve_backend(backend)
    if backend == "process":
        from repro.streams import process_backend as _pb

        return _pb.process_reduce(
            spliterator, ops, op, identity, has_identity,
            target_size=target_size, deadline=deadline,
        )
    if backend == "sequential":
        if deadline is not None:
            deadline.check("sequential reduce")
        sink = run_pipeline(
            spliterator, ops, ReducingSink(op, identity, has_identity)
        )
        if has_identity:
            return sink.value
        return Optional.of(sink.value) if sink.seen else Optional.empty()
    target_size, chunk_size, observer = _resolve_threshold(
        spliterator, ops, pool, target_size
    )
    ops = maybe_fuse(ops)
    ctx = _TerminalContext(pool)
    ctx.observer = observer
    _attach_profiler(pool)

    def leaf(leaf_spliterator: Spliterator) -> ReducingSink:
        return run_pipeline(
            leaf_spliterator, ops, ReducingSink(op, identity, has_identity),
            chunk_size=chunk_size,
        )

    def merge(a: ReducingSink, b: ReducingSink) -> ReducingSink:
        if not b.seen:
            return a
        if not a.seen:
            return b
        a.value = op(a.value, b.value)
        return a

    result = _invoke_fail_fast(
        pool, _ReduceTask(spliterator, target_size, leaf, merge, ctx), ctx,
        deadline,
    )
    if observer is not None:
        observer.complete(pool)
    if has_identity:
        return result.value
    return Optional.of(result.value) if result.seen else Optional.empty()


def parallel_for_each(
    spliterator: Spliterator,
    ops: list[Op],
    action: Callable[[T], None],
    pool: ForkJoinPool,
    target_size: int | None = None,
    deadline: Deadline | None = None,
    backend: str | None = None,
) -> None:
    """Parallel ``for_each`` (unordered, like Java's)."""
    backend = resolve_backend(backend)
    if backend == "process":
        from repro.streams import process_backend as _pb

        return _pb.process_for_each(
            spliterator, ops, action,
            target_size=target_size, deadline=deadline,
        )
    if backend == "sequential":
        if deadline is not None:
            deadline.check("sequential for_each")

        class _ForEachSeq(Sink):
            def accept(self, item):
                action(item)

        run_pipeline(spliterator, ops, _ForEachSeq())
        return None
    target_size, chunk_size, observer = _resolve_threshold(
        spliterator, ops, pool, target_size
    )
    ops = maybe_fuse(ops)
    ctx = _TerminalContext(pool)
    ctx.observer = observer
    _attach_profiler(pool)

    def leaf(leaf_spliterator: Spliterator) -> None:
        class _ForEach(Sink):
            def accept(self, item):
                action(item)

        run_pipeline(leaf_spliterator, ops, _ForEach(), chunk_size=chunk_size)

    _invoke_fail_fast(
        pool,
        _ReduceTask(spliterator, target_size, leaf, lambda a, b: None, ctx),
        ctx,
        deadline,
    )
    if observer is not None:
        observer.complete(pool)


def parallel_match(
    spliterator: Spliterator,
    ops: list[Op],
    predicate: Callable[[T], bool],
    pool: ForkJoinPool,
    kind: str,
    target_size: int | None = None,
    deadline: Deadline | None = None,
    backend: str | None = None,
) -> bool:
    """Parallel short-circuiting match (``any``/``all``/``none``).

    A shared cancellation event stops all branches as soon as the answer is
    determined (a witness for ``any``, a counterexample for ``all``/``none``).
    """
    if kind not in ("any", "all", "none"):
        raise ValueError(f"unknown match kind: {kind}")
    backend = resolve_backend(backend)
    if backend == "process":
        from repro.streams import process_backend as _pb

        return _pb.process_match(
            spliterator, ops, predicate, kind,
            target_size=target_size, deadline=deadline,
        )
    if backend == "sequential":
        if deadline is not None:
            deadline.check("sequential match")
        seq_trigger = (
            (lambda item: not predicate(item)) if kind == "all" else predicate
        )
        found = [False]

        class _MatchSeq(Sink):
            def accept(self, item):
                if not found[0] and seq_trigger(item):
                    found[0] = True

            def cancellation_requested(self):
                return found[0]

        run_pipeline(spliterator, ops, _MatchSeq(), force_short_circuit=True)
        return found[0] if kind == "any" else not found[0]
    target_size, _, observer = _resolve_threshold(
        spliterator, ops, pool, target_size
    )
    ops = maybe_fuse(ops)
    ctx = _TerminalContext(pool)
    ctx.observer = observer
    _attach_profiler(pool)
    cancel = ctx.cancel
    # For "any": looking for an element satisfying predicate → result True.
    # For "all": looking for a counterexample (not predicate) → result False.
    # For "none": looking for a witness (predicate) → result False.
    if kind == "any":
        trigger = predicate
    elif kind == "all":
        trigger = lambda item: not predicate(item)
    else:
        trigger = predicate

    def leaf(leaf_spliterator: Spliterator) -> bool:
        found = [False]

        class _MatchSink(Sink):
            def accept(self, item):
                if not found[0] and trigger(item):
                    found[0] = True
                    cancel.set()

            def cancellation_requested(self):
                return found[0] or cancel.is_set()

        # Through run_pipeline (not a bare copy_into) so leaves share the
        # memoized fusion rewrite and profiler instrumentation.
        run_pipeline(leaf_spliterator, ops, _MatchSink(), force_short_circuit=True)
        return found[0]

    triggered = _invoke_fail_fast(
        pool,
        _ReduceTask(spliterator, target_size, leaf, lambda a, b: a or b, ctx),
        ctx,
        deadline,
    )
    if observer is not None and not cancel.is_set():
        # Only full traversals feed the memo: a triggered match aborted
        # its leaves early, which would skew the per-element cost.
        observer.complete(pool)
    return triggered if kind == "any" else not triggered


def parallel_find(
    spliterator: Spliterator,
    ops: list[Op],
    pool: ForkJoinPool,
    first: bool,
    target_size: int | None = None,
    deadline: Deadline | None = None,
    backend: str | None = None,
) -> Optional:
    """Parallel ``find_first``/``find_any``.

    ``find_any`` cancels globally on the first hit anywhere; ``find_first``
    must honor encounter order, so each leaf stops at its own first element
    and the ordered merge keeps the leftmost.
    """
    backend = resolve_backend(backend)
    if backend == "process":
        from repro.streams import process_backend as _pb

        return _pb.process_find(
            spliterator, ops, first,
            target_size=target_size, deadline=deadline,
        )
    if backend == "sequential":
        if deadline is not None:
            deadline.check("sequential find")
        result: list = []

        class _FindSeq(Sink):
            def accept(self, item):
                if not result:
                    result.append(item)

            def cancellation_requested(self):
                return bool(result)

        run_pipeline(spliterator, ops, _FindSeq(), force_short_circuit=True)
        return Optional.of(result[0]) if result else Optional.empty()
    # find leaves stop at their own first element by design, so their span
    # samples would poison the cost memo — observe=False keeps the auto
    # decision without the feedback.
    target_size, _, _ = _resolve_threshold(
        spliterator, ops, pool, target_size, observe=False
    )
    ops = maybe_fuse(ops)
    ctx = _TerminalContext(pool)
    _attach_profiler(pool)
    # find_first must not globally cancel on a hit (a leftmost element may
    # still be discovered later); its leaves stop only on their own hit.
    cancel = ctx.cancel if not first else None

    def leaf(leaf_spliterator: Spliterator) -> Optional:
        result: list = []

        class _FindSink(Sink):
            def accept(self, item):
                if not result:
                    result.append(item)
                    if cancel is not None:
                        cancel.set()

            def cancellation_requested(self):
                return bool(result) or (cancel is not None and cancel.is_set())

        run_pipeline(leaf_spliterator, ops, _FindSink(), force_short_circuit=True)
        return Optional.of(result[0]) if result else Optional.empty()

    def merge(a: Optional, b: Optional) -> Optional:
        return a if a.is_present() else b

    return _invoke_fail_fast(
        pool, _ReduceTask(spliterator, target_size, leaf, merge, ctx), ctx,
        deadline,
    )
