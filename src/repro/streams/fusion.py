"""Pipeline stage fusion: collapse runs of adjacent stateless ops.

The sink-chain design (one ``Op`` → one ``Sink`` per stage) is faithful to
Java but pays one Python dispatch *per stage* per element — and, on the
chunked bulk path, one intermediate list *per stage* per chunk.  That
per-stage dispatch is exactly the cost "Stream Fusion, to Completeness"
(Kiselyov et al.) and the ``mapMulti``-fusion line of work identify as the
dominant overhead of streaming APIs.

This module rewrites the op chain once, at terminal time (before mode
selection in :func:`repro.streams.ops.run_pipeline`): every maximal run of
two or more adjacent *stateless* ops (``map`` / ``filter`` / ``peek`` /
``flat_map`` / ``map_multi``) collapses into a single :class:`FusedOp`
whose kernels are **generated and compiled** from the run:

* the per-element kernel emits straight-line code — nested calls, an
  early-out per filter, a loop per expander — so one sink dispatch covers
  the whole run;
* the chunk kernel emits one comprehension (or one statement loop when the
  run contains ``peek`` / ``map_multi``) that crosses the run in a single
  pass, with **zero** intermediate per-stage lists — stacking with the
  bulk-execution path of PR 2 instead of bypassing it;
* a prefix of numpy-ufunc maps applied to an ndarray chunk stays
  vectorized (chained ufunc calls), exactly as the unfused ``MapOp`` chunk
  rewrite would.

Fusion is semantics-preserving by construction:

* *stateful* ops (``sorted``, ``distinct``, ``limit``, ``skip``,
  ``take_while``, ``drop_while``) are **fusion barriers** — runs never
  cross them;
* encounter order is preserved (stages compose in pipeline order);
* short-circuiting still works: the fused kernel polls the downstream
  ``cancellation_requested`` between the outputs of an expander, exactly
  where the unfused ``FlatMapSink`` polls, so ``flat_map`` over an
  infinite iterable under ``limit`` still terminates;
* ``begin(size)`` forwards the size only when every fused stage is
  size-preserving (``map`` / ``peek``), mirroring the unfused chain.

Controls mirror the bulk-execution ones: :func:`set_fusion` /
:func:`fusion_enabled` / the :func:`fusion` context manager, and
:func:`fusion_stats` counts rewritten pipelines and collapsed stages.
Each rewrite emits a ``fuse`` span through :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from functools import lru_cache
from typing import Callable, Sequence

from repro.obs.tracer import EXTERNAL_WORKER, current_tracer
from repro.streams.ops import (
    ChainedSink,
    FilterOp,
    FlatMapOp,
    MapMultiOp,
    MapOp,
    Op,
    PeekOp,
    Sink,
)

try:  # numpy is a hard dependency of the repo, but keep fusion importable
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Stage kinds a fused run may contain, in dispatch order.
_FUSIBLE_TYPES = (MapOp, FilterOp, PeekOp, FlatMapOp, MapMultiOp)

#: Minimum run length worth collapsing — wrapping a single op in a
#: ``FusedOp`` would only add indirection.
MIN_RUN = 2


# --------------------------------------------------------------------------- #
# Kernel code generation
# --------------------------------------------------------------------------- #
#
# A fused run compiles to at most three functions:
#
#   element kernel   k(item, _accept, _cancelled)   — per-element path
#   chunk kernel     k(chunk) -> list               — bulk path
#   ufunc prefix     applied before the chunk kernel on ndarray chunks
#
# Sources depend only on the *shape* of the run (the sequence of stage
# kinds), so compiled code objects are cached by source; the stage
# callables are bound per-``FusedOp`` through the exec namespace.


def _stage_kind(op: Op) -> str:
    if type(op) is MapOp:
        return "map"
    if type(op) is FilterOp:
        return "filter"
    if type(op) is PeekOp:
        return "peek"
    if type(op) is FlatMapOp:
        return "flat_map"
    if type(op) is MapMultiOp:
        return "map_multi"
    raise AssertionError(f"not a fusible op: {type(op).__name__}")


def _stage_fn(op: Op) -> Callable:
    return op.action if type(op) is PeekOp else (
        op.predicate if type(op) is FilterOp else op.f
    )


@lru_cache(maxsize=256)
def _compiled(source: str, name: str):
    """Compile generated kernel source once per run shape."""
    return compile(source, f"<fused:{name}>", "exec")


def _bind(source: str, name: str, fns: Sequence[Callable]) -> Callable:
    """Exec a cached code object with this run's stage callables bound."""
    namespace = {f"_f{i}": fn for i, fn in enumerate(fns)}
    exec(_compiled(source, name), namespace)
    return namespace[name]


def _gen_element_kernel(kinds: Sequence[str]) -> str:
    """Straight-line per-element kernel for the run.

    ``map``/``peek``/``filter`` compile to assignments and early-outs; an
    expander (``flat_map`` / ``map_multi``) opens a loop over its outputs,
    polling ``_cancelled()`` before each downstream emission exactly as
    the unfused ``FlatMapSink`` does.
    """
    lines = ["def _element(_v0, _accept, _cancelled):"]
    indent = "    "
    var, expanded = "_v0", False
    for i, kind in enumerate(kinds):
        if kind == "map":
            lines.append(f"{indent}_v{i + 1} = _f{i}({var})")
            var = f"_v{i + 1}"
        elif kind == "peek":
            lines.append(f"{indent}_f{i}({var})")
        elif kind == "filter":
            lines.append(f"{indent}if not _f{i}({var}):")
            lines.append(f"{indent}    return" if not expanded
                         else f"{indent}    continue")
        elif kind == "flat_map":
            lines.append(f"{indent}for _v{i + 1} in _f{i}({var}):")
            lines.append(f"{indent}    if _cancelled():")
            lines.append(f"{indent}        break")
            indent += "    "
            var, expanded = f"_v{i + 1}", True
        else:  # map_multi: buffer the callback-driven outputs, then loop
            lines.append(f"{indent}_b{i} = []")
            lines.append(f"{indent}_f{i}({var}, _b{i}.append)")
            lines.append(f"{indent}for _v{i + 1} in _b{i}:")
            lines.append(f"{indent}    if _cancelled():")
            lines.append(f"{indent}        break")
            indent += "    "
            var, expanded = f"_v{i + 1}", True
    lines.append(f"{indent}_accept({var})")
    return "\n".join(lines)


def _gen_chunk_comprehension(kinds: Sequence[str]) -> str:
    """Single-pass comprehension kernel (runs without peek/map_multi).

    ``map`` stages nest as calls inside the output expression, ``filter``
    stages become ``if`` clauses (binding the value so far via ``:=`` when
    it is not yet a bare name), ``flat_map`` stages become nested ``for``
    clauses — one list, zero per-stage intermediates.
    """
    clauses = ["for _v0 in _chunk"]
    expr = "_v0"
    for i, kind in enumerate(kinds):
        if kind == "map":
            expr = f"_f{i}({expr})"
        elif kind == "filter":
            if expr.startswith("_v") and expr[2:].isdigit():
                clauses.append(f"if _f{i}({expr})")
            else:
                clauses.append(f"if _f{i}((_v{i + 1} := {expr}))")
                expr = f"_v{i + 1}"
        else:  # flat_map
            clauses.append(f"for _v{i + 1} in _f{i}({expr})")
            expr = f"_v{i + 1}"
    body = f"[{expr} {' '.join(clauses)}]"
    return f"def _chunk_kernel(_chunk):\n    return {body}"


def _gen_chunk_loop(kinds: Sequence[str]) -> str:
    """Statement-loop chunk kernel for runs containing peek/map_multi."""
    lines = [
        "def _chunk_kernel(_chunk):",
        "    _out = []",
        "    _append = _out.append",
        "    for _v0 in _chunk:",
    ]
    indent = "        "
    var = "_v0"
    for i, kind in enumerate(kinds):
        if kind == "map":
            lines.append(f"{indent}_v{i + 1} = _f{i}({var})")
            var = f"_v{i + 1}"
        elif kind == "peek":
            lines.append(f"{indent}_f{i}({var})")
        elif kind == "filter":
            lines.append(f"{indent}if not _f{i}({var}):")
            lines.append(f"{indent}    continue")
        elif kind == "flat_map":
            lines.append(f"{indent}for _v{i + 1} in _f{i}({var}):")
            indent += "    "
            var = f"_v{i + 1}"
        else:  # map_multi
            lines.append(f"{indent}_b{i} = []")
            lines.append(f"{indent}_f{i}({var}, _b{i}.append)")
            lines.append(f"{indent}for _v{i + 1} in _b{i}:")
            indent += "    "
            var = f"_v{i + 1}"
    lines.append(f"{indent}_append({var})")
    lines.append("    return _out")
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# The fused op
# --------------------------------------------------------------------------- #


class FusedOp(Op):
    """A run of adjacent stateless ops collapsed into one pipeline stage.

    Supports both traversal modes: per-element ``accept`` runs the
    compiled straight-line kernel (one sink dispatch for the whole run),
    and ``accept_chunk`` crosses the run in a single generated pass.  A
    leading sequence of numpy-ufunc maps is applied vectorized when the
    chunk is an ndarray, matching the unfused ``MapOp`` chunk rewrite.
    """

    chunkable = True

    __slots__ = (
        "source_ops", "kinds", "_element_kernel", "_chunk_kernel",
        "_ufunc_prefix", "_tail_kernel", "_size_preserving",
    )

    def __init__(self, source_ops: Sequence[Op]) -> None:
        if len(source_ops) < MIN_RUN:
            raise ValueError("FusedOp needs at least two source ops")
        self.source_ops = tuple(source_ops)
        self.kinds = tuple(_stage_kind(op) for op in self.source_ops)
        fns = [_stage_fn(op) for op in self.source_ops]
        name = ",".join(self.kinds)

        self._element_kernel = _bind(
            _gen_element_kernel(self.kinds), "_element", fns
        )
        if any(k in ("peek", "map_multi") for k in self.kinds):
            chunk_src = _gen_chunk_loop(self.kinds)
        else:
            chunk_src = _gen_chunk_comprehension(self.kinds)
        self._chunk_kernel = _bind(chunk_src, "_chunk_kernel", fns)

        # Vectorized prefix: the longest leading run of ufunc maps.  On an
        # ndarray chunk those apply as chained array ops; the compiled
        # kernel for the remaining tail (if any) handles the rest.
        n_ufunc = 0
        if _np is not None:
            for op in self.source_ops:
                if type(op) is MapOp and isinstance(op.f, _np.ufunc):
                    n_ufunc += 1
                else:
                    break
        self._ufunc_prefix = tuple(fns[:n_ufunc])
        if 0 < n_ufunc < len(self.kinds):
            tail_kinds = self.kinds[n_ufunc:]
            if any(k in ("peek", "map_multi") for k in tail_kinds):
                tail_src = _gen_chunk_loop(tail_kinds)
            else:
                tail_src = _gen_chunk_comprehension(tail_kinds)
            self._tail_kernel = _bind(tail_src, "_chunk_kernel", fns[n_ufunc:])
        else:
            self._tail_kernel = None

        self._size_preserving = all(
            k in ("map", "peek") for k in self.kinds
        )

    def __repr__(self) -> str:
        return f"FusedOp({' | '.join(self.kinds)})"

    def describe(self) -> dict:
        """Kernel-shape summary for ``Stream.explain()`` / tooling."""
        return {
            "stages": list(self.kinds),
            "kernel": (
                "loop"
                if any(k in ("peek", "map_multi") for k in self.kinds)
                else "comprehension"
            ),
            "ufunc_prefix": len(self._ufunc_prefix),
            "size_preserving": self._size_preserving,
        }

    def wrap_sink(self, downstream: Sink) -> Sink:
        element_kernel = self._element_kernel
        chunk_kernel = self._chunk_kernel
        ufunc_prefix = self._ufunc_prefix
        tail_kernel = self._tail_kernel
        size_preserving = self._size_preserving
        down_accept = downstream.accept
        down_accept_chunk = downstream.accept_chunk
        down_cancelled = downstream.cancellation_requested

        class _FusedSink(ChainedSink):
            def begin(self, size):
                self.downstream.begin(size if size_preserving else -1)

            def accept(self, item):
                element_kernel(item, down_accept, down_cancelled)

            def accept_chunk(self, chunk):
                if ufunc_prefix and isinstance(chunk, _np.ndarray):
                    for ufunc in ufunc_prefix:
                        chunk = ufunc(chunk)
                    if tail_kernel is not None:
                        chunk = tail_kernel(chunk)
                else:
                    chunk = chunk_kernel(chunk)
                down_accept_chunk(chunk)

        return _FusedSink(downstream)


# --------------------------------------------------------------------------- #
# The rewrite
# --------------------------------------------------------------------------- #


def fuse_ops(ops: list[Op]) -> tuple[list[Op], int]:
    """Collapse every maximal run of >= MIN_RUN adjacent stateless ops.

    Returns ``(rewritten_ops, stages_fused)`` — the original list object
    is returned (with 0) when nothing fuses.  Stateful and unknown ops are
    barriers and pass through unchanged; already-:class:`FusedOp` stages
    are barriers too, making the rewrite idempotent.
    """
    out: list[Op] = []
    run: list[Op] = []
    fused_stages = 0

    def flush() -> None:
        nonlocal fused_stages
        if len(run) >= MIN_RUN:
            out.append(FusedOp(run))
            fused_stages += len(run)
        else:
            out.extend(run)
        run.clear()

    for op in ops:
        if type(op) in _FUSIBLE_TYPES:
            run.append(op)
        else:
            flush()
            out.append(op)
    flush()
    if fused_stages == 0:
        return ops, 0
    return out, fused_stages


# --------------------------------------------------------------------------- #
# Controls, stats, memo
# --------------------------------------------------------------------------- #

_fusion_enabled = True
_fusion_stats = {
    "pipelines_fused": 0,   # pipelines rewritten (>= one run collapsed)
    "stages_fused": 0,      # source stages collapsed into FusedOps
    "kernels": 0,           # FusedOp instances created
    "unfused": 0,           # scans that found nothing to collapse
    "memo_hits": 0,         # rewrites answered from the memo
}

#: Identity-keyed memo: parallel terminals hand the *same* ops list to
#: every fork/join leaf, so the rewrite (and kernel compilation) happens
#: once per terminal, not once per leaf.  Values keep strong references
#: to the source ops, so a live entry's ids cannot be recycled.
_MEMO_CAPACITY = 128
_memo: dict[tuple[int, ...], tuple[tuple[Op, ...], list[Op]]] = {}
_memo_lock = threading.Lock()


def fusion_enabled() -> bool:
    """True when terminal evaluation rewrites op chains through the fuser."""
    return _fusion_enabled


def set_fusion(enabled: bool) -> bool:
    """Globally enable/disable stage fusion; returns the previous setting.

    Mirrors :func:`repro.streams.ops.set_bulk_execution` — exists for
    benchmarks and parity tests; fusion is otherwise automatic.
    """
    global _fusion_enabled
    previous = _fusion_enabled
    _fusion_enabled = bool(enabled)
    return previous


@contextmanager
def fusion(enabled: bool):
    """Context manager scoping :func:`set_fusion`."""
    previous = set_fusion(enabled)
    try:
        yield
    finally:
        set_fusion(previous)


def fusion_stats(reset: bool = False) -> dict[str, int]:
    """Counts of fusion activity (advisory; pinned by tests and benches)."""
    snapshot = dict(_fusion_stats)
    if reset:
        for key in _fusion_stats:
            _fusion_stats[key] = 0
    return snapshot


def maybe_fuse(ops: list[Op]) -> list[Op]:
    """The terminal-time entry point: rewrite ``ops`` if fusion is enabled.

    Memoized by the identity of the op objects; a rewritten list is also
    memoized to itself, so fork/join leaves re-entering
    ``run_pipeline`` with an already-fused chain resolve in one lookup.
    Emits a ``fuse`` span per actual rewrite when tracing is enabled.
    """
    if not _fusion_enabled or not ops:
        return ops
    key = tuple(map(id, ops))
    entry = _memo.get(key)
    if entry is not None and all(
        a is b for a, b in zip(entry[0], ops)
    ):
        _fusion_stats["memo_hits"] += 1
        return entry[1]

    start = time.perf_counter_ns()
    fused, stages = fuse_ops(ops)
    if stages == 0:
        _fusion_stats["unfused"] += 1
        return ops
    kernels = sum(1 for op in fused if isinstance(op, FusedOp))
    _fusion_stats["pipelines_fused"] += 1
    _fusion_stats["stages_fused"] += stages
    _fusion_stats["kernels"] += kernels

    with _memo_lock:
        if len(_memo) >= _MEMO_CAPACITY:
            _memo.clear()  # tiny, regenerable cache: wholesale reset is fine
        _memo[key] = (tuple(ops), fused)
        # Idempotence fast path for leaves re-submitting the fused list.
        _memo[tuple(map(id, fused))] = (tuple(fused), fused)

    tracer = current_tracer()
    if tracer.enabled:
        tracer.emit(
            "fuse",
            worker=EXTERNAL_WORKER,
            start_ns=start,
            end_ns=time.perf_counter_ns(),
            stages=stages,
            kernels=kernels,
        )
    return fused
