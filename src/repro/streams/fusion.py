"""Pipeline stage fusion: collapse runs of adjacent stateless ops.

The sink-chain design (one ``Op`` → one ``Sink`` per stage) is faithful to
Java but pays one Python dispatch *per stage* per element — and, on the
chunked bulk path, one intermediate list *per stage* per chunk.  That
per-stage dispatch is exactly the cost "Stream Fusion, to Completeness"
(Kiselyov et al.) and the ``mapMulti``-fusion line of work identify as the
dominant overhead of streaming APIs.

This module rewrites the op chain once, at terminal time (before mode
selection in :func:`repro.streams.ops.run_pipeline`): every maximal run of
adjacent *fusible* ops (``map`` / ``filter`` / ``peek`` / ``flat_map`` /
``map_multi`` / ``limit`` / ``skip`` / ``distinct``) collapses into a
single :class:`FusedOp` whose kernels are **generated and compiled** from
the run (see :func:`_kernel_class` for the kernel taxonomy):

* the per-element kernel emits straight-line code — nested calls, an
  early-out per filter, a loop per expander, budget guards per counted
  stage — so one sink dispatch covers the whole run;
* the chunk kernel emits one comprehension (or one statement loop when the
  run contains ``peek`` / ``map_multi`` / stateful stages) that crosses
  the run in a single pass, with **zero** intermediate per-stage lists —
  stacking with the bulk-execution path of PR 2 instead of bypassing it;
* counted ops (``limit``/``skip``) compile to *counted kernels*:
  over a pure-map run they hoist to one source-index window sliced off
  each chunk (``counted-window``); in a general run a statement loop cuts
  at the exact element (``counted-loop``).  Either way the fused sink
  reports exhaustion via ``cancellation_requested``, so short-circuit
  chains ride the chunked path end to end;
* a prefix of numpy-ufunc maps applied to an ndarray chunk stays
  vectorized; when the run is ufunc-only end to end it compiles to a
  single whole-array numpy expression (``whole-array``).

Fusion is semantics-preserving by construction:

* the stateful ops without a kernel form (``sorted``, ``take_while``,
  ``drop_while``) are **fusion barriers** — runs never cross them;
* encounter order is preserved (stages compose in pipeline order);
* short-circuiting still works: the fused kernel polls the downstream
  ``cancellation_requested`` between the outputs of an expander, exactly
  where the unfused ``FlatMapSink`` polls, so ``flat_map`` over an
  infinite iterable under ``limit`` still terminates;
* ``begin(size)`` forwards the size through the run's size algebra
  (identity for ``map``/``peek``, clamped by ``limit``/``skip``, unknown
  past ``filter``/expanders/``distinct``), mirroring the unfused chain;
* per-traversal kernel state (budgets, seen-sets) is created in the
  sink's ``begin``, so one compiled ``FusedOp`` is shared safely across
  fork/join leaves.

Controls mirror the bulk-execution ones: :func:`set_fusion` /
:func:`fusion_enabled` / the :func:`fusion` context manager, and
:func:`fusion_stats` counts rewritten pipelines and collapsed stages.
Each rewrite emits a ``fuse`` span through :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from functools import lru_cache
from typing import Callable, Sequence

from repro.obs.tracer import EXTERNAL_WORKER, current_tracer
from repro.streams.ops import (
    ChainedSink,
    DistinctOp,
    FilterOp,
    FlatMapOp,
    LimitOp,
    MapMultiOp,
    MapOp,
    Op,
    PeekOp,
    Sink,
    SkipOp,
)

try:  # numpy is a hard dependency of the repo, but keep fusion importable
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Stage kinds a fused run may contain, in dispatch order.  Counted ops
#: (``limit``/``skip``) and ``distinct`` join runs since PR 10: their
#: per-traversal state lives in a kernel state vector created per sink, so
#: the compiled kernels stay shareable across fork/join leaves.
_FUSIBLE_TYPES = (
    MapOp, FilterOp, PeekOp, FlatMapOp, MapMultiOp,
    LimitOp, SkipOp, DistinctOp,
)

#: Counted ops force emission of a FusedOp even for a length-1 run: a lone
#: compiled ``limit`` rides the chunked path (window slicing + per-chunk
#: cancellation), which a raw ``LimitOp`` cannot.
_COUNTED_TYPES = (LimitOp, SkipOp)

#: Stage kinds that carry per-traversal kernel state.
_STATEFUL_KINDS = ("limit", "skip", "distinct")

#: Minimum run length worth collapsing — wrapping a single stateless op in
#: a ``FusedOp`` would only add indirection (counted runs are exempt).
MIN_RUN = 2


# --------------------------------------------------------------------------- #
# Kernel code generation
# --------------------------------------------------------------------------- #
#
# A fused run compiles to at most three functions:
#
#   element kernel   k(item, _accept, _cancelled)   — per-element path
#   chunk kernel     k(chunk) -> list               — bulk path
#   ufunc prefix     applied before the chunk kernel on ndarray chunks
#
# Sources depend only on the *shape* of the run (the sequence of stage
# kinds), so compiled code objects are cached by source; the stage
# callables are bound per-``FusedOp`` through the exec namespace.


def _stage_kind(op: Op) -> str:
    if type(op) is MapOp:
        return "map"
    if type(op) is FilterOp:
        return "filter"
    if type(op) is PeekOp:
        return "peek"
    if type(op) is FlatMapOp:
        return "flat_map"
    if type(op) is MapMultiOp:
        return "map_multi"
    if type(op) is LimitOp:
        return "limit"
    if type(op) is SkipOp:
        return "skip"
    if type(op) is DistinctOp:
        return "distinct"
    raise AssertionError(f"not a fusible op: {type(op).__name__}")


def _stage_fn(op: Op) -> Callable | None:
    """The stage callable bound into the kernel namespace (None for the
    stateful kinds, whose parameters live in the kernel state vector)."""
    if type(op) is PeekOp:
        return op.action
    if type(op) is FilterOp:
        return op.predicate
    if type(op) in (LimitOp, SkipOp, DistinctOp):
        return None
    return op.f


def _state_slots(kinds: Sequence[str]) -> dict[int, int]:
    """Map stage index -> state-vector slot for the stateful kinds."""
    slots: dict[int, int] = {}
    for i, kind in enumerate(kinds):
        if kind in _STATEFUL_KINDS:
            slots[i] = len(slots)
    return slots


@lru_cache(maxsize=256)
def _compiled(source: str, name: str):
    """Compile generated kernel source once per run shape."""
    return compile(source, f"<fused:{name}>", "exec")


def _bind(source: str, name: str, fns: Sequence[Callable | None]) -> Callable:
    """Exec a cached code object with this run's stage callables bound."""
    namespace = {
        f"_f{i}": fn for i, fn in enumerate(fns) if fn is not None
    }
    exec(_compiled(source, name), namespace)
    return namespace[name]


def _gen_element_kernel(kinds: Sequence[str]) -> str:
    """Straight-line per-element kernel for the run.

    ``map``/``peek``/``filter`` compile to assignments and early-outs; an
    expander (``flat_map`` / ``map_multi``) opens a loop over its outputs,
    polling ``_cancelled()`` before each downstream emission exactly as
    the unfused ``FlatMapSink`` does.  Stateful stages read/write the
    per-traversal ``_state`` vector: ``limit`` decrements its budget,
    ``skip`` drops while its counter lasts, ``distinct`` keeps a seen-set.
    A limit exhausted before the element enters drops it (as
    ``_LimitSink.accept`` would); a limit downstream of an expander cuts
    the expansion at the exact output the unfused chain would, via the
    per-output budget guard.
    """
    slots = _state_slots(kinds)
    limit_slots = [slots[i] for i, k in enumerate(kinds) if k == "limit"]
    lines = ["def _element(_v0, _accept, _cancelled, _state):"]
    indent = "    "
    var, expanded = "_v0", False
    for j in limit_slots:
        lines.append(f"{indent}if _state[{j}] <= 0:")
        lines.append(f"{indent}    return")
    for i, kind in enumerate(kinds):
        if kind == "map":
            lines.append(f"{indent}_v{i + 1} = _f{i}({var})")
            var = f"_v{i + 1}"
        elif kind == "peek":
            lines.append(f"{indent}_f{i}({var})")
        elif kind == "filter":
            lines.append(f"{indent}if not _f{i}({var}):")
            lines.append(f"{indent}    return" if not expanded
                         else f"{indent}    continue")
        elif kind == "limit":
            lines.append(f"{indent}_state[{slots[i]}] -= 1")
        elif kind == "skip":
            j = slots[i]
            lines.append(f"{indent}if _state[{j}] > 0:")
            lines.append(f"{indent}    _state[{j}] -= 1")
            lines.append(f"{indent}    return" if not expanded
                         else f"{indent}    continue")
        elif kind == "distinct":
            j = slots[i]
            lines.append(f"{indent}if {var} in _state[{j}]:")
            lines.append(f"{indent}    return" if not expanded
                         else f"{indent}    continue")
            lines.append(f"{indent}_state[{j}].add({var})")
        elif kind == "flat_map":
            lines.append(f"{indent}for _v{i + 1} in _f{i}({var}):")
            lines.append(f"{indent}    if _cancelled():")
            lines.append(f"{indent}        break")
            # Only limits *downstream* of this expander can exhaust
            # mid-expansion; an upstream limit already admitted the
            # element and must not clip its outputs.
            for k_i, k in enumerate(kinds):
                if k == "limit" and k_i > i:
                    lines.append(f"{indent}    if _state[{slots[k_i]}] <= 0:")
                    lines.append(f"{indent}        break")
            indent += "    "
            var, expanded = f"_v{i + 1}", True
        else:  # map_multi: buffer the callback-driven outputs, then loop
            lines.append(f"{indent}_b{i} = []")
            lines.append(f"{indent}_f{i}({var}, _b{i}.append)")
            lines.append(f"{indent}for _v{i + 1} in _b{i}:")
            lines.append(f"{indent}    if _cancelled():")
            lines.append(f"{indent}        break")
            for k_i, k in enumerate(kinds):
                if k == "limit" and k_i > i:
                    lines.append(f"{indent}    if _state[{slots[k_i]}] <= 0:")
                    lines.append(f"{indent}        break")
            indent += "    "
            var, expanded = f"_v{i + 1}", True
    lines.append(f"{indent}_accept({var})")
    return "\n".join(lines)


def _gen_chunk_comprehension(kinds: Sequence[str]) -> str:
    """Single-pass comprehension kernel (runs without peek/map_multi).

    ``map`` stages nest as calls inside the output expression, ``filter``
    stages become ``if`` clauses (binding the value so far via ``:=`` when
    it is not yet a bare name), ``flat_map`` stages become nested ``for``
    clauses — one list, zero per-stage intermediates.
    """
    clauses = ["for _v0 in _chunk"]
    expr = "_v0"
    for i, kind in enumerate(kinds):
        if kind == "map":
            expr = f"_f{i}({expr})"
        elif kind == "filter":
            if expr.startswith("_v") and expr[2:].isdigit():
                clauses.append(f"if _f{i}({expr})")
            else:
                clauses.append(f"if _f{i}((_v{i + 1} := {expr}))")
                expr = f"_v{i + 1}"
        else:  # flat_map
            clauses.append(f"for _v{i + 1} in _f{i}({expr})")
            expr = f"_v{i + 1}"
    body = f"[{expr} {' '.join(clauses)}]"
    return f"def _chunk_kernel(_chunk):\n    return {body}"


def _gen_chunk_loop(kinds: Sequence[str]) -> str:
    """Statement-loop chunk kernel for runs containing peek/map_multi or
    stateful stages.

    Stateful runs take a ``_state`` vector parameter; a ``limit`` cuts the
    chunk at the exact element via ``return _out`` — from the per-element
    guard between source elements, or the per-output guard inside an
    expander — so the emitted prefix matches the unfused per-element path
    element for element.
    """
    slots = _state_slots(kinds)
    limit_slots = [slots[i] for i, k in enumerate(kinds) if k == "limit"]
    head = (
        "def _chunk_kernel(_chunk, _state):" if slots
        else "def _chunk_kernel(_chunk):"
    )
    lines = [
        head,
        "    _out = []",
        "    _append = _out.append",
        "    for _v0 in _chunk:",
    ]
    indent = "        "
    var = "_v0"
    for j in limit_slots:
        lines.append(f"{indent}if _state[{j}] <= 0:")
        lines.append(f"{indent}    return _out")
    for i, kind in enumerate(kinds):
        if kind == "map":
            lines.append(f"{indent}_v{i + 1} = _f{i}({var})")
            var = f"_v{i + 1}"
        elif kind == "peek":
            lines.append(f"{indent}_f{i}({var})")
        elif kind == "filter":
            lines.append(f"{indent}if not _f{i}({var}):")
            lines.append(f"{indent}    continue")
        elif kind == "limit":
            lines.append(f"{indent}_state[{slots[i]}] -= 1")
        elif kind == "skip":
            j = slots[i]
            lines.append(f"{indent}if _state[{j}] > 0:")
            lines.append(f"{indent}    _state[{j}] -= 1")
            lines.append(f"{indent}    continue")
        elif kind == "distinct":
            j = slots[i]
            lines.append(f"{indent}if {var} in _state[{j}]:")
            lines.append(f"{indent}    continue")
            lines.append(f"{indent}_state[{j}].add({var})")
        elif kind == "flat_map":
            lines.append(f"{indent}for _v{i + 1} in _f{i}({var}):")
            for k_i, k in enumerate(kinds):
                if k == "limit" and k_i > i:
                    lines.append(f"{indent}    if _state[{slots[k_i]}] <= 0:")
                    lines.append(f"{indent}        return _out")
            indent += "    "
            var = f"_v{i + 1}"
        else:  # map_multi
            lines.append(f"{indent}_b{i} = []")
            lines.append(f"{indent}_f{i}({var}, _b{i}.append)")
            lines.append(f"{indent}for _v{i + 1} in _b{i}:")
            for k_i, k in enumerate(kinds):
                if k == "limit" and k_i > i:
                    lines.append(f"{indent}    if _state[{slots[k_i]}] <= 0:")
                    lines.append(f"{indent}        return _out")
            indent += "    "
            var = f"_v{i + 1}"
    lines.append(f"{indent}_append({var})")
    lines.append("    return _out")
    return "\n".join(lines)


def _gen_whole_array(n: int) -> str:
    """Single-expression kernel composing ``n`` ufunc maps over one ndarray
    chunk — the whole run is one numpy call chain, no Python tail."""
    expr = "_chunk"
    for i in range(n):
        expr = f"_f{i}({expr})"
    return f"def _whole_array(_chunk):\n    return {expr}"


# --------------------------------------------------------------------------- #
# The fused op
# --------------------------------------------------------------------------- #


def _kernel_class(kinds: Sequence[str], fns: Sequence[Callable | None]) -> str:
    """The kernel-class decision — the single function behind both
    execution dispatch (``FusedOp.wrap_sink``) and ``describe()`` /
    ``Stream.explain()``, so plans can never drift from what runs.

    * ``counted-window`` — limit/skip over a pure-map run: the counted ops
      hoist to one source-index window sliced off each chunk;
    * ``counted-loop`` — limit/skip in a general run: a statement loop
      with exact budget cuts;
    * ``stateful-loop`` — ``distinct`` (seen-set state) without counting;
    * ``whole-array`` — ufunc-only maps end to end: one compiled numpy
      expression per ndarray chunk;
    * ``loop`` / ``comprehension`` — the stateless kernels of PR 5.
    """
    if any(k in ("limit", "skip") for k in kinds):
        if all(k in ("map", "limit", "skip") for k in kinds):
            return "counted-window"
        return "counted-loop"
    if "distinct" in kinds:
        return "stateful-loop"
    if (
        _np is not None
        and kinds
        and all(k == "map" for k in kinds)
        and all(isinstance(f, _np.ufunc) for f in fns)
    ):
        return "whole-array"
    if any(k in ("peek", "map_multi") for k in kinds):
        return "loop"
    return "comprehension"


class FusedOp(Op):
    """A run of adjacent fusible ops collapsed into one pipeline stage.

    Supports both traversal modes: per-element ``accept`` runs the
    compiled straight-line kernel (one sink dispatch for the whole run),
    and ``accept_chunk`` crosses the run in a single generated pass.  The
    kernel class (see :func:`_kernel_class`) is decided once at
    construction; counted runs carry their limit/skip budgets in a
    per-traversal state vector created in ``begin``, so one ``FusedOp``
    instance is safely shared across fork/join leaves.
    """

    chunkable = True
    # Counted kernels slice their chunks at the exact cut and surface
    # exhaustion via ``cancellation_requested`` — the per-chunk poll of
    # ``copy_into_chunked`` suffices, so ``select_mode`` may keep a
    # short-circuiting pipeline on the chunked path.
    absorbs_short_circuit = True

    __slots__ = (
        "source_ops", "kinds", "kernel_class", "short_circuit",
        "_element_kernel", "_chunk_kernel", "_ufunc_prefix", "_tail_kernel",
        "_whole_kernel", "_window", "_window_kernel", "_state_spec",
        "_limit_slots", "_size_preserving",
    )

    def __init__(self, source_ops: Sequence[Op]) -> None:
        if not source_ops:
            raise ValueError("FusedOp needs at least one source op")
        self.source_ops = tuple(source_ops)
        self.kinds = tuple(_stage_kind(op) for op in self.source_ops)
        fns = [_stage_fn(op) for op in self.source_ops]
        self.kernel_class = _kernel_class(self.kinds, fns)

        state_spec = []
        for op, kind in zip(self.source_ops, self.kinds):
            if kind in ("limit", "skip"):
                state_spec.append((kind, op.n))
            elif kind == "distinct":
                state_spec.append((kind, 0))
        self._state_spec = tuple(state_spec)
        slots = _state_slots(self.kinds)
        self._limit_slots = tuple(
            slots[i] for i, k in enumerate(self.kinds) if k == "limit"
        )
        self.short_circuit = bool(self._limit_slots)
        self._size_preserving = all(
            k in ("map", "peek") for k in self.kinds
        )
        self._element_kernel = _bind(
            _gen_element_kernel(self.kinds), "_element", fns
        )

        self._chunk_kernel = None
        self._ufunc_prefix: tuple = ()
        self._tail_kernel = None
        self._whole_kernel = None
        self._window = None
        self._window_kernel = None

        kc = self.kernel_class
        if kc == "counted-window":
            # Every map is 1:1, so the counted ops compose to one
            # source-index window [lo, hi): skip(n) advances lo, limit(n)
            # clamps hi — the chunk path slices this window off each chunk
            # and only then applies the map kernel.
            lo, hi = 0, None
            for op, kind in zip(self.source_ops, self.kinds):
                if kind == "skip":
                    lo += op.n
                    if hi is not None and lo > hi:
                        lo = hi
                elif kind == "limit":
                    hi = lo + op.n if hi is None else min(hi, lo + op.n)
            self._window = (lo, hi)
            map_fns = [f for f in fns if f is not None]
            if map_fns:
                self._window_kernel = _bind(
                    _gen_chunk_comprehension(("map",) * len(map_fns)),
                    "_chunk_kernel", map_fns,
                )
                if _np is not None and all(
                    isinstance(f, _np.ufunc) for f in map_fns
                ):
                    self._whole_kernel = _bind(
                        _gen_whole_array(len(map_fns)),
                        "_whole_array", map_fns,
                    )
                    self._ufunc_prefix = tuple(map_fns)
        elif kc in ("counted-loop", "stateful-loop"):
            self._chunk_kernel = _bind(
                _gen_chunk_loop(self.kinds), "_chunk_kernel", fns
            )
        else:
            if kc == "loop":
                chunk_src = _gen_chunk_loop(self.kinds)
            else:
                chunk_src = _gen_chunk_comprehension(self.kinds)
            self._chunk_kernel = _bind(chunk_src, "_chunk_kernel", fns)

            # Vectorized prefix: the longest leading run of ufunc maps.
            # On an ndarray chunk those apply as chained array ops; the
            # compiled kernel for the remaining tail (if any) handles the
            # rest.  When the prefix covers the whole run the composition
            # compiles to a single whole-array expression.
            n_ufunc = 0
            if _np is not None:
                for op in self.source_ops:
                    if type(op) is MapOp and isinstance(op.f, _np.ufunc):
                        n_ufunc += 1
                    else:
                        break
            self._ufunc_prefix = tuple(fns[:n_ufunc])
            if kc == "whole-array":
                self._whole_kernel = _bind(
                    _gen_whole_array(len(fns)), "_whole_array", fns
                )
            elif 0 < n_ufunc < len(self.kinds):
                tail_kinds = self.kinds[n_ufunc:]
                if any(k in ("peek", "map_multi") for k in tail_kinds):
                    tail_src = _gen_chunk_loop(tail_kinds)
                else:
                    tail_src = _gen_chunk_comprehension(tail_kinds)
                self._tail_kernel = _bind(
                    tail_src, "_chunk_kernel", fns[n_ufunc:]
                )

    def __repr__(self) -> str:
        return f"FusedOp({' | '.join(self.kinds)})"

    def _make_state(self) -> list:
        """A fresh per-traversal state vector (one slot per stateful
        stage: remaining budget for limit/skip, seen-set for distinct)."""
        return [
            set() if kind == "distinct" else n
            for kind, n in self._state_spec
        ]

    def _project_size(self, size: int) -> int:
        """Forward ``begin(size)`` through the run's size algebra."""
        if size < 0:
            return -1
        it = iter(self._state_spec)
        for kind in self.kinds:
            if kind in ("map", "peek"):
                continue
            if kind == "limit":
                size = min(size, next(it)[1])
            elif kind == "skip":
                size = max(size - next(it)[1], 0)
            else:
                return -1
        return size

    def describe(self) -> dict:
        """Kernel-shape summary for ``Stream.explain()`` / tooling.

        ``kernel`` is :attr:`kernel_class` — the very value execution
        dispatches on, not a re-derivation.
        """
        out = {
            "stages": list(self.kinds),
            "kernel": self.kernel_class,
            "ufunc_prefix": len(self._ufunc_prefix),
            "size_preserving": self._size_preserving,
        }
        if self._window is not None:
            out["window"] = [self._window[0], self._window[1]]
        return out

    def wrap_sink(self, downstream: Sink) -> Sink:
        element_kernel = self._element_kernel
        down_accept = downstream.accept
        down_accept_chunk = downstream.accept_chunk
        down_cancelled = downstream.cancellation_requested

        if not self._state_spec:
            chunk_kernel = self._chunk_kernel
            ufunc_prefix = self._ufunc_prefix
            tail_kernel = self._tail_kernel
            whole_kernel = self._whole_kernel
            size_preserving = self._size_preserving

            class _FusedSink(ChainedSink):
                def begin(self, size):
                    self.downstream.begin(size if size_preserving else -1)

                def accept(self, item):
                    element_kernel(item, down_accept, down_cancelled, None)

                def accept_chunk(self, chunk):
                    if ufunc_prefix and isinstance(chunk, _np.ndarray):
                        if whole_kernel is not None:
                            down_accept_chunk(whole_kernel(chunk))
                            return
                        for ufunc in ufunc_prefix:
                            chunk = ufunc(chunk)
                        if tail_kernel is not None:
                            chunk = tail_kernel(chunk)
                        down_accept_chunk(chunk)
                        return
                    down_accept_chunk(chunk_kernel(chunk))

            return _FusedSink(downstream)

        make_state = self._make_state
        limit_slots = self._limit_slots
        project = self._project_size

        if self._window is not None:
            wlo, whi = self._window
            window_kernel = self._window_kernel
            whole_kernel = self._whole_kernel

            class _CountedWindowSink(ChainedSink):
                def __init__(self, downstream):
                    super().__init__(downstream)
                    self._pos = 0
                    self._state = make_state()

                def begin(self, size):
                    self._pos = 0
                    self._state = make_state()
                    self.downstream.begin(project(size))

                def accept(self, item):
                    element_kernel(
                        item, down_accept, down_cancelled, self._state
                    )

                def accept_chunk(self, chunk):
                    pos = self._pos
                    ln = len(chunk)
                    self._pos = pos + ln
                    lo = wlo - pos
                    if lo < 0:
                        lo = 0
                    hi = ln if whi is None else whi - pos
                    if hi > ln:
                        hi = ln
                    if lo >= hi:
                        return
                    if lo > 0 or hi < ln:
                        # ndarray/range slices are views — the window cut
                        # costs O(1), and the map kernel only ever touches
                        # elements inside the window.
                        chunk = chunk[lo:hi]
                    if whole_kernel is not None and isinstance(
                        chunk, _np.ndarray
                    ):
                        chunk = whole_kernel(chunk)
                    elif window_kernel is not None:
                        chunk = window_kernel(chunk)
                    down_accept_chunk(chunk)

                def cancellation_requested(self):
                    if whi is not None and self._pos >= whi:
                        return True
                    state = self._state
                    for j in limit_slots:
                        if state[j] <= 0:
                            return True
                    return down_cancelled()

            return _CountedWindowSink(downstream)

        chunk_kernel = self._chunk_kernel

        class _StatefulFusedSink(ChainedSink):
            def __init__(self, downstream):
                super().__init__(downstream)
                self._state = make_state()

            def begin(self, size):
                self._state = make_state()
                self.downstream.begin(project(size))

            def accept(self, item):
                element_kernel(
                    item, down_accept, down_cancelled, self._state
                )

            def accept_chunk(self, chunk):
                down_accept_chunk(chunk_kernel(chunk, self._state))

            def cancellation_requested(self):
                state = self._state
                for j in limit_slots:
                    if state[j] <= 0:
                        return True
                return down_cancelled()

        return _StatefulFusedSink(downstream)


# --------------------------------------------------------------------------- #
# The rewrite
# --------------------------------------------------------------------------- #


def fuse_ops(ops: list[Op]) -> tuple[list[Op], int]:
    """Collapse every maximal run of adjacent fusible ops.

    A run is emitted as a :class:`FusedOp` when it has >= MIN_RUN stages,
    or when it contains a counted op (``limit``/``skip``) — compiling even
    a lone ``limit`` moves the pipeline from per-element polling to the
    chunked counted kernel.  Returns ``(rewritten_ops, stages_fused)`` —
    the original list object is returned (with 0) when nothing fuses.
    Remaining stateful kinds (``sorted``, ``take_while``, ``drop_while``)
    and unknown ops are barriers and pass through unchanged;
    already-:class:`FusedOp` stages are barriers too, making the rewrite
    idempotent.
    """
    out: list[Op] = []
    run: list[Op] = []
    fused_stages = 0

    def flush() -> None:
        nonlocal fused_stages
        if len(run) >= MIN_RUN or any(
            type(op) in _COUNTED_TYPES for op in run
        ):
            out.append(FusedOp(run))
            fused_stages += len(run)
        else:
            out.extend(run)
        run.clear()

    for op in ops:
        if type(op) in _FUSIBLE_TYPES:
            run.append(op)
        else:
            flush()
            out.append(op)
    flush()
    if fused_stages == 0:
        return ops, 0
    return out, fused_stages


# --------------------------------------------------------------------------- #
# Controls, stats, memo
# --------------------------------------------------------------------------- #

_fusion_enabled = True
_fusion_stats = {
    "pipelines_fused": 0,   # pipelines rewritten (>= one run collapsed)
    "stages_fused": 0,      # source stages collapsed into FusedOps
    "kernels": 0,           # FusedOp instances created
    "unfused": 0,           # scans that found nothing to collapse
    "memo_hits": 0,         # rewrites answered from the memo
}

#: Identity-keyed memo: parallel terminals hand the *same* ops list to
#: every fork/join leaf, so the rewrite (and kernel compilation) happens
#: once per terminal, not once per leaf.  Values keep strong references
#: to the source ops, so a live entry's ids cannot be recycled.
_MEMO_CAPACITY = 128
_memo: dict[tuple[int, ...], tuple[tuple[Op, ...], list[Op]]] = {}
_memo_lock = threading.Lock()


def fusion_enabled() -> bool:
    """True when terminal evaluation rewrites op chains through the fuser."""
    return _fusion_enabled


def set_fusion(enabled: bool) -> bool:
    """Globally enable/disable stage fusion; returns the previous setting.

    Mirrors :func:`repro.streams.ops.set_bulk_execution` — exists for
    benchmarks and parity tests; fusion is otherwise automatic.
    """
    global _fusion_enabled
    previous = _fusion_enabled
    _fusion_enabled = bool(enabled)
    return previous


@contextmanager
def fusion(enabled: bool):
    """Context manager scoping :func:`set_fusion`."""
    previous = set_fusion(enabled)
    try:
        yield
    finally:
        set_fusion(previous)


def fusion_stats(reset: bool = False) -> dict[str, int]:
    """Counts of fusion activity (advisory; pinned by tests and benches)."""
    snapshot = dict(_fusion_stats)
    if reset:
        for key in _fusion_stats:
            _fusion_stats[key] = 0
    return snapshot


def maybe_fuse(ops: list[Op]) -> list[Op]:
    """The terminal-time entry point: rewrite ``ops`` if fusion is enabled.

    Memoized by the identity of the op objects; a rewritten list is also
    memoized to itself, so fork/join leaves re-entering
    ``run_pipeline`` with an already-fused chain resolve in one lookup.
    Emits a ``fuse`` span per actual rewrite when tracing is enabled.
    """
    if not _fusion_enabled or not ops:
        return ops
    key = tuple(map(id, ops))
    entry = _memo.get(key)
    if entry is not None and all(
        a is b for a, b in zip(entry[0], ops)
    ):
        _fusion_stats["memo_hits"] += 1
        return entry[1]

    start = time.perf_counter_ns()
    fused, stages = fuse_ops(ops)
    if stages == 0:
        _fusion_stats["unfused"] += 1
        return ops
    kernels = sum(1 for op in fused if isinstance(op, FusedOp))
    _fusion_stats["pipelines_fused"] += 1
    _fusion_stats["stages_fused"] += stages
    _fusion_stats["kernels"] += kernels

    with _memo_lock:
        if len(_memo) >= _MEMO_CAPACITY:
            _memo.clear()  # tiny, regenerable cache: wholesale reset is fine
        _memo[key] = (tuple(ops), fused)
        # Idempotence fast path for leaves re-submitting the fused list.
        _memo[tuple(map(id, fused))] = (tuple(fused), fused)

    tracer = current_tracer()
    if tracer.enabled:
        tracer.emit(
            "fuse",
            worker=EXTERNAL_WORKER,
            start_ns=start,
            end_ns=time.perf_counter_ns(),
            stages=stages,
            kernels=kernels,
        )
    return fused
