"""A faithful port of ``java.util.Optional``.

Stream terminal operations such as ``reduce`` without identity, ``min``,
``max`` and ``find_first`` return an :class:`Optional` rather than None so
that "absent" and "present-but-None" are distinguishable, matching the Java
API the paper's examples use.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

from repro.common import IllegalStateError

T = TypeVar("T")
U = TypeVar("U")

_ABSENT = object()


class Optional(Generic[T]):
    """A container that either holds a value or is empty."""

    __slots__ = ("_value",)

    def __init__(self, value: object = _ABSENT) -> None:
        self._value = value

    @classmethod
    def of(cls, value: T) -> "Optional[T]":
        """An Optional holding ``value`` (which may itself be None)."""
        return cls(value)

    @classmethod
    def empty(cls) -> "Optional[T]":
        """The empty Optional."""
        return cls()

    def is_present(self) -> bool:
        """True iff a value is held."""
        return self._value is not _ABSENT

    def is_empty(self) -> bool:
        """True iff no value is held."""
        return self._value is _ABSENT

    def get(self) -> T:
        """The held value.

        Raises:
            IllegalStateError: if empty (Java throws
                ``NoSuchElementException``).
        """
        if self._value is _ABSENT:
            raise IllegalStateError("Optional.get() on empty Optional")
        return self._value  # type: ignore[return-value]

    def or_else(self, default: T) -> T:
        """The held value, or ``default`` when empty."""
        return self.get() if self.is_present() else default

    def or_else_get(self, supplier: Callable[[], T]) -> T:
        """The held value, or ``supplier()`` when empty."""
        return self.get() if self.is_present() else supplier()

    def map(self, f: Callable[[T], U]) -> "Optional[U]":
        """Apply ``f`` to the held value, if any."""
        if self.is_present():
            return Optional.of(f(self.get()))
        return Optional.empty()

    def filter(self, predicate: Callable[[T], bool]) -> "Optional[T]":
        """Keep the value only if it satisfies ``predicate``."""
        if self.is_present() and predicate(self.get()):
            return self
        return Optional.empty()

    def if_present(self, action: Callable[[T], None]) -> None:
        """Run ``action`` on the value, if any."""
        if self.is_present():
            action(self.get())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Optional):
            return self._value == other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Optional", None if self.is_empty() else self._value))

    def __bool__(self) -> bool:
        return self.is_present()

    def __repr__(self) -> str:
        if self.is_present():
            return f"Optional.of({self._value!r})"
        return "Optional.empty()"
