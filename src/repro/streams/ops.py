"""Pipeline stages and the fused sink chain.

Java streams fuse intermediate operations into a chain of ``Sink`` objects:
each stage wraps the downstream sink so that a single traversal of the
source pushes every element through the whole chain (``map`` → ``filter`` →
… → terminal) without intermediate collections.  We reproduce that design:

* :class:`Sink` — receiver protocol with ``begin``/``accept``/``end`` and
  short-circuit polling (``cancellation_requested``);
* :class:`Op` subclasses — one per intermediate operation, each able to
  wrap a downstream sink; *stateful* ops additionally expose
  ``apply_to_buffer`` used by parallel execution as a barrier.

Bulk execution (the paper's §V sublist observation, pushed through the
whole chain): when every stage of a non-short-circuiting pipeline is
*chunkable*, traversal switches from one Python call per element per
stage to one call per **chunk** per stage — ``map`` becomes a C-level
``map()``, ``filter`` a comprehension, ``to_list`` an ``extend``.  The
selection is automatic and semantics-preserving; stateful or
short-circuiting stages fall back to the per-element path.
"""

from __future__ import annotations

import abc
import functools
from contextlib import contextmanager
from typing import Any, Callable, Generic, Iterable, Sequence, TypeVar

from repro.common import IllegalArgumentError
from repro.obs.profile import current_profiler
from repro.streams.spliterator import Spliterator

try:  # numpy is a hard dependency of the repo, but keep ops importable without it
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

T = TypeVar("T")
U = TypeVar("U")


class Sink(Generic[T]):
    """Consumer of a stream stage's output.

    ``begin(size)`` announces the (possibly unknown, -1) number of elements
    to come; ``accept`` receives each element; ``end`` flushes; a True
    ``cancellation_requested`` asks upstream to stop sending (used by
    ``limit`` and the matching terminal ops).
    """

    def begin(self, size: int) -> None:
        """Prepare to receive up to ``size`` elements (-1 when unknown)."""

    def accept(self, item: T) -> None:
        """Receive one element."""

    def accept_chunk(self, chunk: Sequence[T]) -> None:
        """Receive a whole sublist in encounter order.

        The default loops over :meth:`accept`, so any sink is chunk-safe;
        chunk-aware stages override this with a bulk rewrite and forward a
        transformed chunk downstream in a single call.
        """
        accept = self.accept
        for item in chunk:
            accept(item)

    def end(self) -> None:
        """Flush after the last element."""

    def cancellation_requested(self) -> bool:
        """True when no further elements are wanted."""
        return False


class ChainedSink(Sink[T]):
    """A sink stage that forwards (possibly transformed) output downstream."""

    __slots__ = ("downstream",)

    def __init__(self, downstream: Sink) -> None:
        self.downstream = downstream

    def begin(self, size: int) -> None:
        self.downstream.begin(size)

    def end(self) -> None:
        self.downstream.end()

    def cancellation_requested(self) -> bool:
        return self.downstream.cancellation_requested()


class TerminalSink(Sink[T]):
    """A sink that also yields a result once traversal finishes."""

    def get(self) -> Any:
        """The terminal operation's result."""
        raise NotImplementedError


class Op(abc.ABC):
    """An intermediate operation (one pipeline stage)."""

    #: Stateful ops need the whole (prefix) result before emitting and act
    #: as barriers in parallel execution.
    stateful: bool = False
    #: Short-circuiting ops may stop the traversal early.
    short_circuit: bool = False
    #: Chunkable ops have a bulk ``accept_chunk`` rewrite; a pipeline whose
    #: stages are all chunkable (and none short-circuiting) is eligible for
    #: the chunked fast path.
    chunkable: bool = False
    #: Short-circuiting stages that manage their own cut point at chunk
    #: granularity (counted fused kernels: ``limit``/``skip`` compiled into
    #: a run).  ``select_mode`` lets a pipeline whose only short-circuit
    #: stages absorb their cut ride the chunked path — the per-chunk
    #: ``cancellation_requested`` poll of ``copy_into_chunked`` stops the
    #: traversal at the exact chunk the kernel cut.
    absorbs_short_circuit: bool = False

    @abc.abstractmethod
    def wrap_sink(self, downstream: Sink) -> Sink:
        """Fuse this op in front of ``downstream``."""

    def apply_to_buffer(self, buffer: list) -> list:
        """Barrier semantics for parallel execution (stateful ops only)."""
        raise NotImplementedError(f"{type(self).__name__} is stateless")


# --------------------------------------------------------------------------- #
# Stateless ops
# --------------------------------------------------------------------------- #


class MapOp(Op):
    """``map(f)`` — transform each element."""

    chunkable = True

    def __init__(self, f: Callable[[T], U]) -> None:
        self.f = f

    def wrap_sink(self, downstream: Sink) -> Sink:
        f = self.f
        # A numpy ufunc applied to an ndarray chunk is a single vectorized
        # call with per-element semantics; arbitrary callables are mapped
        # element-wise (C-level ``map``) so chunked results match the
        # per-element path exactly.
        is_ufunc = _np is not None and isinstance(f, _np.ufunc)

        class _MapSink(ChainedSink):
            def accept(self, item):
                self.downstream.accept(f(item))

            def accept_chunk(self, chunk):
                if is_ufunc and isinstance(chunk, _np.ndarray):
                    self.downstream.accept_chunk(f(chunk))
                else:
                    self.downstream.accept_chunk(list(map(f, chunk)))

        return _MapSink(downstream)


class FilterOp(Op):
    """``filter(predicate)`` — keep only matching elements."""

    chunkable = True

    def __init__(self, predicate: Callable[[T], bool]) -> None:
        self.predicate = predicate

    def wrap_sink(self, downstream: Sink) -> Sink:
        predicate = self.predicate

        class _FilterSink(ChainedSink):
            def begin(self, size):
                # Filtering invalidates any size promise.
                self.downstream.begin(-1)

            def accept(self, item):
                if predicate(item):
                    self.downstream.accept(item)

            def accept_chunk(self, chunk):
                self.downstream.accept_chunk([x for x in chunk if predicate(x)])

        return _FilterSink(downstream)


class FlatMapOp(Op):
    """``flat_map(f)`` — explode each element into an iterable of outputs."""

    chunkable = True

    def __init__(self, f: Callable[[T], Iterable[U]]) -> None:
        self.f = f

    def wrap_sink(self, downstream: Sink) -> Sink:
        f = self.f

        class _FlatMapSink(ChainedSink):
            def begin(self, size):
                self.downstream.begin(-1)

            def accept(self, item):
                down = self.downstream
                for out in f(item):
                    if down.cancellation_requested():
                        break
                    down.accept(out)

            def accept_chunk(self, chunk):
                # The chunked path never runs in a short-circuiting
                # pipeline, so the per-output cancellation poll of
                # ``accept`` is unnecessary here.
                out: list = []
                extend = out.extend
                for item in chunk:
                    extend(f(item))
                self.downstream.accept_chunk(out)

        return _FlatMapSink(downstream)


class PeekOp(Op):
    """``peek(action)`` — observe elements without changing them."""

    chunkable = True

    def __init__(self, action: Callable[[T], None]) -> None:
        self.action = action

    def wrap_sink(self, downstream: Sink) -> Sink:
        action = self.action

        class _PeekSink(ChainedSink):
            def accept(self, item):
                action(item)
                self.downstream.accept(item)

            def accept_chunk(self, chunk):
                for item in chunk:
                    action(item)
                self.downstream.accept_chunk(chunk)

        return _PeekSink(downstream)


class MapMultiOp(Op):
    """``map_multi(f)`` (Java 16): ``f(item, emit)`` pushes 0..n outputs.

    A consumer-driven flat map — cheaper than building an intermediate
    iterable when most elements expand to zero or one output.
    """

    chunkable = True

    def __init__(self, f: Callable[[T, Callable[[U], None]], None]) -> None:
        self.f = f

    def wrap_sink(self, downstream: Sink) -> Sink:
        f = self.f

        class _MapMultiSink(ChainedSink):
            def begin(self, size):
                self.downstream.begin(-1)

            def accept(self, item):
                f(item, self.downstream.accept)

            def accept_chunk(self, chunk):
                out: list = []
                emit = out.append
                for item in chunk:
                    f(item, emit)
                self.downstream.accept_chunk(out)

        return _MapMultiSink(downstream)


# --------------------------------------------------------------------------- #
# Stateful ops
# --------------------------------------------------------------------------- #


class SortedOp(Op):
    """``sorted(key=..., reverse=...)`` — emit elements in sorted order.

    Chunkable as a *terminal barrier with a fused prefix*: the buffering
    phase accepts whole chunks (one ``extend`` per chunk), so a stateless
    run feeding ``sorted`` still compiles and rides the bulk path; the
    ordered emission in ``end`` stays per-element with cancellation polls.
    """

    stateful = True
    chunkable = True

    def __init__(self, key: Callable[[T], Any] | None = None, reverse: bool = False) -> None:
        self.key = key
        self.reverse = reverse

    def wrap_sink(self, downstream: Sink) -> Sink:
        op = self

        class _SortedSink(ChainedSink):
            def begin(self, size):
                self.buffer: list = []

            def accept(self, item):
                self.buffer.append(item)

            def accept_chunk(self, chunk):
                self.buffer.extend(chunk)

            def end(self):
                out = sorted(self.buffer, key=op.key, reverse=op.reverse)
                down = self.downstream
                down.begin(len(out))
                for item in out:
                    if down.cancellation_requested():
                        break
                    down.accept(item)
                down.end()

            def cancellation_requested(self):
                # Must see every element before sorting; never cancel upstream.
                return False

        return _SortedSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        return sorted(buffer, key=self.key, reverse=self.reverse)


class DistinctOp(Op):
    """``distinct()`` — drop duplicates, keeping first occurrences."""

    stateful = True

    def wrap_sink(self, downstream: Sink) -> Sink:
        class _DistinctSink(ChainedSink):
            def begin(self, size):
                self.seen: set = set()
                self.downstream.begin(-1)

            def accept(self, item):
                if item not in self.seen:
                    self.seen.add(item)
                    self.downstream.accept(item)

        return _DistinctSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        return list(dict.fromkeys(buffer))


class LimitOp(Op):
    """``limit(n)`` — truncate after the first ``n`` elements."""

    stateful = True
    short_circuit = True

    def __init__(self, n: int) -> None:
        if n < 0:
            raise IllegalArgumentError(f"limit must be >= 0, got {n}")
        self.n = n

    def wrap_sink(self, downstream: Sink) -> Sink:
        n = self.n

        class _LimitSink(ChainedSink):
            def begin(self, size):
                self.remaining = n
                self.downstream.begin(min(size, n) if size >= 0 else -1)

            def accept(self, item):
                if self.remaining > 0:
                    self.remaining -= 1
                    self.downstream.accept(item)

            def cancellation_requested(self):
                return self.remaining <= 0 or self.downstream.cancellation_requested()

        return _LimitSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        return buffer[: self.n]


class SkipOp(Op):
    """``skip(n)`` — drop the first ``n`` elements."""

    stateful = True

    def __init__(self, n: int) -> None:
        if n < 0:
            raise IllegalArgumentError(f"skip must be >= 0, got {n}")
        self.n = n

    def wrap_sink(self, downstream: Sink) -> Sink:
        n = self.n

        class _SkipSink(ChainedSink):
            def begin(self, size):
                self.to_skip = n
                self.downstream.begin(max(size - n, 0) if size >= 0 else -1)

            def accept(self, item):
                if self.to_skip > 0:
                    self.to_skip -= 1
                else:
                    self.downstream.accept(item)

        return _SkipSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        return buffer[self.n :]


class TakeWhileOp(Op):
    """``take_while(predicate)`` — longest matching prefix (Java 9)."""

    stateful = True
    short_circuit = True

    def __init__(self, predicate: Callable[[T], bool]) -> None:
        self.predicate = predicate

    def wrap_sink(self, downstream: Sink) -> Sink:
        predicate = self.predicate

        class _TakeWhileSink(ChainedSink):
            def begin(self, size):
                self.taking = True
                self.downstream.begin(-1)

            def accept(self, item):
                if self.taking:
                    if predicate(item):
                        self.downstream.accept(item)
                    else:
                        self.taking = False

            def cancellation_requested(self):
                return not self.taking or self.downstream.cancellation_requested()

        return _TakeWhileSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        out = []
        for item in buffer:
            if not self.predicate(item):
                break
            out.append(item)
        return out


class DropWhileOp(Op):
    """``drop_while(predicate)`` — complement of ``take_while`` (Java 9)."""

    stateful = True

    def __init__(self, predicate: Callable[[T], bool]) -> None:
        self.predicate = predicate

    def wrap_sink(self, downstream: Sink) -> Sink:
        predicate = self.predicate

        class _DropWhileSink(ChainedSink):
            def begin(self, size):
                self.dropping = True
                self.downstream.begin(-1)

            def accept(self, item):
                if self.dropping:
                    if predicate(item):
                        return
                    self.dropping = False
                self.downstream.accept(item)

        return _DropWhileSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        out = []
        dropping = True
        for item in buffer:
            if dropping:
                if self.predicate(item):
                    continue
                dropping = False
            out.append(item)
        return out


# --------------------------------------------------------------------------- #
# Terminal sinks
# --------------------------------------------------------------------------- #


class AccumulatorSink(TerminalSink):
    """Terminal sink folding elements into a mutable container.

    Shared by sequential ``collect`` and the fork/join leaves.  When the
    collector supplies a chunk accumulator (``to_list`` → ``extend``,
    ``counting`` → ``+= len``, …) whole chunks fold in one call; otherwise
    chunks fall back to an in-sink per-element loop.
    """

    __slots__ = ("container", "_accumulate", "_accumulate_chunk", "_cancel")

    def __init__(
        self,
        container: Any,
        accumulate: Callable[[Any, Any], None],
        accumulate_chunk: Callable[[Any, Sequence], None] | None = None,
        cancel: Any = None,
    ) -> None:
        self.container = container
        self._accumulate = accumulate
        self._accumulate_chunk = accumulate_chunk
        self._cancel = cancel

    def accept(self, item: Any) -> None:
        self._accumulate(self.container, item)

    def accept_chunk(self, chunk: Sequence) -> None:
        if self._accumulate_chunk is not None:
            self._accumulate_chunk(self.container, chunk)
        else:
            accumulate, container = self._accumulate, self.container
            for item in chunk:
                accumulate(container, item)

    def cancellation_requested(self) -> bool:
        return self._cancel is not None and self._cancel.is_set()

    def get(self) -> Any:
        return self.container


class ReducingSink(TerminalSink):
    """Terminal sink for immutable reduction (``Stream.reduce``).

    Keeps ``(value, seen_any)``; chunks fold through ``functools.reduce``
    (one C-level loop) instead of one sink call per element.
    """

    __slots__ = ("value", "seen", "_op")

    def __init__(self, op: Callable[[Any, Any], Any], identity: Any = None,
                 has_identity: bool = False) -> None:
        self.value = identity
        self.seen = has_identity
        self._op = op

    def accept(self, item: Any) -> None:
        if self.seen:
            self.value = self._op(self.value, item)
        else:
            self.value = item
            self.seen = True

    def accept_chunk(self, chunk: Sequence) -> None:
        it = iter(chunk)
        if not self.seen:
            for first in it:
                self.value = first
                self.seen = True
                break
            else:
                return
        self.value = functools.reduce(self._op, it, self.value)

    def get(self) -> Any:
        return self.value


# --------------------------------------------------------------------------- #
# Traversal
# --------------------------------------------------------------------------- #

#: Maximum number of elements handed to the sink chain per chunk.  Bounds
#: the transient per-stage buffers while amortizing per-chunk dispatch.
CHUNK_SIZE = 1 << 16

_bulk_enabled = True
_bulk_stats = {"chunked": 0, "element": 0}


def bulk_execution_enabled() -> bool:
    """True when eligible traversals take the chunked fast path."""
    return _bulk_enabled


def set_bulk_execution(enabled: bool) -> bool:
    """Globally enable/disable the chunked fast path; returns the previous
    setting.  Exists for benchmarks and parity tests — the fallback is
    otherwise automatic."""
    global _bulk_enabled
    previous = _bulk_enabled
    _bulk_enabled = bool(enabled)
    return previous


@contextmanager
def bulk_execution(enabled: bool):
    """Context manager scoping :func:`set_bulk_execution`."""
    previous = set_bulk_execution(enabled)
    try:
        yield
    finally:
        set_bulk_execution(previous)


def bulk_stats(reset: bool = False) -> dict[str, int]:
    """Counts of traversals taken by each path (advisory; used by tests and
    benches to prove the fast path engaged)."""
    snapshot = dict(_bulk_stats)
    if reset:
        _bulk_stats["chunked"] = 0
        _bulk_stats["element"] = 0
    return snapshot


def wrap_ops(ops: list[Op], terminal: Sink) -> Sink:
    """Fuse ``ops`` (pipeline order) in front of the terminal sink."""
    sink = terminal
    for op in reversed(ops):
        sink = op.wrap_sink(sink)
    return sink


def copy_into(spliterator: Spliterator, sink: Sink, short_circuit: bool) -> None:
    """Push every element of ``spliterator`` through ``sink``.

    ``short_circuit`` selects element-at-a-time traversal with cancellation
    polling; otherwise the bulk ``for_each_remaining`` fast path is used.
    """
    size = spliterator.get_exact_size_if_known()
    sink.begin(size)
    if short_circuit:
        if not sink.cancellation_requested():
            while spliterator.try_advance(sink.accept):
                if sink.cancellation_requested():
                    break
    else:
        spliterator.for_each_remaining(sink.accept)
    sink.end()


def copy_into_chunked(
    spliterator: Spliterator, sink: Sink, max_chunk: int = CHUNK_SIZE
) -> None:
    """Drain ``spliterator`` into ``sink`` chunk-at-a-time.

    Each ``next_chunk`` sublist crosses the fused chain in O(stages) Python
    calls; correctness requires a non-short-circuiting pipeline (the only
    cancellation polling is one ``cancellation_requested`` call per chunk,
    which lets a fork/join leaf abort promptly when a sibling leaf has
    failed — see the fail-fast contract in ``repro.streams.parallel``).
    """
    sink.begin(spliterator.get_exact_size_if_known())
    next_chunk = spliterator.next_chunk
    accept_chunk = sink.accept_chunk
    cancelled = sink.cancellation_requested
    while not cancelled():
        chunk = next_chunk(max_chunk)
        if chunk is None or len(chunk) == 0:
            break
        accept_chunk(chunk)
    sink.end()


def pipeline_is_short_circuit(ops: list[Op]) -> bool:
    """True if any stage may cancel the traversal early."""
    return any(op.short_circuit for op in ops)


def pipeline_supports_chunks(ops: list[Op]) -> bool:
    """True if every stage has a bulk ``accept_chunk`` rewrite."""
    return all(op.chunkable for op in ops)


def pipeline_absorbs_short_circuit(ops: list[Op]) -> bool:
    """True if every short-circuiting stage manages its own cut point.

    Counted fused kernels (``limit``/``skip`` compiled into a run) slice
    their chunks at the exact cut and report exhaustion through
    ``cancellation_requested``, so the chunked traversal — which polls once
    per chunk — terminates at the right chunk and the kernel discards the
    overshoot within it.  Raw ``LimitOp`` / ``take_while`` do not, and keep
    the per-element path.
    """
    return all(
        not op.short_circuit or op.absorbs_short_circuit for op in ops
    )


def select_mode(ops: list[Op], force_short_circuit: bool = False) -> str:
    """The single mode-selection decision for a (fused) op chain.

    Returns ``"short_circuit"`` (per-element with polling), ``"chunked"``
    (bulk path), or ``"element"``.  Shared verbatim by
    :func:`run_pipeline`, its profiled twin, and ``Stream.explain()`` so
    plans can never drift from execution.
    """
    if force_short_circuit:
        return "short_circuit"
    if pipeline_is_short_circuit(ops):
        if (
            _bulk_enabled
            and pipeline_supports_chunks(ops)
            and pipeline_absorbs_short_circuit(ops)
        ):
            return "chunked"
        return "short_circuit"
    if _bulk_enabled and pipeline_supports_chunks(ops):
        return "chunked"
    return "element"


def run_pipeline(
    spliterator: Spliterator,
    ops: list[Op],
    terminal: Sink,
    force_short_circuit: bool = False,
    chunk_size: int | None = None,
) -> Sink:
    """The single traversal entry point for sequential terminals and
    fork/join leaves.

    First rewrites ``ops`` through the stage-fusion optimizer (runs of
    adjacent stateless ops collapse into single compiled stages — see
    :mod:`repro.streams.fusion`), then wraps the chain around ``terminal``
    and picks the execution mode:

    * short-circuiting pipeline (or a cancelling terminal, signalled by
      ``force_short_circuit``) → per-element traversal with polling;
    * all stages chunkable and bulk execution enabled → chunked traversal;
    * otherwise (stateful stages in the chain) → per-element bulk
      ``for_each_remaining``.

    ``chunk_size`` overrides the default ``next_chunk`` granularity on the
    chunked path (the adaptive split policy derives it from observed
    per-element cost); None keeps :data:`CHUNK_SIZE`.

    Returns ``terminal`` so callers can read its result.
    """
    ops = _fusion.maybe_fuse(ops)
    profiler = current_profiler()
    if profiler is not None:
        return _run_pipeline_profiled(
            spliterator, ops, terminal, force_short_circuit, profiler,
            chunk_size,
        )
    sink = wrap_ops(ops, terminal)
    mode = select_mode(ops, force_short_circuit)
    if mode == "chunked":
        _bulk_stats["chunked"] += 1
        copy_into_chunked(spliterator, sink, chunk_size or CHUNK_SIZE)
    else:
        _bulk_stats["element"] += 1
        copy_into(spliterator, sink, mode == "short_circuit")
    return terminal


def _run_pipeline_profiled(
    spliterator: Spliterator,
    ops: list[Op],
    terminal: Sink,
    force_short_circuit: bool,
    profiler,
    chunk_size: int | None = None,
) -> Sink:
    """The profiled twin of :func:`run_pipeline` (same mode selection and
    ``_bulk_stats`` accounting, already-fused ``ops``).

    Kept separate so the unprofiled hot path above pays exactly one
    ``is None`` check for the profiler — no extra branches, no wrappers.
    """
    mode = select_mode(ops, force_short_circuit)
    _bulk_stats["chunked" if mode == "chunked" else "element"] += 1
    if profiler.sample():
        sink, probes, labels = profiler.instrument(ops, terminal)
    else:
        sink, probes, labels = wrap_ops(ops, terminal), None, None
    if mode == "chunked":
        copy_into_chunked(spliterator, sink, chunk_size or CHUNK_SIZE)
    else:
        copy_into(spliterator, sink, mode == "short_circuit")
    fused = sum(1 for op in ops if type(op) is _fusion.FusedOp)
    profiler.profile.record_traversal(mode, probes, labels, fused)
    return terminal


def pull_iterator(spliterator: Spliterator, sink: Sink, buffer) -> "Iterable":
    """Lazily drive ``spliterator`` into ``sink``, yielding from ``buffer``.

    The generator behind ``Stream.iterator()``: per-element by design —
    chunk prefetch would eagerly run side effects (``peek``) and break
    laziness over infinite sources.  Lives here so every sequential
    traversal loop is owned by this module.
    """
    popleft = buffer.popleft
    while True:
        while buffer:
            yield popleft()
        if sink.cancellation_requested():
            # A satisfied short-circuit still ends the chain: a barrier
            # downstream of the limit (e.g. ``sorted``) holds admitted
            # elements it only emits on ``end()`` — same contract as the
            # chunked driver.
            sink.end()
            while buffer:
                yield popleft()
            break
        if not spliterator.try_advance(sink.accept):
            sink.end()
            while buffer:
                yield popleft()
            break


# Imported last: ``fusion`` depends on the Op/Sink vocabulary above, and
# ``run_pipeline`` resolves ``_fusion.maybe_fuse`` at call time, so the
# circular module reference is harmless in either import order.
from repro.streams import fusion as _fusion  # noqa: E402
