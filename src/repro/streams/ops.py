"""Pipeline stages and the fused sink chain.

Java streams fuse intermediate operations into a chain of ``Sink`` objects:
each stage wraps the downstream sink so that a single traversal of the
source pushes every element through the whole chain (``map`` → ``filter`` →
… → terminal) without intermediate collections.  We reproduce that design:

* :class:`Sink` — receiver protocol with ``begin``/``accept``/``end`` and
  short-circuit polling (``cancellation_requested``);
* :class:`Op` subclasses — one per intermediate operation, each able to
  wrap a downstream sink; *stateful* ops additionally expose
  ``apply_to_buffer`` used by parallel execution as a barrier.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Generic, Iterable, TypeVar

from repro.common import IllegalArgumentError
from repro.streams.spliterator import Spliterator

T = TypeVar("T")
U = TypeVar("U")


class Sink(Generic[T]):
    """Consumer of a stream stage's output.

    ``begin(size)`` announces the (possibly unknown, -1) number of elements
    to come; ``accept`` receives each element; ``end`` flushes; a True
    ``cancellation_requested`` asks upstream to stop sending (used by
    ``limit`` and the matching terminal ops).
    """

    def begin(self, size: int) -> None:
        """Prepare to receive up to ``size`` elements (-1 when unknown)."""

    def accept(self, item: T) -> None:
        """Receive one element."""

    def end(self) -> None:
        """Flush after the last element."""

    def cancellation_requested(self) -> bool:
        """True when no further elements are wanted."""
        return False


class ChainedSink(Sink[T]):
    """A sink stage that forwards (possibly transformed) output downstream."""

    __slots__ = ("downstream",)

    def __init__(self, downstream: Sink) -> None:
        self.downstream = downstream

    def begin(self, size: int) -> None:
        self.downstream.begin(size)

    def end(self) -> None:
        self.downstream.end()

    def cancellation_requested(self) -> bool:
        return self.downstream.cancellation_requested()


class TerminalSink(Sink[T]):
    """A sink that also yields a result once traversal finishes."""

    def get(self) -> Any:
        """The terminal operation's result."""
        raise NotImplementedError


class Op(abc.ABC):
    """An intermediate operation (one pipeline stage)."""

    #: Stateful ops need the whole (prefix) result before emitting and act
    #: as barriers in parallel execution.
    stateful: bool = False
    #: Short-circuiting ops may stop the traversal early.
    short_circuit: bool = False

    @abc.abstractmethod
    def wrap_sink(self, downstream: Sink) -> Sink:
        """Fuse this op in front of ``downstream``."""

    def apply_to_buffer(self, buffer: list) -> list:
        """Barrier semantics for parallel execution (stateful ops only)."""
        raise NotImplementedError(f"{type(self).__name__} is stateless")


# --------------------------------------------------------------------------- #
# Stateless ops
# --------------------------------------------------------------------------- #


class MapOp(Op):
    """``map(f)`` — transform each element."""

    def __init__(self, f: Callable[[T], U]) -> None:
        self.f = f

    def wrap_sink(self, downstream: Sink) -> Sink:
        f = self.f

        class _MapSink(ChainedSink):
            def accept(self, item):
                self.downstream.accept(f(item))

        return _MapSink(downstream)


class FilterOp(Op):
    """``filter(predicate)`` — keep only matching elements."""

    def __init__(self, predicate: Callable[[T], bool]) -> None:
        self.predicate = predicate

    def wrap_sink(self, downstream: Sink) -> Sink:
        predicate = self.predicate

        class _FilterSink(ChainedSink):
            def begin(self, size):
                # Filtering invalidates any size promise.
                self.downstream.begin(-1)

            def accept(self, item):
                if predicate(item):
                    self.downstream.accept(item)

        return _FilterSink(downstream)


class FlatMapOp(Op):
    """``flat_map(f)`` — explode each element into an iterable of outputs."""

    def __init__(self, f: Callable[[T], Iterable[U]]) -> None:
        self.f = f

    def wrap_sink(self, downstream: Sink) -> Sink:
        f = self.f

        class _FlatMapSink(ChainedSink):
            def begin(self, size):
                self.downstream.begin(-1)

            def accept(self, item):
                down = self.downstream
                for out in f(item):
                    if down.cancellation_requested():
                        break
                    down.accept(out)

        return _FlatMapSink(downstream)


class PeekOp(Op):
    """``peek(action)`` — observe elements without changing them."""

    def __init__(self, action: Callable[[T], None]) -> None:
        self.action = action

    def wrap_sink(self, downstream: Sink) -> Sink:
        action = self.action

        class _PeekSink(ChainedSink):
            def accept(self, item):
                action(item)
                self.downstream.accept(item)

        return _PeekSink(downstream)


class MapMultiOp(Op):
    """``map_multi(f)`` (Java 16): ``f(item, emit)`` pushes 0..n outputs.

    A consumer-driven flat map — cheaper than building an intermediate
    iterable when most elements expand to zero or one output.
    """

    def __init__(self, f: Callable[[T, Callable[[U], None]], None]) -> None:
        self.f = f

    def wrap_sink(self, downstream: Sink) -> Sink:
        f = self.f

        class _MapMultiSink(ChainedSink):
            def begin(self, size):
                self.downstream.begin(-1)

            def accept(self, item):
                f(item, self.downstream.accept)

        return _MapMultiSink(downstream)


# --------------------------------------------------------------------------- #
# Stateful ops
# --------------------------------------------------------------------------- #


class SortedOp(Op):
    """``sorted(key=..., reverse=...)`` — emit elements in sorted order."""

    stateful = True

    def __init__(self, key: Callable[[T], Any] | None = None, reverse: bool = False) -> None:
        self.key = key
        self.reverse = reverse

    def wrap_sink(self, downstream: Sink) -> Sink:
        op = self

        class _SortedSink(ChainedSink):
            def begin(self, size):
                self.buffer: list = []

            def accept(self, item):
                self.buffer.append(item)

            def end(self):
                out = sorted(self.buffer, key=op.key, reverse=op.reverse)
                down = self.downstream
                down.begin(len(out))
                for item in out:
                    if down.cancellation_requested():
                        break
                    down.accept(item)
                down.end()

            def cancellation_requested(self):
                # Must see every element before sorting; never cancel upstream.
                return False

        return _SortedSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        return sorted(buffer, key=self.key, reverse=self.reverse)


class DistinctOp(Op):
    """``distinct()`` — drop duplicates, keeping first occurrences."""

    stateful = True

    def wrap_sink(self, downstream: Sink) -> Sink:
        class _DistinctSink(ChainedSink):
            def begin(self, size):
                self.seen: set = set()
                self.downstream.begin(-1)

            def accept(self, item):
                if item not in self.seen:
                    self.seen.add(item)
                    self.downstream.accept(item)

        return _DistinctSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        return list(dict.fromkeys(buffer))


class LimitOp(Op):
    """``limit(n)`` — truncate after the first ``n`` elements."""

    stateful = True
    short_circuit = True

    def __init__(self, n: int) -> None:
        if n < 0:
            raise IllegalArgumentError(f"limit must be >= 0, got {n}")
        self.n = n

    def wrap_sink(self, downstream: Sink) -> Sink:
        n = self.n

        class _LimitSink(ChainedSink):
            def begin(self, size):
                self.remaining = n
                self.downstream.begin(min(size, n) if size >= 0 else -1)

            def accept(self, item):
                if self.remaining > 0:
                    self.remaining -= 1
                    self.downstream.accept(item)

            def cancellation_requested(self):
                return self.remaining <= 0 or self.downstream.cancellation_requested()

        return _LimitSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        return buffer[: self.n]


class SkipOp(Op):
    """``skip(n)`` — drop the first ``n`` elements."""

    stateful = True

    def __init__(self, n: int) -> None:
        if n < 0:
            raise IllegalArgumentError(f"skip must be >= 0, got {n}")
        self.n = n

    def wrap_sink(self, downstream: Sink) -> Sink:
        n = self.n

        class _SkipSink(ChainedSink):
            def begin(self, size):
                self.to_skip = n
                self.downstream.begin(max(size - n, 0) if size >= 0 else -1)

            def accept(self, item):
                if self.to_skip > 0:
                    self.to_skip -= 1
                else:
                    self.downstream.accept(item)

        return _SkipSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        return buffer[self.n :]


class TakeWhileOp(Op):
    """``take_while(predicate)`` — longest matching prefix (Java 9)."""

    stateful = True
    short_circuit = True

    def __init__(self, predicate: Callable[[T], bool]) -> None:
        self.predicate = predicate

    def wrap_sink(self, downstream: Sink) -> Sink:
        predicate = self.predicate

        class _TakeWhileSink(ChainedSink):
            def begin(self, size):
                self.taking = True
                self.downstream.begin(-1)

            def accept(self, item):
                if self.taking:
                    if predicate(item):
                        self.downstream.accept(item)
                    else:
                        self.taking = False

            def cancellation_requested(self):
                return not self.taking or self.downstream.cancellation_requested()

        return _TakeWhileSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        out = []
        for item in buffer:
            if not self.predicate(item):
                break
            out.append(item)
        return out


class DropWhileOp(Op):
    """``drop_while(predicate)`` — complement of ``take_while`` (Java 9)."""

    stateful = True

    def __init__(self, predicate: Callable[[T], bool]) -> None:
        self.predicate = predicate

    def wrap_sink(self, downstream: Sink) -> Sink:
        predicate = self.predicate

        class _DropWhileSink(ChainedSink):
            def begin(self, size):
                self.dropping = True
                self.downstream.begin(-1)

            def accept(self, item):
                if self.dropping:
                    if predicate(item):
                        return
                    self.dropping = False
                self.downstream.accept(item)

        return _DropWhileSink(downstream)

    def apply_to_buffer(self, buffer: list) -> list:
        out = []
        dropping = True
        for item in buffer:
            if dropping:
                if self.predicate(item):
                    continue
                dropping = False
            out.append(item)
        return out


# --------------------------------------------------------------------------- #
# Traversal
# --------------------------------------------------------------------------- #


def wrap_ops(ops: list[Op], terminal: Sink) -> Sink:
    """Fuse ``ops`` (pipeline order) in front of the terminal sink."""
    sink = terminal
    for op in reversed(ops):
        sink = op.wrap_sink(sink)
    return sink


def copy_into(spliterator: Spliterator, sink: Sink, short_circuit: bool) -> None:
    """Push every element of ``spliterator`` through ``sink``.

    ``short_circuit`` selects element-at-a-time traversal with cancellation
    polling; otherwise the bulk ``for_each_remaining`` fast path is used.
    """
    size = spliterator.get_exact_size_if_known()
    sink.begin(size)
    if short_circuit:
        if not sink.cancellation_requested():
            while spliterator.try_advance(sink.accept):
                if sink.cancellation_requested():
                    break
    else:
        spliterator.for_each_remaining(sink.accept)
    sink.end()


def pipeline_is_short_circuit(ops: list[Op]) -> bool:
    """True if any stage may cancel the traversal early."""
    return any(op.short_circuit for op in ops)
