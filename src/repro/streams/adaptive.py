"""Metrics-driven split thresholds and chunk sizing (``target_size='auto'``).

The split threshold has so far been Java's static heuristic —
``max(size // (parallelism * 4), 1)`` — and AB4 showed how sensitive the
speedup curves are to that knob.  This module closes the feedback loop
that the observability layer opened: during an ``auto`` run the engine
samples per-leaf span durations and the pool's steal/idle counters, folds
them into a small per-pipeline-shape memo, and the *next* run of the same
shape sizes its leaves from the **observed per-element cost** instead of
the element count:

* the policy aims each leaf at :data:`TARGET_LEAF_SPAN_NS` of wall time
  (``target = span_target / cost_per_element``), never splitting deeper
  than Java's ``size // (4 × parallelism)`` at neutral bias — more than
  four leaves per worker buys no parallelism, only task overhead — so
  observed cost *coarsens* cheap shapes while expensive shapes keep
  Java's tree;
* when the median leaf span collapses below a quarter of the target, task
  overhead dominates — the shape's bias **coarsens** (doubles);
* when leaves run long while workers report idle wake-ups (or too few
  leaves exist to feed them), the bias **deepens** (halves), lowering
  the Java floor itself once it drops below 1;
* ``next_chunk`` granularity for the chunked bulk path is likewise picked
  so one chunk costs ~:data:`TARGET_CHUNK_SPAN_NS`.

A *shape* is the fingerprint of (backend, source type, parallelism, op
chain with the identity of each user callable) — two pipelines with the
same operators but different functions learn independently, which keeps
the policy honest about fused-kernel per-element cost instead of assuming
uniform ops.

Selection mirrors the fusion/bulk controls: per-stream with
``Stream.with_target_size("auto")``, globally with
:func:`set_split_policy` / :func:`split_policy` or the
``REPRO_SPLIT_POLICY`` environment variable.  An explicit integer
``with_target_size(n)`` always wins.  ``Stream.explain()`` reports the
decision (``threshold_source="auto"``) together with the inputs that
drove it, through the *same* :func:`decide_threshold` the terminals call,
so plans cannot drift from execution.
"""

from __future__ import annotations

import functools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any

from repro.common import IllegalArgumentError
from repro.streams.spliterator import UNKNOWN_SIZE

#: Number of leaves per worker Java aims for (AbstractTask.LEAF_TARGET).
LEAF_FACTOR = 4

#: Base leaf size for unsized sources, divided by the parallelism so an
#: unknown-size split still deepens with more workers (it used to be a
#: flat ``1 << 10`` regardless of the pool).
UNKNOWN_SIZE_BASE = 1 << 12

#: The sentinel accepted by ``with_target_size`` / ``decide_threshold``.
AUTO = "auto"

#: Wall time one leaf should cost under the adaptive policy, used until
#: the per-backend dispatch cost has been *measured* (and permanently
#: when ``REPRO_ADAPTIVE_LEAF_NS`` pins it).  Deliberately coarse:
#: per-task overhead can reach hundreds of µs on a loaded or
#: GIL-contended host, and a ~30ms leaf keeps that below ~2% while a
#: multi-second terminal still yields dozens of leaves.  When real
#: parallelism is available and leaves run too long, the idle/steal
#: deepen feedback walks the bias down — over-coarseness is corrected by
#: measurement, over-fineness would be pure overhead everywhere.
TARGET_LEAF_SPAN_NS = int(os.environ.get("REPRO_ADAPTIVE_LEAF_NS", 32_000_000))

#: An explicit ``REPRO_ADAPTIVE_LEAF_NS`` pins the leaf-span target: the
#: operator's constant beats the online estimate.
_LEAF_SPAN_PINNED = "REPRO_ADAPTIVE_LEAF_NS" in os.environ

#: Leaf-span target as a multiple of the measured per-task dispatch cost:
#: a leaf lasting 64 dispatches keeps scheduling overhead under ~2% while
#: staying an order of magnitude finer than a blind worst-case constant.
DISPATCH_SPAN_FACTOR = 64

#: Clamp on the dispatch-derived span target — never finer than 2ms (a
#: sub-ms leaf is overhead even on an idle host) and never coarser than
#: 512ms (at least a few leaves per worker on multi-second terminals).
_MIN_LEAF_SPAN_NS = 2_000_000
_MAX_LEAF_SPAN_NS = 512_000_000

#: Thread-pool dispatch cost is re-probed every this many observed runs
#: per backend (it drifts with host load); the process backend refreshes
#: for free from every scatter's round-trip sample.
_DISPATCH_REFRESH_RUNS = 64

#: No-op tasks per thread-pool dispatch probe.
_DISPATCH_PROBE_TASKS = 8

#: Wall time one ``next_chunk`` batch should cost on the chunked path —
#: also the cancellation-poll latency of a running leaf, so it stays well
#: under the leaf span target.
TARGET_CHUNK_SPAN_NS = 1_000_000

_MIN_CHUNK = 1 << 10
_MAX_CHUNK = 1 << 16  # repro.streams.ops.CHUNK_SIZE (imported lazily — cycle)

#: Bias bounds: feedback can coarsen/deepen a shape at most 64× away from
#: the pure cost-derived target before saturating.
_MIN_BIAS, _MAX_BIAS = 1.0 / 64, 64.0

#: Leaves whose median span is below this fraction of the target mean the
#: run was overhead-dominated → coarsen.
_COARSEN_FRACTION = 0.25
#: Leaves above this multiple of the target while workers idle → deepen.
_DEEPEN_FACTOR = 2.0

_MEMO_LIMIT = 256

#: ``threshold_source`` labels shared with ``Stream.explain()``.
SOURCE_EXPLICIT = "with_target_size"
SOURCE_SIZED = "size // (4 × parallelism)"
SOURCE_UNKNOWN = "unknown size → default // parallelism"
SOURCE_AUTO = "auto"

VALID_POLICIES = ("fixed", AUTO)


def compute_target_size(size: int, parallelism: int) -> int:
    """Java's split threshold: ``max(size / (parallelism * 4), 1)``.

    Unsized sources get :data:`UNKNOWN_SIZE_BASE` scaled down by the
    parallelism, so a wider pool still splits an iterator-backed stream
    into enough batches to occupy its workers.
    """
    if size == UNKNOWN_SIZE:
        return max(UNKNOWN_SIZE_BASE // parallelism, 1)
    return max(size // (parallelism * LEAF_FACTOR), 1)


def fixed_target(size: int, parallelism: int, explicit: Any) -> int:
    """The non-adaptive threshold: an explicit integer or Java's rule."""
    if isinstance(explicit, int):
        return explicit
    return compute_target_size(size, parallelism)


# --------------------------------------------------------------------------- #
# Pipeline-shape fingerprints
# --------------------------------------------------------------------------- #


def _callable_fingerprint(fn: Any) -> str:
    if isinstance(fn, functools.partial):
        return f"partial({_callable_fingerprint(fn.func)})"
    name = (
        getattr(fn, "__qualname__", None)
        or getattr(fn, "__name__", None)
        or type(fn).__name__
    )
    return f"{getattr(fn, '__module__', '?')}.{name}"


def shape_key(
    ops: list,
    spliterator: Any,
    parallelism: int,
    backend: str = "threads",
) -> tuple:
    """The memo key for one pipeline shape.

    Includes the identity (module-qualified name) of every user callable
    an op carries — ``map(parse)`` and ``map(hash)`` have very different
    per-element costs and must not share a cost estimate.  The element
    count is deliberately *excluded*: cost-per-element transfers across
    sizes, which is the whole point of the memo.
    """
    stages = []
    for op in ops:
        parts = [type(op).__name__]
        attrs = getattr(op, "__dict__", None)
        if attrs:
            for name in sorted(attrs):
                value = attrs[name]
                if callable(value):
                    parts.append(_callable_fingerprint(value))
        stages.append(tuple(parts))
    return (backend, type(spliterator).__name__, parallelism, tuple(stages))


# --------------------------------------------------------------------------- #
# Decisions and observations
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ThresholdDecision:
    """One resolved split threshold, shared by execution and ``explain``."""

    target_size: int
    #: Adaptive ``next_chunk`` granularity, or None for the default.
    chunk_size: int | None
    #: ``threshold_source`` label (see the SOURCE_* constants).
    source: str
    #: For ``auto`` decisions: the measurements that drove the choice.
    inputs: dict | None
    #: True when the adaptive policy chose (and should observe the run).
    adaptive: bool
    key: tuple | None = None


class RunObservation:
    """Per-run sample sheet an ``auto`` terminal fills in while it runs.

    Thread-backend leaves call :meth:`record_leaf` (list appends — safe
    under the GIL from concurrent workers); the process backend calls
    :meth:`record_batch` with child-reported batch durations.  On success
    the terminal calls :meth:`complete`, which folds steal/idle deltas in
    and feeds the policy memo.  Cancelled short-circuit runs are simply
    never completed — a leaf that aborted early would poison the
    per-element cost estimate.
    """

    __slots__ = (
        "key", "parallelism", "target_size", "leaf_ns", "leaf_elements",
        "leaf_sizes", "steals", "idle_wakeups", "dispatch_ns", "_pool_before",
    )

    def __init__(
        self,
        key: tuple,
        parallelism: int,
        target_size: int,
        pool_snapshot: dict | None = None,
        leaf_sizes: list[int] | None = None,
    ) -> None:
        self.key = key
        self.parallelism = parallelism
        self.target_size = target_size
        self.leaf_ns: list[int] = []
        self.leaf_elements: list[int] = []
        self.leaf_sizes = leaf_sizes
        self.steals = 0
        self.idle_wakeups = 0
        #: Per-scatter dispatch-overhead samples (process backend).
        self.dispatch_ns: list[int] = []
        self._pool_before = pool_snapshot

    def record_leaf(self, duration_ns: int, elements: int) -> None:
        self.leaf_ns.append(duration_ns)
        self.leaf_elements.append(max(elements, 0))

    def record_batch(self, lo: int, hi: int, duration_ns: int) -> None:
        """Spread one child batch's duration evenly over its leaf slots."""
        count = hi - lo
        if count <= 0:
            return
        per_leaf = duration_ns // count
        sizes = self.leaf_sizes
        for i in range(lo, hi):
            self.leaf_ns.append(per_leaf)
            self.leaf_elements.append(sizes[i] if sizes is not None else 0)

    def record_dispatch(self, overhead_ns: int) -> None:
        """One measured scatter-to-result overhead sample (batch round trip
        minus the child's own compute time)."""
        if overhead_ns > 0:
            self.dispatch_ns.append(overhead_ns)

    def complete(self, pool: Any = None) -> None:
        if pool is not None and self._pool_before is not None:
            after = pool.scheduling_snapshot()
            before = self._pool_before
            self.steals = after["steals"] - before["steals"]
            self.idle_wakeups = (
                after["idle_wakeups"] - before["idle_wakeups"]
            )
        _policy.observe_run(self)
        backend = self.key[0] if self.key else None
        if backend is None:
            return
        if self.dispatch_ns:
            # The process backend measured its own dispatch overhead; the
            # minimum sample is the least-contended (truest) one.
            _policy.note_dispatch_cost(backend, min(self.dispatch_ns))
        elif pool is not None:
            # Thread backend: probe the pool's submit→join round trip
            # directly (cheap, and refreshed only every few dozen runs).
            _policy.maybe_measure_dispatch(backend, pool)


class _ShapeEntry:
    __slots__ = ("cost_ns", "bias", "runs")

    def __init__(self) -> None:
        self.cost_ns = 0.0  # EWMA per-element wall cost; 0 = unknown
        self.bias = 1.0     # feedback multiplier on the cost-derived target
        self.runs = 0


def _pow2_at_most(value: float, lo: int, hi: int) -> int:
    """Largest power of two ≤ ``value``, clamped to ``[lo, hi]``."""
    if value < lo:
        return lo
    if value >= hi:
        return hi
    return 1 << (int(value).bit_length() - 1)


class SplitPolicy:
    """The adaptive threshold policy: a shape-keyed cost memo + feedback.

    Deciding is read-only with respect to the memo (``explain()`` may call
    it freely); only :meth:`observe_run` — fed by completed ``auto``
    terminals — mutates state.  All state is process-local; worker
    children never consult it (they receive resolved sizes in payloads).
    """

    def __init__(
        self,
        target_leaf_span_ns: int = TARGET_LEAF_SPAN_NS,
        target_chunk_span_ns: int = TARGET_CHUNK_SPAN_NS,
        pin_leaf_span: bool | None = None,
    ) -> None:
        self.target_leaf_span_ns = target_leaf_span_ns
        self.target_chunk_span_ns = target_chunk_span_ns
        #: True disables the dispatch-derived span (the operator pinned a
        #: constant via REPRO_ADAPTIVE_LEAF_NS); None reads that env var.
        self._span_pinned = (
            _LEAF_SPAN_PINNED if pin_leaf_span is None else pin_leaf_span
        )
        self._lock = threading.Lock()
        self._memo: dict[tuple, _ShapeEntry] = {}
        #: Per-backend EWMA of measured per-task dispatch cost (ns); the
        #: leaf-span target is derived from it once a sample exists.
        self._dispatch_ns: dict[str, float] = {}
        self._dispatch_runs: dict[str, int] = {}
        self._stats = {
            "decisions": 0, "bootstrap": 0,
            "coarsened": 0, "deepened": 0, "observed_runs": 0,
        }

    # -- dispatch-cost-derived span target ----------------------------------- #

    def _span_for(self, backend: str | None) -> int:
        """Leaf-span target for ``backend`` (caller holds the lock):
        ``DISPATCH_SPAN_FACTOR ×`` the measured dispatch cost, clamped —
        or the static default until a measurement exists / when pinned."""
        if self._span_pinned or backend is None:
            return self.target_leaf_span_ns
        cost = self._dispatch_ns.get(backend, 0.0)
        if cost <= 0.0:
            return self.target_leaf_span_ns
        span = int(cost * DISPATCH_SPAN_FACTOR)
        return max(_MIN_LEAF_SPAN_NS, min(span, _MAX_LEAF_SPAN_NS))

    def leaf_span_target(self, backend: str | None = None) -> int:
        """The effective leaf-span target for ``backend`` right now."""
        with self._lock:
            return self._span_for(backend)

    def note_dispatch_cost(self, backend: str, sample_ns: float) -> None:
        """Fold one measured per-task dispatch cost into the backend's
        EWMA (seeds it on first sample)."""
        if sample_ns <= 0:
            return
        with self._lock:
            previous = self._dispatch_ns.get(backend, 0.0)
            self._dispatch_ns[backend] = (
                sample_ns if previous <= 0.0
                else 0.5 * (previous + sample_ns)
            )

    def maybe_measure_dispatch(self, backend: str, pool: Any) -> None:
        """Probe ``pool``'s per-task dispatch cost if this backend's
        estimate is due for a refresh (first run, then every
        :data:`_DISPATCH_REFRESH_RUNS` observed runs)."""
        with self._lock:
            if self._span_pinned:
                return
            runs = self._dispatch_runs.get(backend, 0)
            self._dispatch_runs[backend] = runs + 1
            if runs % _DISPATCH_REFRESH_RUNS != 0:
                return
        sample = _measure_pool_dispatch(pool)
        if sample > 0:
            self.note_dispatch_cost(backend, sample)

    # -- deciding ----------------------------------------------------------- #

    def decide(
        self, size: int, parallelism: int, key: tuple | None,
        record: bool = True,
    ) -> ThresholdDecision:
        with self._lock:
            entry = self._memo.get(key) if key is not None else None
            cost = entry.cost_ns if entry is not None else 0.0
            bias = entry.bias if entry is not None else 1.0
            runs = entry.runs if entry is not None else 0
            span_target = self._span_for(key[0] if key else None)
            if record:
                self._stats["decisions"] += 1
                if cost <= 0.0:
                    self._stats["bootstrap"] += 1
        inputs = {
            "policy": AUTO,
            "parallelism": parallelism,
            "observed_runs": runs,
            "cost_per_element_ns": round(cost, 1),
            "bias": bias,
            "target_leaf_span_ns": span_target,
        }
        if cost <= 0.0:
            # Nothing observed for this shape yet: bootstrap with Java's
            # rule; the first completed run seeds the cost estimate.
            inputs["basis"] = "bootstrap (no observed cost)"
            return ThresholdDecision(
                compute_target_size(size, parallelism), None,
                SOURCE_AUTO, inputs, True, key,
            )
        target = max(int(span_target / cost * bias), 1)
        inputs["basis"] = "target leaf span ÷ observed cost × bias"
        if size != UNKNOWN_SIZE:
            # Cost-derived sizing only ever *coarsens* relative to Java's
            # rule: splitting deeper than 4 leaves per worker already
            # saturates the pool, so a finer cost target would buy pure
            # task overhead.  Deeper-than-Java splits remain possible,
            # but only through the deepen feedback (bias < 1 scales the
            # floor down) — i.e. when workers were *observed* idle.
            floor = int(compute_target_size(size, parallelism) * min(bias, 1.0))
            if floor > target:
                target = max(floor, 1)
                inputs["basis"] = "size // (4 × parallelism) floor × bias"
            target = min(target, max(size, 1))
        chunk = _pow2_at_most(
            self.target_chunk_span_ns / cost, _MIN_CHUNK, _MAX_CHUNK
        )
        return ThresholdDecision(target, chunk, SOURCE_AUTO, inputs, True, key)

    # -- learning ----------------------------------------------------------- #

    def observe_run(self, obs: RunObservation) -> None:
        leaves = len(obs.leaf_ns)
        if leaves == 0 or obs.key is None:
            return
        total_ns = sum(obs.leaf_ns)
        elements = sum(obs.leaf_elements)
        median_ns = sorted(obs.leaf_ns)[leaves // 2]
        with self._lock:
            entry = self._memo.get(obs.key)
            if entry is None:
                if len(self._memo) >= _MEMO_LIMIT:
                    self._memo.pop(next(iter(self._memo)))
                entry = self._memo[obs.key] = _ShapeEntry()
            if elements > 0 and total_ns > 0:
                cost = total_ns / elements
                entry.cost_ns = (
                    cost if entry.cost_ns <= 0.0
                    else 0.5 * (entry.cost_ns + cost)
                )
            entry.runs += 1
            self._stats["observed_runs"] += 1
            span_target = self._span_for(obs.key[0] if obs.key else None)
            if leaves > 1 and median_ns < (
                span_target * _COARSEN_FRACTION
            ):
                # Task overhead dominates: spans came in far under target.
                entry.bias = min(entry.bias * 2.0, _MAX_BIAS)
                self._stats["coarsened"] += 1
            elif median_ns > span_target * _DEEPEN_FACTOR and (
                obs.idle_wakeups > 0
                or obs.steals == 0
                or leaves < obs.parallelism
            ):
                # Leaves overran while workers sat idle: split deeper.
                entry.bias = max(entry.bias * 0.5, _MIN_BIAS)
                self._stats["deepened"] += 1

    # -- introspection ------------------------------------------------------ #

    def stats(self, reset: bool = False) -> dict:
        with self._lock:
            snapshot = dict(self._stats)
            snapshot["memo_size"] = len(self._memo)
            snapshot["dispatch_cost_ns"] = {
                backend: round(cost, 1)
                for backend, cost in self._dispatch_ns.items()
            }
            if reset:
                for k in self._stats:
                    self._stats[k] = 0
        return snapshot

    def memo_entry(self, key: tuple) -> dict | None:
        """The learned state for one shape (tests/benchmarks)."""
        with self._lock:
            entry = self._memo.get(key)
            if entry is None:
                return None
            return {
                "cost_per_element_ns": entry.cost_ns,
                "bias": entry.bias,
                "runs": entry.runs,
            }

    def reset(self) -> None:
        with self._lock:
            self._memo.clear()
            self._dispatch_ns.clear()
            self._dispatch_runs.clear()
            for k in self._stats:
                self._stats[k] = 0


_nop_task_cls = None


def _measure_pool_dispatch(pool: Any, probes: int = _DISPATCH_PROBE_TASKS) -> float:
    """Median submit→join round trip of a no-op task on ``pool``, in ns.

    Returns 0.0 when the pool is unusable (shut down, mid-teardown) — the
    caller just keeps its previous estimate.  The task class is defined
    lazily because ``repro.forkjoin`` imports are cyclic at module load.
    """
    global _nop_task_cls
    if pool is None or getattr(pool, "is_shutdown", lambda: True)():
        return 0.0
    try:
        if _nop_task_cls is None:
            from repro.forkjoin.task import RecursiveTask

            class _NopTask(RecursiveTask):
                def compute(self):
                    return None

            _nop_task_cls = _NopTask
        samples = []
        for _ in range(probes):
            start = time.perf_counter_ns()
            pool.invoke(_nop_task_cls())
            samples.append(time.perf_counter_ns() - start)
        samples.sort()
        return float(samples[len(samples) // 2])
    except Exception:
        return 0.0


_policy = SplitPolicy()


# --------------------------------------------------------------------------- #
# Mode controls (mirroring the fusion/bulk controls)
# --------------------------------------------------------------------------- #


def _validate_policy(mode: str) -> str:
    if mode not in VALID_POLICIES:
        raise IllegalArgumentError(
            f"unknown split policy {mode!r}: valid policies are "
            + ", ".join(repr(m) for m in VALID_POLICIES)
        )
    return mode


def _policy_from_env() -> str:
    mode = os.environ.get("REPRO_SPLIT_POLICY", "").strip()
    return _validate_policy(mode) if mode else "fixed"


_mode = _policy_from_env()


def split_policy_mode() -> str:
    """The session-wide default threshold policy: ``'fixed'`` or ``'auto'``."""
    return _mode


def set_split_policy(mode: str) -> str:
    """Select the default threshold policy; returns the previous one.

    ``'auto'`` makes every parallel terminal without an explicit
    ``with_target_size(n)`` consult the adaptive policy;
    ``with_target_size("auto")`` opts a single stream in regardless.  The
    ``REPRO_SPLIT_POLICY`` environment variable sets the initial value.
    """
    global _mode
    previous = _mode
    _mode = _validate_policy(mode)
    return previous


@contextmanager
def split_policy(mode: str):
    """Context manager scoping :func:`set_split_policy`."""
    previous = set_split_policy(mode)
    try:
        yield
    finally:
        set_split_policy(previous)


def split_policy_stats(reset: bool = False) -> dict:
    """Decision/feedback counters plus the memo size (advisory; lets tests
    and benches prove the adaptive path engaged and which way it moved)."""
    snapshot = _policy.stats(reset=reset)
    snapshot["mode"] = _mode
    return snapshot


def reset_split_policy() -> None:
    """Forget every learned shape (benchmarks isolate workloads with this)."""
    _policy.reset()


def wants_auto(explicit: Any) -> bool:
    """True when this terminal should route through the adaptive policy."""
    return explicit == AUTO or (explicit is None and _mode == AUTO)


def decide_threshold(
    size: int,
    parallelism: int,
    explicit: Any = None,
    key: tuple | None = None,
    record: bool = True,
) -> ThresholdDecision:
    """The single threshold decision function.

    Every parallel terminal (both backends) and ``Stream.explain()``
    resolve the split threshold here, so the plan and the execution can
    never disagree.  ``explicit`` is an integer from ``with_target_size``,
    the string ``"auto"``, or None (use the session policy).  ``record``
    is False for explain calls so plans don't pollute the stats.
    """
    if isinstance(explicit, int):
        return ThresholdDecision(explicit, None, SOURCE_EXPLICIT, None, False, key)
    if not wants_auto(explicit):
        source = SOURCE_UNKNOWN if size == UNKNOWN_SIZE else SOURCE_SIZED
        return ThresholdDecision(
            compute_target_size(size, parallelism), None, source, None, False, key,
        )
    return _policy.decide(size, parallelism, key, record=record)
