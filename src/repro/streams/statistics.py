"""``SummaryStatistics`` — single-pass count/sum/min/max/mean reduction.

Port of ``java.util.IntSummaryStatistics`` and the
``Collectors.summarizingInt`` family: a mutable container designed to be a
``collect`` target, merging correctly under parallel combination.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.streams.collector import Collector, CollectorCharacteristics

T = TypeVar("T")


class SummaryStatistics:
    """Running count, sum, min, max and mean of observed values."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def accept(self, value: float) -> None:
        """Fold one value in (the accumulator)."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def combine(self, other: "SummaryStatistics") -> "SummaryStatistics":
        """Merge another partial summary in (the combiner); returns self."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    @property
    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty, like Java's ``getAverage``)."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:
        if not self.count:
            return "SummaryStatistics(empty)"
        return (
            f"SummaryStatistics(count={self.count}, sum={self.total}, "
            f"min={self.minimum}, mean={self.mean:.6g}, max={self.maximum})"
        )


def summarizing(
    value_fn: Callable[[T], float] = lambda t: t,
) -> Collector[T, SummaryStatistics, SummaryStatistics]:
    """Collector producing a :class:`SummaryStatistics` over ``value_fn``."""

    def accumulate(stats: SummaryStatistics, item: T) -> None:
        stats.accept(value_fn(item))

    return Collector.of(
        SummaryStatistics,
        accumulate,
        SummaryStatistics.combine,
        None,
        CollectorCharacteristics.IDENTITY_FINISH
        | CollectorCharacteristics.UNORDERED,
    )
