"""``Stream.explain()``: the execution plan, predicted without executing.

The engine now makes four layered decisions per terminal — the fusion
rewrite, the bulk-vs-per-element mode selection, the parallel segmenting
at stateful barriers, and the split-tree shape from the target size.
This module re-runs exactly those decision functions against the *plan*
(op list + source metadata) instead of the data, so the report it builds
is the same decision the engine will take, not a parallel reimplementation
that can drift:

* fusion goes through the pure :func:`~repro.streams.fusion.fuse_ops`
  (not ``maybe_fuse`` — explaining must not pollute the stats/memo that
  tests and benchmarks pin);
* mode selection reuses :func:`pipeline_is_short_circuit` /
  :func:`pipeline_supports_chunks` / :func:`bulk_execution_enabled`, the
  exact predicates ``run_pipeline`` branches on;
* the leaf threshold goes through the real
  :func:`~repro.streams.adaptive.decide_threshold` — the same function
  the terminals call, including the ``auto`` split-policy path (read-only
  against the memo, so explaining never records a decision) — and the
  split tree is walked with the real halving rule (prefix gets
  ``size - size // 2``).

Everything is returned as a plain dict (pinned by tests) with a pretty
text rendering via :meth:`ExplainPlan.render`.
"""

from __future__ import annotations

import copy
from functools import lru_cache

from repro.forkjoin.pool import common_pool_parallelism
from repro.streams.fusion import FusedOp, fuse_ops, fusion_enabled
from repro.streams.ops import (
    LimitOp,
    Op,
    select_mode,
)
from repro.streams.adaptive import decide_threshold, shape_key
from repro.streams.spliterator import UNKNOWN_SIZE, Characteristics, Spliterator

#: Mode names reported under ``execution.mode`` / ``segments[].mode`` —
#: the three branches of ``run_pipeline``.
MODE_SHORT_CIRCUIT = "short-circuit-polled"
MODE_CHUNKED = "chunked"
MODE_ELEMENT = "per-element"


def _op_label(op: Op) -> str:
    """Same label scheme as the profiler: ``MapOp`` → ``map``."""
    if isinstance(op, FusedOp):
        return f"fused({'|'.join(op.kinds)})"
    name = type(op).__name__
    if name.endswith("Op"):
        name = name[:-2]
    out = []
    for i, ch in enumerate(name):
        if ch.isupper() and i > 0:
            out.append("_")
        out.append(ch.lower())
    return "".join(out)


#: ``select_mode`` return value → reported mode name.
_MODE_NAMES = {
    "short_circuit": MODE_SHORT_CIRCUIT,
    "chunked": MODE_CHUNKED,
    "element": MODE_ELEMENT,
}


def _predict_mode(ops: list[Op], force_short_circuit: bool = False) -> str:
    """The branch ``run_pipeline`` would take for this (fused) chain.

    Delegates to :func:`repro.streams.ops.select_mode` — the *same*
    decision function execution runs — so counted fused kernels that
    absorb their short-circuit report ``chunked`` here exactly when the
    traversal takes the chunked path.
    """
    return _MODE_NAMES[select_mode(ops, force_short_circuit)]


@lru_cache(maxsize=4096)
def _walk_split_tree(size: int, target_size: int) -> tuple[int, int]:
    """Predicted ``(leaves, depth)`` of the divide-and-conquer tree.

    Mirrors ``_ReduceTask``: a node at or under the target is a leaf;
    otherwise the prefix takes ``size - size // 2`` elements and the
    suffix ``size // 2`` (``try_split`` halves, prefix gets the extra
    element of an odd split).  Memoized — sibling sizes repeat at every
    level, so the walk is O(depth²) instead of O(leaves).
    """
    if size <= target_size:
        return 1, 0
    suffix = size // 2
    left_leaves, left_depth = _walk_split_tree(size - suffix, target_size)
    right_leaves, right_depth = _walk_split_tree(suffix, target_size)
    return left_leaves + right_leaves, max(left_depth, right_depth) + 1


def _fusion_section(ops: list[Op]) -> tuple[dict, list[Op]]:
    """The fusion rewrite report and the rewritten chain.

    Uses the pure :func:`fuse_ops` so explaining never touches the
    ``fusion_stats`` counters or the identity memo.
    """
    enabled = fusion_enabled()
    if enabled:
        rewritten, stages_fused = fuse_ops(ops)
    else:
        rewritten, stages_fused = ops, 0
    runs = [
        op.describe() for op in rewritten if isinstance(op, FusedOp)
    ]
    # Fused kernels are never barriers: a counted kernel may *be*
    # short-circuiting (it carries a compiled limit), but it manages its
    # own cut inside the chunked path instead of splitting the chain.
    barriers = [
        {
            "op": _op_label(op),
            "stateful": op.stateful,
            "short_circuit": op.short_circuit,
        }
        for op in rewritten
        if not isinstance(op, FusedOp) and (op.stateful or op.short_circuit)
    ]
    section = {
        "enabled": enabled,
        "chain": [_op_label(op) for op in rewritten],
        "stages_fused": stages_fused,
        "kernels": len(runs),
        "runs": runs,
        "barriers": barriers,
    }
    return section, rewritten


def _sequential_execution(fused_ops: list[Op]) -> dict:
    return {"parallel": False, "mode": _predict_mode(fused_ops)}


def _parallel_execution(
    ops: list[Op],
    size: int | None,
    pool,
    explicit_target: int | None,
    backend: str = "threads",
    spliterator: Spliterator | None = None,
) -> dict:
    """Predict segments, target size, and the split tree for parallel runs.

    Mirrors ``Stream._barrier_stateful``: the chain is cut at each
    stateful op; every stateless segment runs as its own fork/join
    reduction (each re-fused and mode-selected independently), with the
    stateful op applied as a sequential barrier between segments.

    With ``backend='process'`` the pool is the worker-process pool and the
    plan additionally predicts the *shipping* mode — whether leaves travel
    as zero-copy shared-memory descriptors, compact range bounds, or
    pickled element copies.
    """
    shipping = None
    if backend == "process":
        from repro.streams import process_backend as _pb

        pool_name = "process"
        parallelism = (
            _pb._shared_executor.processes
            if _pb._shared_executor is not None
            else _pb.default_process_count()
        )
        if spliterator is not None:
            shipping = _pb.shipping_mode(spliterator)
    elif pool is not None:
        pool_name, parallelism = pool.name, pool.parallelism
    else:
        pool_name, parallelism = "common", common_pool_parallelism()

    segments = []
    remaining = list(ops)
    while True:
        cut = next(
            (i for i, op in enumerate(remaining) if op.stateful), None
        )
        if cut is None:
            prefix, barrier, remaining = remaining, None, []
        else:
            prefix, barrier = remaining[:cut], remaining[cut]
            remaining = remaining[cut + 1 :]
        # A limit barrier passes its count to the collect as the *budget*:
        # each leaf actually runs ``prefix + [LimitOp(n)]`` (re-fused into
        # a counted kernel), so the plan predicts the mode of exactly that
        # chain — mirroring ``Stream._barrier_stateful``.
        budget = None
        leaf_chain = prefix
        if barrier is not None and isinstance(barrier, LimitOp):
            budget = barrier.n
            leaf_chain = prefix + [barrier]
        fused, _ = (
            fuse_ops(leaf_chain) if fusion_enabled() else (leaf_chain, 0)
        )
        segment = {
            "ops": [_op_label(op) for op in fused],
            # Leaves of a parallel reduction run the chain through
            # run_pipeline; match/find leaves poll (short-circuit).
            "mode": _predict_mode(fused),
            "barrier": _op_label(barrier) if barrier is not None else None,
        }
        if budget is not None:
            segment["budget"] = budget
        segments.append(segment)
        if barrier is None:
            break

    execution: dict = {
        "parallel": True,
        "backend": backend,
        "pool": pool_name,
        "parallelism": parallelism,
        "segments": segments,
    }
    if shipping is not None:
        execution["shipping"] = shipping

    # The threshold comes from the SAME decision function the terminals
    # call (repro.streams.adaptive.decide_threshold), keyed by the first
    # stateless segment's shape — so a policy override (e.g. the ``auto``
    # split policy) can never make the plan drift from execution.
    # ``record=False``: explaining must not bump the policy's stats.
    first_cut = next((i for i, op in enumerate(ops) if op.stateful), None)
    first_segment = ops if first_cut is None else ops[:first_cut]
    key = None
    if spliterator is not None:
        key = shape_key(first_segment, spliterator, parallelism, backend=backend)
    decision = decide_threshold(
        size if size is not None else UNKNOWN_SIZE,
        parallelism,
        explicit=explicit_target,
        key=key,
        record=False,
    )
    target = decision.target_size
    execution["threshold_source"] = decision.source
    if decision.inputs is not None:
        execution["threshold_inputs"] = decision.inputs
    execution["target_size"] = target

    # The split tree is only predictable for a sized source; the shape of
    # later segments depends on barrier output sizes (e.g. after filter),
    # so the prediction covers the first segment.
    if size is not None:
        leaves, depth = _walk_split_tree(size, target)
        execution["split_tree"] = {"leaves": leaves, "depth": depth}
    else:
        execution["split_tree"] = None
    return execution


class ExplainPlan:
    """A structured, renderable execution plan (see :func:`explain_stream`)."""

    def __init__(self, plan: dict) -> None:
        self._plan = plan

    def to_dict(self) -> dict:
        return copy.deepcopy(self._plan)

    def __getitem__(self, key: str):
        return self._plan[key]

    def render(self) -> str:
        """Pretty text tree of the plan."""
        p = self._plan
        src = p["source"]
        size = src["size"] if src["size"] is not None else "?"
        flags = []
        if src["sized"]:
            flags.append("sized")
        if src["power2"]:
            flags.append("power2")
        lines = [
            "explain",
            f"├─ source: {src['spliterator']} "
            f"(size={size}{', ' + '+'.join(flags) if flags else ''})",
        ]
        if "zip" in src:
            z = src["zip"]
            lines.append(
                f"│    zip: combine={z['combine']}, "
                f"left={z['left']['mode']}, right={z['right']['mode']}"
            )
        lines.append(
            f"├─ ops: {' → '.join(p['ops']) if p['ops'] else '(none)'}"
        )
        fusion = p["fusion"]
        if not fusion["enabled"]:
            lines.append("├─ fusion: disabled")
        elif fusion["kernels"] == 0:
            lines.append("├─ fusion: nothing to fuse")
        else:
            lines.append(
                f"├─ fusion: {fusion['stages_fused']} stages → "
                f"{fusion['kernels']} kernel(s): {' → '.join(fusion['chain'])}"
            )
            for run in fusion["runs"]:
                window = (
                    f", window[{run['window'][0]}:{run['window'][1]}]"
                    if "window" in run
                    else ""
                )
                lines.append(
                    f"│    kernel[{'|'.join(run['stages'])}] "
                    f"{run['kernel']}"
                    f"{', ufunc×' + str(run['ufunc_prefix']) if run['ufunc_prefix'] else ''}"
                    f"{window}"
                )
        for barrier in fusion["barriers"]:
            why = "stateful" if barrier["stateful"] else "short-circuit"
            lines.append(f"│    barrier: {barrier['op']} ({why})")
        ex = p["execution"]
        if not ex["parallel"]:
            suffix = (
                f" [backend={ex['backend']}]" if "backend" in ex else ""
            )
            lines.append(f"└─ execution: sequential, mode={ex['mode']}{suffix}")
            return "\n".join(lines)
        lines.append(
            f"└─ execution: parallel on {ex['pool']!r} "
            f"(backend={ex.get('backend', 'threads')}, "
            f"parallelism={ex['parallelism']})"
        )
        if "shipping" in ex:
            lines.append(f"     shipping: {ex['shipping']}")
        lines.append(
            f"     target_size={ex['target_size']} "
            f"[{ex['threshold_source']}]"
        )
        inputs = ex.get("threshold_inputs")
        if inputs is not None:
            lines.append(
                f"     threshold inputs: {inputs['basis']}; "
                f"cost≈{inputs['cost_per_element_ns']}ns/element, "
                f"bias={inputs['bias']}, "
                f"observed_runs={inputs['observed_runs']}"
            )
        for i, seg in enumerate(ex["segments"]):
            chain = " → ".join(seg["ops"]) if seg["ops"] else "(passthrough)"
            tail = f" ⊣ barrier {seg['barrier']}" if seg["barrier"] else ""
            if "budget" in seg:
                tail += f" (budget={seg['budget']})"
            lines.append(f"     segment[{i}]: {chain}  mode={seg['mode']}{tail}")
        tree = ex["split_tree"]
        if tree is not None:
            lines.append(
                f"     split tree: {tree['leaves']} leaves, depth {tree['depth']}"
            )
        else:
            lines.append("     split tree: unknown (unsized source)")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"ExplainPlan({self._plan['execution']})"


def explain_stream(stream) -> ExplainPlan:
    """Build the plan for ``stream`` without consuming or executing it."""
    spliterator: Spliterator = stream._spliterator
    ops: list[Op] = list(stream._ops)

    exact = spliterator.get_exact_size_if_known()
    size = exact if exact >= 0 else None
    source = {
        "spliterator": type(spliterator).__name__,
        "size": size,
        "sized": spliterator.has_characteristics(Characteristics.SIZED),
        "power2": spliterator.has_characteristics(Characteristics.POWER2),
    }
    from repro.streams.zipper import ZipSpliterator

    if isinstance(spliterator, ZipSpliterator):
        source["zip"] = spliterator.describe()

    fusion_section, fused_ops = _fusion_section(ops)

    if stream._parallel:
        from repro.streams.parallel import resolve_backend

        backend = resolve_backend(stream._backend)
        if backend == "sequential":
            # The backend switch downgrades parallel terminals to an
            # in-thread run; the plan reports the downgrade explicitly.
            execution = _sequential_execution(fused_ops)
            execution["backend"] = "sequential"
        else:
            execution = _parallel_execution(
                ops, size, stream._pool, stream._target_size,
                backend, spliterator,
            )
    else:
        execution = _sequential_execution(fused_ops)

    return ExplainPlan(
        {
            "source": source,
            "ops": [_op_label(op) for op in ops],
            "fusion": fusion_section,
            "execution": execution,
        }
    )
