"""Two-cursor zip fusion: lockstep draining of two fused pipelines.

``Stream.zip`` / ``Stream.zip_with`` pair two streams elementwise.  A
naive implementation pulls both sides through per-element iterators —
every element pays Python call overhead twice before the combiner even
runs.  Here each side becomes a :class:`_ZipCursor`: its op chain is
stage-fused (:mod:`repro.streams.fusion`) and driven through the chunked
bulk path, parking *output* chunks in a pending queue.  The enclosing
:class:`ZipSpliterator` then advances both cursors in lockstep —
``next_chunk(k)`` takes ``min(k, left available, right available)``
elements from each side in one slice — so the pair stream itself rides
the chunked path end to end.

Three combine forms, decided per chunk:

* no combiner → ``list(zip(a, b))`` pairs (one C-level call per chunk);
* a :class:`numpy.ufunc` combiner over two ndarray chunks → one
  vectorized call, keeping an all-numpy pipeline allocation-free in
  Python terms;
* any other combiner → ``list(map(combine, a, b))``.

Cursor fill modes (``_ZipCursor.mode``, surfaced by ``explain()``):

* ``direct`` — no ops: source chunks pass straight to the queue
  (zero-copy for ndarray/range sources);
* ``chunked`` — the fused chain is chunk-eligible (`select_mode` says
  so): source chunks push through ``accept_chunk`` and transformed
  chunks land in the queue.  Counted kernels participate: a fused
  ``limit`` reports exhaustion through ``cancellation_requested`` and
  the cursor stops filling at the cut;
* ``element`` — stateful/short-circuit chains that cannot chunk fall
  back to a lazy ``pull_iterator`` drain.

``try_split`` is supported only when both sides are op-free cursors over
equal-size midpoint-splitting sources (list/range): both prefixes then
cover exactly ``floor(n/2)`` elements, so the split stays aligned.
Anything else stays sequential — a zip of *transformed* sides must drain
in lockstep and cannot be partitioned without materializing.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Callable, Sequence

import numpy as np

from repro.streams.ops import (
    CHUNK_SIZE,
    MapOp,
    Op,
    PeekOp,
    Sink,
    pull_iterator,
    select_mode,
    wrap_ops,
)
from repro.streams.spliterator import (
    UNKNOWN_SIZE,
    Characteristics,
    Spliterator,
)
from repro.streams.spliterators import ListSpliterator, RangeSpliterator


class _PendingSink(Sink):
    """Terminal of a cursor's fused chain: parks output in the queue."""

    __slots__ = ("_cursor",)

    def __init__(self, cursor: "_ZipCursor") -> None:
        self._cursor = cursor

    def accept(self, item: Any) -> None:
        cursor = self._cursor
        cursor._pending.append([item])
        cursor._buffered += 1

    def accept_chunk(self, chunk: Sequence) -> None:
        if len(chunk):
            cursor = self._cursor
            cursor._pending.append(chunk)
            cursor._buffered += len(chunk)


class _BufferSink(Sink):
    """Per-element terminal for the ``element`` fallback mode."""

    __slots__ = ("_buffer",)

    def __init__(self, buffer: deque) -> None:
        self._buffer = buffer

    def accept(self, item: Any) -> None:
        self._buffer.append(item)


class _ZipCursor:
    """One side of a zip: a fused pipeline drained on demand.

    ``available(k)`` buffers until at least ``k`` outputs are pending (or
    the side is exhausted) and returns the buffered count; ``take(n)``
    removes exactly ``n`` outputs as one sequence, slicing queued chunks
    without per-element copies where possible (ndarray views, range
    slices).
    """

    __slots__ = (
        "_spliterator", "ops", "mode", "_pending", "_buffered",
        "_exhausted", "_sink", "_iter", "_chunk_size",
    )

    def __init__(
        self,
        spliterator: Spliterator,
        ops: list[Op] | None = None,
        chunk_size: int = CHUNK_SIZE,
    ) -> None:
        from repro.streams.fusion import maybe_fuse

        self._spliterator = spliterator
        self.ops = maybe_fuse(list(ops) if ops else [])
        self._pending: deque = deque()
        self._buffered = 0
        self._exhausted = False
        self._sink: Sink | None = None
        self._iter = None
        self._chunk_size = chunk_size
        if not self.ops:
            self.mode = "direct"
        elif select_mode(self.ops) == "chunked":
            self.mode = "chunked"
            self._sink = wrap_ops(self.ops, _PendingSink(self))
            self._sink.begin(spliterator.get_exact_size_if_known())
        else:
            self.mode = "element"
            buffer: deque = deque()
            sink = wrap_ops(self.ops, _BufferSink(buffer))
            sink.begin(spliterator.get_exact_size_if_known())
            self._iter = pull_iterator(spliterator, sink, buffer)

    def available(self, k: int) -> int:
        while self._buffered < k and not self._exhausted:
            self._fill_once(k)
        return self._buffered

    def _fill_once(self, k: int) -> None:
        if self.mode == "direct":
            chunk = self._spliterator.next_chunk(max(k, self._chunk_size))
            if chunk is None or len(chunk) == 0:
                self._exhausted = True
                return
            self._pending.append(chunk)
            self._buffered += len(chunk)
        elif self.mode == "chunked":
            sink = self._sink
            if sink.cancellation_requested():
                # A counted kernel (fused limit) hit its cut.
                self._exhausted = True
                sink.end()
                return
            chunk = self._spliterator.next_chunk(self._chunk_size)
            if chunk is None or len(chunk) == 0:
                self._exhausted = True
                sink.end()  # flush terminal barriers (e.g. sorted)
                return
            sink.accept_chunk(chunk)
        else:
            batch = list(itertools.islice(self._iter, k - self._buffered))
            if not batch:
                self._exhausted = True
                return
            self._pending.append(batch)
            self._buffered += len(batch)

    def take(self, n: int) -> Sequence:
        if n <= 0:
            return ()
        parts = []
        need = n
        pending = self._pending
        while need:
            chunk = pending[0]
            size = len(chunk)
            if size <= need:
                parts.append(chunk)
                need -= size
                pending.popleft()
            else:
                parts.append(chunk[:need])
                pending[0] = chunk[need:]
                need = 0
        self._buffered -= n
        if len(parts) == 1:
            return parts[0]
        if all(isinstance(p, np.ndarray) for p in parts):
            return np.concatenate(parts)
        flat: list = []
        for p in parts:
            flat.extend(p)
        return flat

    def splittable(self) -> bool:
        return (
            self.mode == "direct"
            and not self._pending
            and not self._exhausted
            and isinstance(
                self._spliterator, (ListSpliterator, RangeSpliterator)
            )
        )

    def projected_size(self) -> int:
        """Remaining output count, or ``UNKNOWN_SIZE``.

        Folds the source's exact size through size-preserving stages
        (maps/peeks, and fused kernels via their window projection); any
        size-changing stage makes the side unknown.
        """
        from repro.streams.fusion import FusedOp

        size = self._spliterator.get_exact_size_if_known()
        if size < 0:
            return UNKNOWN_SIZE
        for op in self.ops:
            if isinstance(op, FusedOp):
                size = op._project_size(size)
            elif type(op) in (MapOp, PeekOp):
                pass
            else:
                size = -1
            if size < 0:
                return UNKNOWN_SIZE
        return size + self._buffered

    def describe(self) -> dict:
        """Plan entry for ``Stream.explain()``."""
        stages: list = []
        for op in self.ops:
            if hasattr(op, "describe"):
                d = op.describe()
                stages.append(
                    {"fused": d["stages"], "kernel": d["kernel"]}
                )
            else:
                stages.append(type(op).__name__.removesuffix("Op").lower())
        return {"mode": self.mode, "stages": stages}


class ZipSpliterator(Spliterator):
    """Lockstep pair source over two :class:`_ZipCursor` sides."""

    __slots__ = ("_left", "_right", "_combine", "_is_ufunc")

    def __init__(
        self,
        left: _ZipCursor,
        right: _ZipCursor,
        combine: Callable | None = None,
    ) -> None:
        self._left = left
        self._right = right
        self._combine = combine
        self._is_ufunc = isinstance(combine, np.ufunc)

    def next_chunk(self, max_size: int) -> Sequence:
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        n = min(
            self._left.available(max_size),
            self._right.available(max_size),
            max_size,
        )
        if n <= 0:
            return ()
        a = self._left.take(n)
        b = self._right.take(n)
        combine = self._combine
        if combine is None:
            return list(zip(a, b))
        if (
            self._is_ufunc
            and isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
        ):
            return combine(a, b)
        return list(map(combine, a, b))

    def try_advance(self, action: Callable) -> bool:
        if self._left.available(1) < 1 or self._right.available(1) < 1:
            return False
        a = self._left.take(1)[0]
        b = self._right.take(1)[0]
        action((a, b) if self._combine is None else self._combine(a, b))
        return True

    def for_each_remaining(self, action: Callable) -> None:
        # Chunked drain: one take-pair per CHUNK_SIZE window instead of
        # two queue operations per element.
        while True:
            chunk = self.next_chunk(CHUNK_SIZE)
            if len(chunk) == 0:
                return
            for item in chunk:
                action(item)

    def try_split(self) -> "ZipSpliterator | None":
        left, right = self._left, self._right
        if not left.splittable() or not right.splittable():
            return None
        size = left._spliterator.estimate_size()
        if size != right._spliterator.estimate_size() or size < 2:
            return None
        # Equal sizes + midpoint splitters → both prefixes are exactly
        # floor(size/2) elements, so the pairing stays aligned.
        ls = left._spliterator.try_split()
        rs = right._spliterator.try_split()
        if ls is None or rs is None:
            return None
        return ZipSpliterator(_ZipCursor(ls), _ZipCursor(rs), self._combine)

    def estimate_size(self) -> int:
        a = self._left.projected_size()
        b = self._right.projected_size()
        if a == UNKNOWN_SIZE or b == UNKNOWN_SIZE:
            return UNKNOWN_SIZE
        return min(a, b)

    def characteristics(self) -> Characteristics:
        flags = Characteristics.ORDERED | Characteristics.IMMUTABLE
        if self.estimate_size() != UNKNOWN_SIZE:
            flags |= Characteristics.SIZED | Characteristics.SUBSIZED
        return flags

    def describe(self) -> dict:
        """Plan entry for ``Stream.explain()``."""
        if self._combine is None:
            combine = "pairs"
        elif self._is_ufunc:
            combine = "ufunc"
        else:
            combine = getattr(self._combine, "__name__", "callable")
        return {
            "kind": "zip",
            "combine": combine,
            "left": self._left.describe(),
            "right": self._right.describe(),
        }
