"""``StreamSupport`` — low-level stream creation from spliterators.

The paper's code creates streams directly from its specialized spliterators::

    myStream = StreamSupport.stream(sp_it, true);

This module reproduces that entry point.
"""

from __future__ import annotations

from typing import Iterable, TypeVar

from repro.streams.spliterator import Spliterator
from repro.streams.spliterators import spliterator_of
from repro.streams.stream import Stream

T = TypeVar("T")


class StreamSupport:
    """Namespace class mirroring ``java.util.stream.StreamSupport``."""

    @staticmethod
    def stream(spliterator: Spliterator, parallel: bool = False) -> Stream:
        """Create a stream driven by ``spliterator``.

        Args:
            spliterator: the source; its ``try_split`` directs parallel
                decomposition, exactly as in Java.
            parallel: True for a parallel stream.
        """
        stream = Stream(spliterator)
        return stream.parallel() if parallel else stream


def stream_of(source: Iterable[T], parallel: bool = False) -> Stream:
    """Convenience: a stream over any iterable (``Collection.stream()``)."""
    return StreamSupport.stream(spliterator_of(source), parallel)
