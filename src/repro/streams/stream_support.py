"""``StreamSupport`` — low-level stream creation from spliterators.

The paper's code creates streams directly from its specialized spliterators::

    myStream = StreamSupport.stream(sp_it, true);

This module reproduces that entry point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, TypeVar

from repro.streams.spliterator import Spliterator
from repro.streams.spliterators import spliterator_of
from repro.streams.stream import Stream

if TYPE_CHECKING:  # pragma: no cover
    from repro.forkjoin.pool import ForkJoinPool

T = TypeVar("T")


class StreamSupport:
    """Namespace class mirroring ``java.util.stream.StreamSupport``."""

    @staticmethod
    def stream(
        spliterator: Spliterator,
        parallel: bool = False,
        pool: "ForkJoinPool | None" = None,
        target_size: "int | str | None" = None,
        backend: str | None = None,
    ) -> Stream:
        """Create a stream driven by ``spliterator``.

        Args:
            spliterator: the source; its ``try_split`` directs parallel
                decomposition, exactly as in Java.
            parallel: True for a parallel stream.
            pool: run parallel terminals on this pool instead of the
                common pool (shorthand for ``.with_pool(pool)``).
            target_size: override the split threshold (shorthand for
                ``.with_target_size(n)``); the string ``'auto'`` selects
                the adaptive split policy for this stream.
            backend: execution backend for parallel terminals (shorthand
                for ``.with_backend(name)``): ``'threads'``, ``'process'``
                or ``'sequential'``.
        """
        stream = Stream(spliterator)
        if parallel:
            stream = stream.parallel()
        if pool is not None:
            stream = stream.with_pool(pool)
        if target_size is not None:
            stream = stream.with_target_size(target_size)
        if backend is not None:
            stream = stream.with_backend(backend)
        return stream


def stream_of(
    source: Iterable[T],
    parallel: bool = False,
    pool: "ForkJoinPool | None" = None,
    target_size: "int | str | None" = None,
    backend: str | None = None,
) -> Stream:
    """Convenience: a stream over any iterable (``Collection.stream()``)."""
    return StreamSupport.stream(
        spliterator_of(source), parallel, pool, target_size, backend
    )
