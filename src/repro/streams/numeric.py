"""Numeric stream helpers — the ``IntStream``/``DoubleStream`` surface.

Java specializes streams over primitives with extra terminals
(``average``, ``summaryStatistics``, ``toArray``) and conversions
(``boxed``, ``mapToObj``, ``asDoubleStream``).  Python has no primitive
specialization, so :class:`NumericStream` is a thin wrapper adding the
numeric terminal set over any stream of numbers, plus numpy array output.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.streams.optional import Optional
from repro.streams.statistics import SummaryStatistics, summarizing
from repro.streams.stream import Stream


class NumericStream:
    """A stream of numbers with the numeric terminal operations.

    Wraps a :class:`~repro.streams.stream.Stream`; intermediate ops
    return NumericStream so chains stay in the numeric world, and
    :meth:`boxed` drops back to the generic stream.
    """

    __slots__ = ("_stream",)

    def __init__(self, stream: Stream) -> None:
        self._stream = stream

    # -- factories ---------------------------------------------------------- #

    @staticmethod
    def of(source: Iterable[float]) -> "NumericStream":
        """A numeric stream over any iterable of numbers."""
        return NumericStream(Stream.of_iterable(source))

    @staticmethod
    def range(lo: int, hi: int) -> "NumericStream":
        """``IntStream.range`` equivalent."""
        return NumericStream(Stream.range(lo, hi))

    @staticmethod
    def range_closed(lo: int, hi: int) -> "NumericStream":
        """``IntStream.rangeClosed`` equivalent."""
        return NumericStream(Stream.range_closed(lo, hi))

    # -- mode / intermediate ops (stay numeric) ----------------------------- #

    def parallel(self) -> "NumericStream":
        """Parallel mode."""
        return NumericStream(self._stream.parallel())

    def with_pool(self, pool) -> "NumericStream":
        """Use a specific fork/join pool."""
        return NumericStream(self._stream.with_pool(pool))

    def map(self, f: Callable[[float], float]) -> "NumericStream":
        """Numeric-to-numeric transform."""
        return NumericStream(self._stream.map(f))

    def filter(self, predicate: Callable[[float], bool]) -> "NumericStream":
        """Keep matching numbers."""
        return NumericStream(self._stream.filter(predicate))

    def limit(self, n: int) -> "NumericStream":
        """Truncate to ``n`` elements."""
        return NumericStream(self._stream.limit(n))

    def skip(self, n: int) -> "NumericStream":
        """Drop the first ``n`` elements."""
        return NumericStream(self._stream.skip(n))

    def distinct(self) -> "NumericStream":
        """Drop duplicates."""
        return NumericStream(self._stream.distinct())

    def sorted(self) -> "NumericStream":
        """Ascending order."""
        return NumericStream(self._stream.sorted())

    # -- conversions --------------------------------------------------------- #

    def boxed(self) -> Stream:
        """The underlying generic stream (``IntStream.boxed``)."""
        return self._stream

    def map_to_obj(self, f: Callable[[float], object]) -> Stream:
        """Numeric-to-object transform, leaving the numeric world."""
        return self._stream.map(f)

    def as_float_stream(self) -> "NumericStream":
        """Coerce every element to float (``asDoubleStream``)."""
        return NumericStream(self._stream.map(float))

    # -- numeric terminals ---------------------------------------------------- #

    def sum(self) -> float:
        """Sum (0 when empty)."""
        return self._stream.sum()

    def min(self) -> Optional:
        """Minimum as an Optional."""
        return self._stream.min()

    def max(self) -> Optional:
        """Maximum as an Optional."""
        return self._stream.max()

    def count(self) -> int:
        """Element count."""
        return self._stream.count()

    def average(self) -> Optional:
        """Arithmetic mean as an Optional (empty for an empty stream)."""
        stats = self.summary_statistics()
        if stats.count == 0:
            return Optional.empty()
        return Optional.of(stats.mean)

    def summary_statistics(self) -> SummaryStatistics:
        """Count/sum/min/max/mean in a single pass."""
        return self._stream.collect(summarizing())

    def to_array(self, dtype=np.float64) -> np.ndarray:
        """Collect into a numpy array (``toArray``)."""
        return np.asarray(self._stream.to_list(), dtype=dtype)

    def __iter__(self):
        return iter(self._stream)
