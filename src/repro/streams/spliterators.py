"""Stock spliterator implementations over common sources.

These mirror the spliterators the JDK supplies for collections: a
random-access list spliterator that splits at the midpoint (the "linear
segments" default the paper likens to ``tie``), a range spliterator, a
batching iterator spliterator for sources of unknown size, and an empty
spliterator.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

from repro.common import check_range, is_power_of_two
from repro.streams.spliterator import (
    UNKNOWN_SIZE,
    Characteristics,
    Spliterator,
)

T = TypeVar("T")

_SIZED_FLAGS = (
    Characteristics.ORDERED
    | Characteristics.SIZED
    | Characteristics.SUBSIZED
)


class ListSpliterator(Spliterator[T]):
    """Spliterator over a random-access sequence slice ``[origin, fence)``.

    ``try_split`` hands off the first half, exactly like
    ``java.util.Spliterators.ArraySpliterator`` — a *tie*-style linear
    segmentation.  When the covered length is a power of two the
    ``POWER2`` characteristic is advertised (and preserved by splits,
    since halving an even power-of-two length yields powers of two).
    """

    __slots__ = ("_source", "_index", "_fence", "_extra")

    def __init__(
        self,
        source: Sequence[T],
        origin: int = 0,
        fence: int | None = None,
        extra_characteristics: Characteristics = Characteristics.NONE,
    ) -> None:
        if fence is None:
            fence = len(source)
        check_range(origin, fence, len(source))
        self._source = source
        self._index = origin
        self._fence = fence
        self._extra = extra_characteristics

    def try_advance(self, action: Callable[[T], None]) -> bool:
        if self._index < self._fence:
            item = self._source[self._index]
            self._index += 1
            action(item)
            return True
        return False

    def for_each_remaining(self, action: Callable[[T], None]) -> None:
        source = self._source
        for i in range(self._index, self._fence):
            action(source[i])
        self._index = self._fence

    def next_chunk(self, max_size: int) -> Sequence[T]:
        """One slice of the backing sequence — zero-copy for numpy arrays
        (a view), a single C-level copy for lists/tuples."""
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        lo = self._index
        hi = min(self._fence, lo + max_size)
        if lo >= hi:
            return ()
        self._index = hi
        return self._source[lo:hi]

    def try_split(self) -> "ListSpliterator[T] | None":
        lo, hi = self._index, self._fence
        mid = (lo + hi) >> 1
        if lo >= mid:
            return None
        self._index = mid
        return ListSpliterator(self._source, lo, mid, self._extra)

    def estimate_size(self) -> int:
        return self._fence - self._index

    def characteristics(self) -> Characteristics:
        flags = _SIZED_FLAGS | Characteristics.IMMUTABLE | self._extra
        if is_power_of_two(self._fence - self._index):
            flags |= Characteristics.POWER2
        return flags


class ArraySpliterator(ListSpliterator[T]):
    """Alias of :class:`ListSpliterator` for numpy arrays / array-likes.

    Provided for parity with Java's distinct ``ArraySpliterator``; numpy
    1-D arrays satisfy the same random-access protocol.
    """


class RangeSpliterator(Spliterator[int]):
    """Spliterator over a half-open integer interval ``[lo, hi)``.

    Equivalent to ``IntStream.range``'s ``RangeIntSpliterator``.
    """

    __slots__ = ("_lo", "_hi")

    def __init__(self, lo: int, hi: int) -> None:
        if hi < lo:
            raise ValueError(f"empty-range bounds reversed: [{lo}, {hi})")
        self._lo = lo
        self._hi = hi

    def try_advance(self, action: Callable[[int], None]) -> bool:
        if self._lo < self._hi:
            value = self._lo
            self._lo += 1
            action(value)
            return True
        return False

    def for_each_remaining(self, action: Callable[[int], None]) -> None:
        for value in range(self._lo, self._hi):
            action(value)
        self._lo = self._hi

    def next_chunk(self, max_size: int) -> Sequence[int]:
        """A ``range`` object — truly zero-copy; downstream bulk consumers
        (``map``/``extend``) iterate it at C speed."""
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        lo = self._lo
        hi = min(self._hi, lo + max_size)
        if lo >= hi:
            return range(0)
        self._lo = hi
        return range(lo, hi)

    def try_split(self) -> "RangeSpliterator | None":
        lo, hi = self._lo, self._hi
        mid = (lo + hi) >> 1
        if lo >= mid:
            return None
        self._lo = mid
        return RangeSpliterator(lo, mid)

    def estimate_size(self) -> int:
        return self._hi - self._lo

    def characteristics(self) -> Characteristics:
        flags = (
            _SIZED_FLAGS
            | Characteristics.IMMUTABLE
            | Characteristics.DISTINCT
            | Characteristics.SORTED
            | Characteristics.NONNULL
        )
        if is_power_of_two(self._hi - self._lo):
            flags |= Characteristics.POWER2
        return flags


class IteratorSpliterator(Spliterator[T]):
    """Spliterator over an arbitrary iterator, of possibly unknown size.

    Like ``java.util.Spliterators.IteratorSpliterator``, ``try_split``
    materializes an arithmetically growing batch as a prefix — the only
    sound way to split a one-shot source.
    """

    BATCH_UNIT = 1 << 10
    MAX_BATCH = 1 << 25

    __slots__ = ("_iterator", "_size_estimate", "_batch")

    def __init__(self, iterator: Iterator[T], size_estimate: int = UNKNOWN_SIZE) -> None:
        self._iterator = iterator
        self._size_estimate = size_estimate
        self._batch = 0

    def try_advance(self, action: Callable[[T], None]) -> bool:
        try:
            item = next(self._iterator)
        except StopIteration:
            return False
        if self._size_estimate != UNKNOWN_SIZE and self._size_estimate > 0:
            self._size_estimate -= 1
        action(item)
        return True

    def for_each_remaining(self, action: Callable[[T], None]) -> None:
        for item in self._iterator:
            action(item)
        self._size_estimate = 0

    def next_chunk(self, max_size: int) -> Sequence[T]:
        """A buffered batch of up to ``max_size`` elements (``islice``)."""
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        buffer = list(itertools.islice(self._iterator, max_size))
        if self._size_estimate != UNKNOWN_SIZE:
            self._size_estimate = max(0, self._size_estimate - len(buffer))
        return buffer

    def try_split(self) -> "Spliterator[T] | None":
        batch_size = min(
            self._batch + self.BATCH_UNIT,
            self.MAX_BATCH,
            self._size_estimate
            if self._size_estimate != UNKNOWN_SIZE
            else self.MAX_BATCH,
        )
        buffer: list[T] = []
        for _ in range(batch_size):
            try:
                buffer.append(next(self._iterator))
            except StopIteration:
                break
        if not buffer:
            return None
        self._batch = len(buffer)
        if self._size_estimate != UNKNOWN_SIZE:
            self._size_estimate = max(0, self._size_estimate - len(buffer))
        return ListSpliterator(buffer)

    def estimate_size(self) -> int:
        return self._size_estimate

    def characteristics(self) -> Characteristics:
        flags = Characteristics.ORDERED
        if self._size_estimate != UNKNOWN_SIZE:
            flags |= Characteristics.SIZED | Characteristics.SUBSIZED
        return flags


class EmptySpliterator(Spliterator[T]):
    """A spliterator over nothing."""

    def try_advance(self, action: Callable[[T], None]) -> bool:
        return False

    def try_split(self) -> None:
        return None

    def estimate_size(self) -> int:
        return 0

    def characteristics(self) -> Characteristics:
        return _SIZED_FLAGS


def spliterator_of(source: Iterable[T]) -> Spliterator[T]:
    """Create the natural spliterator for ``source``.

    Sequences get a random-access, midpoint-splitting
    :class:`ListSpliterator`; any other iterable falls back to a batching
    :class:`IteratorSpliterator`.
    """
    if isinstance(source, Spliterator):
        return source
    if hasattr(source, "__getitem__") and hasattr(source, "__len__"):
        return ListSpliterator(source)  # type: ignore[arg-type]
    if hasattr(source, "__len__"):
        return IteratorSpliterator(iter(source), len(source))  # type: ignore[arg-type]
    return IteratorSpliterator(iter(source))
