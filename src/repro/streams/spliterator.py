"""The ``Spliterator`` protocol — the engine of stream parallelism.

A spliterator traverses *and partitions* a source.  Sequential traversal
uses :meth:`Spliterator.try_advance` / :meth:`Spliterator.for_each_remaining`;
parallel decomposition repeatedly calls :meth:`Spliterator.try_split`, which
carves off a prefix of the remaining elements as a new spliterator.

Characteristics advertise structural properties of the source that the
pipeline may exploit.  We reproduce Java's flag set and add ``POWER2`` — the
paper's extension that marks a source whose remaining element count is an
exact power of two, the precondition for applying PowerList functions.
"""

from __future__ import annotations

import abc
from enum import IntFlag
from typing import Callable, Generic, Sequence, TypeVar

T = TypeVar("T")

#: Sentinel returned by :meth:`Spliterator.estimate_size` when unknown.
UNKNOWN_SIZE = (1 << 63) - 1  # Java's Long.MAX_VALUE


class Characteristics(IntFlag):
    """Structural properties a spliterator may advertise.

    The first eight match ``java.util.Spliterator``; ``POWER2`` is the
    paper's addition (Section IV-A): the number of remaining elements is an
    exact power of two, and every split halves it exactly.
    """

    NONE = 0
    ORDERED = 0x00000010
    DISTINCT = 0x00000001
    SORTED = 0x00000004
    SIZED = 0x00000040
    NONNULL = 0x00000100
    IMMUTABLE = 0x00000400
    CONCURRENT = 0x00001000
    SUBSIZED = 0x00004000
    #: Paper extension: remaining length is an exact power of two.
    POWER2 = 0x00010000


class Spliterator(abc.ABC, Generic[T]):
    """Abstract traversing-and-partitioning iterator over a source.

    Contract (mirroring Java):

    * :meth:`try_advance` performs the action on the next element if one
      exists and returns True, else returns False;
    * :meth:`try_split` either returns a new spliterator covering a strict
      prefix of this one's remaining elements (shrinking ``self`` to the
      suffix) or None when the source cannot or should not be split
      further;
    * after :meth:`try_split`, if the spliterator is ``SUBSIZED``, the sizes
      of the two parts must sum to the size before the split.
    """

    @abc.abstractmethod
    def try_advance(self, action: Callable[[T], None]) -> bool:
        """If an element remains, run ``action`` on it and return True."""

    @abc.abstractmethod
    def try_split(self) -> "Spliterator[T] | None":
        """Carve off a prefix as a new spliterator, or return None."""

    @abc.abstractmethod
    def estimate_size(self) -> int:
        """Estimated number of remaining elements (``UNKNOWN_SIZE`` if
        unknown)."""

    def characteristics(self) -> Characteristics:
        """The set of :class:`Characteristics` of this spliterator."""
        return Characteristics.NONE

    # -- default methods -------------------------------------------------- #

    def next_chunk(self, max_size: int) -> "Sequence[T]":
        """Advance past up to ``max_size`` elements, returning them as one
        sequence (empty when exhausted) — the paper's §V sublist idea as a
        pull protocol.

        Bulk execution (:func:`repro.streams.ops.copy_into_chunked`) drains a
        source with repeated ``next_chunk`` calls and hands each chunk to the
        fused sink chain as a single unit, so per-element Python call
        overhead is paid once per *chunk* per stage instead of once per
        element per stage.

        The default buffers via :meth:`try_advance` and therefore works for
        any spliterator; random-access sources override it with a zero-copy
        (or one-slice) window.  Implementations may return *more* than
        ``max_size`` elements only when the remainder is semantically
        indivisible (e.g. a PowerList leaf with a ``basic_case`` kernel).
        Chunks preserve encounter order.
        """
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        buffer: list[T] = []
        append = buffer.append
        advance = self.try_advance
        while len(buffer) < max_size and advance(append):
            pass
        return buffer

    def for_each_remaining(self, action: Callable[[T], None]) -> None:
        """Apply ``action`` to every remaining element, in encounter order.

        The default repeatedly calls :meth:`try_advance`.  Sources with
        random access override this with a tight loop; the paper notes that
        PowerList *basic cases on non-singleton leaves* are implemented
        precisely by overriding this method.
        """
        while self.try_advance(action):
            pass

    def has_characteristics(self, mask: Characteristics) -> bool:
        """True iff all flags in ``mask`` are advertised."""
        return (self.characteristics() & mask) == mask

    def get_exact_size_if_known(self) -> int:
        """The exact remaining count if ``SIZED``, else -1."""
        if self.has_characteristics(Characteristics.SIZED):
            return self.estimate_size()
        return -1
