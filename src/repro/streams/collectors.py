"""The stock collector library (``java.util.stream.Collectors``).

Factory functions producing :class:`~repro.streams.collector.Collector`
instances for the reductions every stream user reaches for: ``to_list``,
``joining``, ``grouping_by``, ``partitioning_by``, ``counting``, the
summing/averaging family, ``mapping``/``filtering`` adapters, and
``reducing``.

The word-concatenation example from the paper::

    Stream.of_items("a", "b", "c").parallel().collect(
        joining(", "))                      # -> "a, b, c"

exercises the combiner exactly as the paper's ``StringBuilder`` snippet
does: the separator between partial results appears only because parallel
execution routes through the combiner.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, TypeVar

from repro.common import IllegalStateError
from repro.streams.collector import (
    Collector,
    CollectorCharacteristics,
)
from repro.streams.optional import Optional

T = TypeVar("T")
U = TypeVar("U")
A = TypeVar("A")
R = TypeVar("R")
K = TypeVar("K", bound=Hashable)

_IDENTITY = CollectorCharacteristics.IDENTITY_FINISH
_IDENTITY_UNORDERED = (
    CollectorCharacteristics.IDENTITY_FINISH | CollectorCharacteristics.UNORDERED
)


def to_list() -> Collector[T, list[T], list[T]]:
    """Collect elements into a list, in encounter order."""

    def combine(a: list[T], b: list[T]) -> list[T]:
        a.extend(b)
        return a

    return Collector.of(
        list, lambda acc, t: acc.append(t), combine, None, _IDENTITY,
        chunk_accumulator=lambda acc, chunk: acc.extend(chunk),
    )


def to_set() -> Collector[T, set[T], set[T]]:
    """Collect elements into a set (unordered)."""

    def combine(a: set[T], b: set[T]) -> set[T]:
        a.update(b)
        return a

    return Collector.of(
        set, lambda acc, t: acc.add(t), combine, None, _IDENTITY_UNORDERED,
        chunk_accumulator=lambda acc, chunk: acc.update(chunk),
    )


def to_dict(
    key_fn: Callable[[T], K],
    value_fn: Callable[[T], U],
    merge_fn: Callable[[U, U], U] | None = None,
) -> Collector[T, dict[K, U], dict[K, U]]:
    """Collect into a dict; duplicate keys raise unless ``merge_fn`` given."""

    def put(acc: dict[K, U], t: T) -> None:
        key, value = key_fn(t), value_fn(t)
        if key in acc:
            if merge_fn is None:
                raise IllegalStateError(f"duplicate key: {key!r}")
            acc[key] = merge_fn(acc[key], value)
        else:
            acc[key] = value

    def combine(a: dict[K, U], b: dict[K, U]) -> dict[K, U]:
        for key, value in b.items():
            if key in a:
                if merge_fn is None:
                    raise IllegalStateError(f"duplicate key: {key!r}")
                a[key] = merge_fn(a[key], value)
            else:
                a[key] = value
        return a

    return Collector.of(dict, put, combine, None, _IDENTITY_UNORDERED)


def joining(
    separator: str = "", prefix: str = "", suffix: str = ""
) -> Collector[str, list[str], str]:
    """Concatenate strings with a separator (Java's ``Collectors.joining``).

    Uses a list-of-parts container (Python's ``StringBuilder`` idiom) and
    joins once in the finisher.
    """

    def combine(a: list[str], b: list[str]) -> list[str]:
        a.extend(b)
        return a

    return Collector.of(
        list,
        lambda acc, s: acc.append(s),
        combine,
        lambda acc: prefix + separator.join(acc) + suffix,
        CollectorCharacteristics.NONE,
        chunk_accumulator=lambda acc, chunk: acc.extend(chunk),
    )


def counting() -> Collector[T, list[int], int]:
    """Count elements."""

    def combine(a: list[int], b: list[int]) -> list[int]:
        a[0] += b[0]
        return a

    def accumulate(acc: list[int], _t: T) -> None:
        acc[0] += 1

    def accumulate_chunk(acc: list[int], chunk) -> None:
        acc[0] += len(chunk)

    return Collector.of(
        lambda: [0], accumulate, combine, lambda acc: acc[0],
        CollectorCharacteristics.UNORDERED,
        chunk_accumulator=accumulate_chunk,
    )


def summing(value_fn: Callable[[T], float] = lambda t: t) -> Collector[T, list, float]:
    """Sum ``value_fn`` over the elements."""

    def accumulate(acc: list, t: T) -> None:
        acc[0] += value_fn(t)

    def combine(a: list, b: list) -> list:
        a[0] += b[0]
        return a

    def accumulate_chunk(acc: list, chunk) -> None:
        # One C-level sum per chunk; same left-to-right association as the
        # per-element fold (exact for ints; floats may differ only in the
        # grouping of additions across chunk boundaries).
        acc[0] += sum(map(value_fn, chunk))

    return Collector.of(
        lambda: [0], accumulate, combine, lambda acc: acc[0],
        CollectorCharacteristics.UNORDERED,
        chunk_accumulator=accumulate_chunk,
    )


def averaging(
    value_fn: Callable[[T], float] = lambda t: t,
) -> Collector[T, list, float]:
    """Arithmetic mean of ``value_fn`` over the elements (0.0 when empty)."""

    def accumulate(acc: list, t: T) -> None:
        acc[0] += value_fn(t)
        acc[1] += 1

    def combine(a: list, b: list) -> list:
        a[0] += b[0]
        a[1] += b[1]
        return a

    def accumulate_chunk(acc: list, chunk) -> None:
        acc[0] += sum(map(value_fn, chunk))
        acc[1] += len(chunk)

    return Collector.of(
        lambda: [0.0, 0],
        accumulate,
        combine,
        lambda acc: acc[0] / acc[1] if acc[1] else 0.0,
        CollectorCharacteristics.UNORDERED,
        chunk_accumulator=accumulate_chunk,
    )


def min_by(key: Callable[[T], Any] = lambda t: t) -> Collector[T, list, Optional[T]]:
    """Minimum element by ``key`` as an :class:`Optional`."""
    return _extreme_by(key, invert=False)


def max_by(key: Callable[[T], Any] = lambda t: t) -> Collector[T, list, Optional[T]]:
    """Maximum element by ``key`` as an :class:`Optional`."""
    return _extreme_by(key, invert=True)


def _extreme_by(key: Callable[[T], Any], invert: bool) -> Collector[T, list, Optional[T]]:
    def better(a: T, b: T) -> T:
        if invert:
            return a if key(a) >= key(b) else b
        return a if key(a) <= key(b) else b

    def accumulate(acc: list, t: T) -> None:
        if not acc:
            acc.append(t)
        else:
            acc[0] = better(acc[0], t)

    def combine(a: list, b: list) -> list:
        if not a:
            return b
        if b:
            a[0] = better(a[0], b[0])
        return a

    return Collector.of(
        list,
        accumulate,
        combine,
        lambda acc: Optional.of(acc[0]) if acc else Optional.empty(),
        CollectorCharacteristics.UNORDERED,
    )


def mapping(
    f: Callable[[T], U], downstream: Collector[U, A, R]
) -> Collector[T, A, R]:
    """Adapt a collector by pre-applying ``f`` to each element."""
    down_acc = downstream.accumulator()
    return Collector.of(
        downstream.supplier(),
        lambda acc, t: down_acc(acc, f(t)),
        downstream.combiner(),
        downstream.finisher(),
        downstream.characteristics(),
    )


def filtering(
    predicate: Callable[[T], bool], downstream: Collector[T, A, R]
) -> Collector[T, A, R]:
    """Adapt a collector by dropping elements failing ``predicate``."""
    down_acc = downstream.accumulator()

    def accumulate(acc: A, t: T) -> None:
        if predicate(t):
            down_acc(acc, t)

    return Collector.of(
        downstream.supplier(),
        accumulate,
        downstream.combiner(),
        downstream.finisher(),
        downstream.characteristics(),
    )


def flat_mapping(
    f: Callable[[T], Iterable[U]], downstream: Collector[U, A, R]
) -> Collector[T, A, R]:
    """Adapt a collector by exploding each element into many."""
    down_acc = downstream.accumulator()

    def accumulate(acc: A, t: T) -> None:
        for item in f(t):
            down_acc(acc, item)

    return Collector.of(
        downstream.supplier(),
        accumulate,
        downstream.combiner(),
        downstream.finisher(),
        downstream.characteristics(),
    )


def grouping_by(
    classifier: Callable[[T], K],
    downstream: Collector[T, A, R] | None = None,
) -> Collector[T, dict, dict[K, R]]:
    """Group elements by ``classifier``; optionally reduce each group.

    Without a downstream collector, groups are lists (Java's default).
    """
    if downstream is None:
        downstream = to_list()  # type: ignore[assignment]
    down_supplier = downstream.supplier()
    down_acc = downstream.accumulator()
    down_combine = downstream.combiner()
    down_finish = downstream.finisher()
    identity_finish = bool(
        downstream.characteristics() & CollectorCharacteristics.IDENTITY_FINISH
    )

    def accumulate(acc: dict, t: T) -> None:
        key = classifier(t)
        container = acc.get(key)
        if container is None:
            container = down_supplier()
            acc[key] = container
        down_acc(container, t)

    def combine(a: dict, b: dict) -> dict:
        for key, container in b.items():
            if key in a:
                a[key] = down_combine(a[key], container)
            else:
                a[key] = container
        return a

    def finish(acc: dict) -> dict[K, R]:
        if identity_finish:
            return acc
        return {key: down_finish(container) for key, container in acc.items()}

    return Collector.of(
        dict, accumulate, combine, finish,
        CollectorCharacteristics.UNORDERED
        | (CollectorCharacteristics.IDENTITY_FINISH if identity_finish
           else CollectorCharacteristics.NONE),
    )


def partitioning_by(
    predicate: Callable[[T], bool],
    downstream: Collector[T, A, R] | None = None,
) -> Collector[T, dict, dict[bool, R]]:
    """Split elements into the two groups ``{False: ..., True: ...}``."""
    grouped = grouping_by(predicate, downstream)
    base_finish = grouped.finisher()
    down = downstream if downstream is not None else to_list()

    def finish(acc: dict) -> dict[bool, R]:
        for key in (False, True):
            if key not in acc:
                acc[key] = down.supplier()()
        return base_finish(acc)

    return Collector.of(
        grouped.supplier(),
        grouped.accumulator(),
        grouped.combiner(),
        finish,
        CollectorCharacteristics.UNORDERED,
    )


def reducing(
    identity: U, mapper: Callable[[T], U], op: Callable[[U, U], U]
) -> Collector[T, list, U]:
    """Classic reduction as a collector: ``fold(op, identity, map(mapper))``."""

    def accumulate(acc: list, t: T) -> None:
        acc[0] = op(acc[0], mapper(t))

    def combine(a: list, b: list) -> list:
        a[0] = op(a[0], b[0])
        return a

    return Collector.of(
        lambda: [identity], accumulate, combine, lambda acc: acc[0],
        CollectorCharacteristics.NONE,
    )


def collecting_and_then(
    downstream: Collector[T, A, R], then: Callable[[R], U]
) -> Collector[T, A, U]:
    """Post-apply ``then`` to a collector's result
    (``Collectors.collectingAndThen``)."""
    down_finish = downstream.finisher()
    return Collector.of(
        downstream.supplier(),
        downstream.accumulator(),
        downstream.combiner(),
        lambda container: then(down_finish(container)),
        downstream.characteristics() & ~CollectorCharacteristics.IDENTITY_FINISH,
    )


def to_tuple() -> Collector[T, list[T], tuple]:
    """Collect into an immutable tuple (``toUnmodifiableList`` analogue)."""
    return collecting_and_then(to_list(), tuple)


def to_frozenset() -> Collector[T, set[T], frozenset]:
    """Collect into a frozenset (``toUnmodifiableSet`` analogue)."""
    return collecting_and_then(to_set(), frozenset)


def summarizing(value_fn: Callable[[T], float] = lambda t: t):
    """Count/sum/min/max/mean in one pass — see
    :mod:`repro.streams.statistics` (Java's ``summarizingInt`` family)."""
    from repro.streams.statistics import summarizing as _summarizing

    return _summarizing(value_fn)


def tee(
    first: Collector[T, Any, R],
    second: Collector[T, Any, U],
    merger: Callable[[R, U], Any],
) -> Collector[T, list, Any]:
    """Feed every element to two collectors and merge their results
    (Java 12's ``Collectors.teeing``)."""
    acc1, acc2 = first.accumulator(), second.accumulator()
    comb1, comb2 = first.combiner(), second.combiner()
    fin1, fin2 = first.finisher(), second.finisher()
    sup1, sup2 = first.supplier(), second.supplier()

    def accumulate(acc: list, t: T) -> None:
        acc1(acc[0], t)
        acc2(acc[1], t)

    def combine(a: list, b: list) -> list:
        a[0] = comb1(a[0], b[0])
        a[1] = comb2(a[1], b[1])
        return a

    return Collector.of(
        lambda: [sup1(), sup2()],
        accumulate,
        combine,
        lambda acc: merger(fin1(acc[0]), fin2(acc[1])),
        CollectorCharacteristics.NONE,
    )
