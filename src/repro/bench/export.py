"""CSV export of experiment series — for plotting outside this repo.

``python -m repro.bench`` prints text tables; downstream users who want
to re-plot Figures 3–4 feed the CSV forms to their plotting stack.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Sequence

from repro.common import IllegalArgumentError


def rows_to_csv(rows: Sequence[dict]) -> str:
    """Render a list of uniform row dicts as CSV text (header included)."""
    if not rows:
        raise IllegalArgumentError("no rows to export")
    fieldnames = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != fieldnames:
            raise IllegalArgumentError("rows have inconsistent columns")
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def export_series(rows: Sequence[dict], path: str | pathlib.Path) -> pathlib.Path:
    """Write a series to ``path`` as CSV; returns the resolved path."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rows_to_csv(rows))
    return target


def export_all(directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Write every figure/ablation series as CSV under ``directory``."""
    from repro.bench import figures

    series = {
        "fig3_fig4": figures.fig3_fig4_series(),
        "ab1_streams_vs_jplf": figures.ab1_streams_vs_jplf_series(),
        "ab2_fft": figures.ab2_fft_series(),
        "ab3_tie_vs_zip": figures.ab3_tie_vs_zip_series(),
        "ab4_threshold": figures.ab4_threshold_series(),
        "ab6_nway": figures.ab6_nway_series(),
    }
    base = pathlib.Path(directory)
    return [
        export_series(rows, base / f"{name}.csv") for name, rows in series.items()
    ]
