"""Series generators for every paper figure and ablation (DESIGN.md §2).

Each function returns plain row dictionaries; the benches render them with
:func:`repro.bench.reporting.format_table` and record the headline values
in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.mpi import CommModel, MpiExecutor
from repro.simcore import SimMachine, build_dc_dag, sequential_time, simulate_power_function, speedup
from repro.simcore.adapters import default_threshold, profile_model
from repro.simcore.costmodel import CostModel, polynomial_cost_model
from repro.simcore.dag import build_nway_dag

#: The paper's sweep: polynomial degrees 2^20 .. 2^26.
FIG34_SIZES = [2**k for k in range(20, 27)]
PAPER_CORES = 8


def fig3_fig4_series(
    workers: int = PAPER_CORES,
    anomaly: bool = True,
    sizes: list[int] | None = None,
) -> list[dict]:
    """Figures 3 and 4: speedup and execution times for polynomial value.

    One row per size with modeled sequential/parallel times (ms) and the
    speedup; ``anomaly`` injects the paper's 2^24 sequential dropout.
    """
    model = polynomial_cost_model(anomaly)
    rows = []
    for n in sizes if sizes is not None else FIG34_SIZES:
        seq_units = sequential_time(n, "polynomial", model)
        result = simulate_power_function(n, workers, "polynomial", model=model)
        rows.append(
            {
                "n": n,
                "log2_n": n.bit_length() - 1,
                "sequential_ms": model.to_ms(seq_units),
                "parallel_ms": model.to_ms(result.makespan),
                "speedup": speedup(seq_units, result.makespan),
                "workers": workers,
                "leaves": n // default_threshold(n, workers),
                "utilization": result.utilization,
            }
        )
    return rows


def ab1_streams_vs_jplf_series(
    sizes: list[int] | None = None, workers: int = PAPER_CORES
) -> list[dict]:
    """AB1: map/reduce — stream adaptation vs JPLF fork/join (virtual).

    JPLF's descending phase only re-views storage, while the stream
    adaptation pays spliterator bookkeeping per split; both share leaf and
    combine costs.  The claim under test: for simple-concatenation
    functions the two are *similar* (within a few percent).
    """
    if sizes is None:
        sizes = [2**k for k in range(16, 23)]
    rows = []
    for function in ("map", "reduce"):
        stream_model, operator = profile_model(function)
        jplf_model = replace(stream_model, split_overhead=stream_model.split_overhead * 0.75)
        for n in sizes:
            threshold = default_threshold(n, workers)
            stream_t = SimMachine(workers, stream_model.steal_latency).run(
                build_dc_dag(n, threshold, stream_model, operator)
            ).makespan
            jplf_t = SimMachine(workers, jplf_model.steal_latency).run(
                build_dc_dag(n, threshold, jplf_model, operator)
            ).makespan
            rows.append(
                {
                    "function": function,
                    "n": n,
                    "stream_ms": stream_model.to_ms(stream_t),
                    "jplf_ms": jplf_model.to_ms(jplf_t),
                    "ratio": stream_t / jplf_t,
                }
            )
    return rows


def ab2_fft_series(
    sizes: list[int] | None = None, workers: int = PAPER_CORES
) -> list[dict]:
    """AB2: FFT — sequential vs parallel stream adaptation vs JPLF."""
    if sizes is None:
        sizes = [2**k for k in range(10, 17)]
    base, operator = profile_model("fft")
    rows = []
    for n in sizes:
        log_n = n.bit_length() - 1
        # FFT is Θ(n log n): the sequential baseline does log2(n) passes.
        seq_units = base.seq_work_per_element * n * max(log_n, 1)
        threshold = default_threshold(n, workers)
        log_t = max(threshold.bit_length() - 1, 1)
        # A leaf runs a sequential sub-FFT of size t → t·log2(t) work; the
        # combine strands above it charge the remaining levels butterfly
        # by butterfly (combine_per_element × node size, per level).
        model = replace(base, work_per_element=base.work_per_element * log_t)
        par = SimMachine(workers, model.steal_latency).run(
            build_dc_dag(n, threshold, model, operator)
        )
        rows.append(
            {
                "n": n,
                "sequential_ms": model.to_ms(seq_units),
                "parallel_ms": model.to_ms(par.makespan),
                "speedup": seq_units / par.makespan,
                "combine_levels": log_n - (threshold.bit_length() - 1),
            }
        )
    return rows


def ab3_tie_vs_zip_series(
    sizes: list[int] | None = None,
    workers: int = PAPER_CORES,
    stride_penalty: float = 0.25,
) -> list[dict]:
    """AB3: tie vs zip memory access patterns under a cache-aware model.

    zip decomposition doubles the stride each level, losing spatial
    locality; tie keeps unit stride.  The paper predicts "linear or cyclic
    data distributions could lead to better performance" depending on the
    system — with a positive stride penalty, tie wins by a growing margin.
    """
    if sizes is None:
        sizes = [2**k for k in range(18, 23)]
    base = CostModel(stride_penalty=stride_penalty)
    model, _ = profile_model("map", base)
    rows = []
    for n in sizes:
        threshold = default_threshold(n, workers)
        machine = SimMachine(workers, model.steal_latency)
        tie_t = machine.run(build_dc_dag(n, threshold, model, "tie")).makespan
        zip_t = machine.run(build_dc_dag(n, threshold, model, "zip")).makespan
        rows.append(
            {
                "n": n,
                "tie_ms": model.to_ms(tie_t),
                "zip_ms": model.to_ms(zip_t),
                "zip_over_tie": zip_t / tie_t,
            }
        )
    return rows


def ab4_threshold_series(
    n: int = 2**16,
    workers: int = PAPER_CORES,
    leaf_logs: list[int] | None = None,
) -> list[dict]:
    """AB4: leaf-size sensitivity for polynomial value.

    Tiny leaves drown in per-node overhead; huge leaves starve the
    workers.  The sweet spot sits near Java's ``n/(4p)`` rule.
    """
    if leaf_logs is None:
        leaf_logs = list(range(0, 15, 2))
    model, operator = profile_model("polynomial")
    seq_units = sequential_time(n, "polynomial", model)
    rows = []
    for log_t in leaf_logs:
        threshold = min(2**log_t, n)
        result = SimMachine(workers, model.steal_latency).run(
            build_dc_dag(n, threshold, model, operator)
        )
        rows.append(
            {
                "leaf_size": threshold,
                "leaves": max(n // threshold, 1),
                "parallel_ms": model.to_ms(result.makespan),
                "speedup": speedup(seq_units, result.makespan),
                "steals": result.steals,
            }
        )
    return rows


def ab5_mpi_series(
    n: int = 2**20,
    rank_counts: list[int] | None = None,
    threads_per_rank: int = PAPER_CORES,
) -> list[dict]:
    """AB5: simulated-MPI scalability of reduce beyond one node."""
    from repro.jplf import JplfReduce
    from repro.powerlist import PowerList

    if rank_counts is None:
        rank_counts = [1, 2, 4, 8, 16, 32, 64]
    comm = CommModel(alpha=2000, beta=0.002)
    model, _ = profile_model("reduce")
    single_node = simulate_power_function(n, threads_per_rank, "reduce").makespan
    data = list(range(n))
    rows = []
    for ranks in rank_counts:
        ex = MpiExecutor(
            ranks=ranks,
            threads_per_rank=threads_per_rank,
            comm=comm,
            operator_profile="reduce",
        )
        report = ex.execute(JplfReduce(PowerList(data), lambda a, b: a + b))
        rows.append(
            {
                "ranks": ranks,
                "cores_total": ranks * threads_per_rank,
                "time_ms": model.to_ms(report.finish_time),
                "vs_single_node": single_node / report.finish_time,
                "scatter_ms": model.to_ms(report.scatter_time),
                "local_ms": model.to_ms(report.local_time),
            }
        )
    return rows


def ab6_nway_series(
    workers: int = PAPER_CORES,
    configs: list[tuple[int, int]] | None = None,
) -> list[dict]:
    """AB6: PList n-way divide-and-conquer vs binary, matched sizes.

    Higher arity flattens the tree (fewer split/combine levels) at the
    price of coarser steal granularity.
    """
    if configs is None:
        configs = [(2**12, 2), (2**12, 4), (2**12, 8), (3**8, 3), (6**5, 6)]
    model, _ = profile_model("map")
    rows = []
    for n, arity in configs:
        threshold = max(n // (arity * workers), 1)
        dag = build_nway_dag(n, threshold, model, arity)
        result = SimMachine(workers, model.steal_latency).run(dag)
        seq_units = model.sequential_cost(n)
        rows.append(
            {
                "n": n,
                "arity": arity,
                "levels": _levels(n, threshold, arity),
                "parallel_ms": model.to_ms(result.makespan),
                "speedup": speedup(seq_units, result.makespan),
            }
        )
    return rows


def _levels(n: int, threshold: int, arity: int) -> int:
    levels = 0
    while n > threshold and n % arity == 0 and n >= arity:
        n //= arity
        levels += 1
    return levels
