"""Seeded workload generators for benchmarks and examples.

The paper evaluates polynomial evaluation over random coefficient lists of
degrees 2^20..2^26; these helpers produce such inputs reproducibly.
"""

from __future__ import annotations

import random

from repro.common import check_positive


def random_coefficients(n: int, seed: int = 2020, lo: float = -1.0, hi: float = 1.0) -> list[float]:
    """``n`` uniform floats in ``[lo, hi)`` — polynomial coefficients.

    Coefficients bounded by 1 keep |value| finite for |x| ≤ 1, matching
    how such benchmarks avoid overflow at degree 2^26.
    """
    check_positive(n, "n")
    rng = random.Random(seed)
    return [rng.uniform(lo, hi) for _ in range(n)]


def random_complex_signal(n: int, seed: int = 2020) -> list[complex]:
    """``n`` complex samples with components in ``[-1, 1)`` (FFT input)."""
    check_positive(n, "n")
    rng = random.Random(seed)
    return [complex(rng.uniform(-1, 1), rng.uniform(-1, 1)) for _ in range(n)]


def random_integers(n: int, seed: int = 2020, lo: int = 0, hi: int = 10**6) -> list[int]:
    """``n`` uniform integers in ``[lo, hi]`` (sorting/reduce input)."""
    check_positive(n, "n")
    rng = random.Random(seed)
    return [rng.randint(lo, hi) for _ in range(n)]
