"""Regenerate every figure/ablation table without pytest.

Usage::

    python -m repro.bench               # all experiments → stdout
    python -m repro.bench fig3 ab4      # a subset
    python -m repro.bench --calibrated  # FIG3/FIG4 with measured constants
    python -m repro.bench --out DIR     # also write one .txt per table
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.bench.figures import (
    ab1_streams_vs_jplf_series,
    ab2_fft_series,
    ab3_tie_vs_zip_series,
    ab4_threshold_series,
    ab5_mpi_series,
    ab6_nway_series,
    fig3_fig4_series,
)
from repro.bench.reporting import format_table


def _fig3(calibrated: bool) -> str:
    model = None
    if calibrated:
        from dataclasses import replace

        from repro.simcore.calibrate import calibrate_polynomial_model

        model = replace(
            calibrate_polynomial_model(), sequential_anomaly={2**24: 1 / 3}
        )
    rows = fig3_fig4_series(workers=8, anomaly=True) if model is None else _series_with(model)
    title = "FIG3: polynomial-value speedup, 8 simulated cores" + (
        " (calibrated constants)" if calibrated else ""
    )
    return format_table(
        ["log2(n)", "sequential_ms", "parallel_ms", "speedup"],
        [[r["log2_n"], r["sequential_ms"], r["parallel_ms"], r["speedup"]] for r in rows],
        title,
    )


def _series_with(model) -> list[dict]:
    from repro.bench.figures import FIG34_SIZES
    from repro.simcore import sequential_time, simulate_power_function, speedup

    rows = []
    for n in FIG34_SIZES:
        seq = sequential_time(n, "polynomial", model)
        result = simulate_power_function(n, 8, "polynomial", model=model)
        rows.append(
            {
                "log2_n": n.bit_length() - 1,
                "sequential_ms": model.to_ms(seq),
                "parallel_ms": model.to_ms(result.makespan),
                "speedup": speedup(seq, result.makespan),
            }
        )
    return rows


def _fig4(calibrated: bool) -> str:
    rows = fig3_fig4_series(workers=8, anomaly=True)
    return format_table(
        ["log2(n)", "sequential_ms", "parallel_ms"],
        [[r["log2_n"], r["sequential_ms"], r["parallel_ms"]] for r in rows],
        "FIG4: polynomial-value execution times (modeled ms)",
    )


EXPERIMENTS = {
    "fig3": lambda args: _fig3(args.calibrated),
    "fig4": lambda args: _fig4(args.calibrated),
    "ab1": lambda args: format_table(
        ["function", "n", "stream_ms", "jplf_ms", "ratio"],
        [[r["function"], r["n"], r["stream_ms"], r["jplf_ms"], r["ratio"]]
         for r in ab1_streams_vs_jplf_series()],
        "AB1: stream adaptation vs JPLF",
    ),
    "ab2": lambda args: format_table(
        ["n", "sequential_ms", "parallel_ms", "speedup"],
        [[r["n"], r["sequential_ms"], r["parallel_ms"], r["speedup"]]
         for r in ab2_fft_series()],
        "AB2: FFT",
    ),
    "ab3": lambda args: format_table(
        ["n", "tie_ms", "zip_ms", "zip/tie"],
        [[r["n"], r["tie_ms"], r["zip_ms"], r["zip_over_tie"]]
         for r in ab3_tie_vs_zip_series()],
        "AB3: tie vs zip locality",
    ),
    "ab4": lambda args: format_table(
        ["leaf_size", "leaves", "parallel_ms", "speedup"],
        [[r["leaf_size"], r["leaves"], r["parallel_ms"], r["speedup"]]
         for r in ab4_threshold_series()],
        "AB4: leaf-size sweep",
    ),
    "ab5": lambda args: format_table(
        ["ranks", "cores", "time_ms", "vs_single_node"],
        [[r["ranks"], r["cores_total"], r["time_ms"], r["vs_single_node"]]
         for r in ab5_mpi_series()],
        "AB5: simulated MPI scaling",
    ),
    "ab6": lambda args: format_table(
        ["n", "arity", "levels", "speedup"],
        [[r["n"], r["arity"], r["levels"], r["speedup"]]
         for r in ab6_nway_series()],
        "AB6: PList n-way",
    ),
    "ab8": lambda args: _ab8(),
}


def _ab8() -> str:
    from repro.simcore import CostModel, SimMachine, build_dc_dag

    rows = []
    for policy in ("round_robin", "random"):
        for latency in (0.0, 50.0, 500.0):
            dag = build_dc_dag(2**20, 2**15, CostModel(), "zip")
            result = SimMachine(8, steal_latency=latency,
                                steal_policy=policy).run(dag)
            rows.append([policy, latency, result.makespan, result.steals])
    return format_table(
        ["steal_policy", "steal_latency", "makespan", "steals"], rows,
        "AB8: scheduler ablation",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"subset of {sorted(EXPERIMENTS)} (default: all)")
    parser.add_argument("--calibrated", action="store_true",
                        help="rebase FIG3 constants on measured wall-clock")
    parser.add_argument("--out", type=pathlib.Path, default=None,
                        help="directory to write one .txt per table")
    parser.add_argument("--csv", type=pathlib.Path, default=None,
                        help="directory to export all series as CSV")
    args = parser.parse_args(argv)

    if args.csv is not None:
        from repro.bench.export import export_all

        for path in export_all(args.csv):
            print(f"[csv] {path}")

    names = args.experiments or sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        table = EXPERIMENTS[name](args)
        print(table, end="\n\n")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(table + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
