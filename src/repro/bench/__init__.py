"""Benchmark harness: workload generators, repetition, figure series.

The modules here generate the data behind every table/figure bench in
``benchmarks/`` (see DESIGN.md §2 for the experiment index):

* :mod:`repro.bench.workloads` — seeded input generators;
* :mod:`repro.bench.harness`   — repetition/averaging and wall-clock
  timing (the paper averages 5 runs per point);
* :mod:`repro.bench.figures`   — the series for FIG3/FIG4 and AB1–AB6;
* :mod:`repro.bench.reporting` — fixed-width table rendering.
"""

from repro.bench.harness import TimingResult, repeat_average, time_call
from repro.bench.reporting import format_table, format_timing_table
from repro.bench.workloads import (
    random_coefficients,
    random_complex_signal,
    random_integers,
)

__all__ = [
    "TimingResult",
    "format_table",
    "format_timing_table",
    "random_coefficients",
    "random_complex_signal",
    "random_integers",
    "repeat_average",
    "time_call",
]
