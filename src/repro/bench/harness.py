"""Timing helpers: wall-clock measurement with the paper's 5-run averaging.

Beyond the mean the paper reports, :class:`TimingResult` keeps every raw
sample plus min/median/stddev — a mean alone hides warm-up outliers and
bimodality, which is exactly what the per-sample columns in
:func:`repro.bench.reporting.format_timing_table` exist to show.

Any measurement can also dump a real-execution trace:
``repeat_average(fn, trace="run.json")`` performs one extra traced run
(outside the timed samples, so tracing overhead never pollutes them) and
writes Chrome trace-event JSON loadable in Perfetto.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence, TypeVar

from repro.common import check_positive

T = TypeVar("T")


@dataclass(frozen=True)
class TimingResult:
    """Aggregated wall-clock timings of repeated calls (seconds)."""

    mean: float
    stdev: float
    minimum: float
    runs: int
    median: float = 0.0
    maximum: float = 0.0
    samples: tuple[float, ...] = field(default=())

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def median_ms(self) -> float:
        return self.median * 1e3

    @property
    def min_ms(self) -> float:
        return self.minimum * 1e3

    @property
    def stdev_ms(self) -> float:
        return self.stdev * 1e3

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "TimingResult":
        """Aggregate raw per-run samples (seconds) into a result."""
        if not samples:
            raise ValueError("at least one sample required")
        return TimingResult(
            mean=statistics.fmean(samples),
            stdev=statistics.stdev(samples) if len(samples) > 1 else 0.0,
            minimum=min(samples),
            runs=len(samples),
            median=statistics.median(samples),
            maximum=max(samples),
            samples=tuple(samples),
        )


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def repeat_average(
    fn: Callable[[], T],
    runs: int = 5,
    trace: str | Path | None = None,
    trace_capacity: int = 1 << 16,
) -> TimingResult:
    """Average ``fn``'s wall-clock over ``runs`` executions.

    Five runs per point is the paper's protocol ("we performed 5 runs of
    tests and we averaged the obtained results").

    Args:
        trace: when given, one *additional* (untimed) execution runs with
            the :mod:`repro.obs` tracer enabled and a Chrome trace-event
            JSON is written to this path.  The timed samples are always
            collected with tracing disabled, so the trace never perturbs
            the numbers it explains.
        trace_capacity: ring-buffer size for the traced run.
    """
    check_positive(runs, "runs")
    samples = []
    for _ in range(runs):
        _, elapsed = time_call(fn)
        samples.append(elapsed)
    if trace is not None:
        from repro.obs.export import write_chrome_trace
        from repro.obs.tracer import tracing

        with tracing(capacity=trace_capacity) as tracer:
            fn()
        write_chrome_trace(trace, tracer.spans())
    return TimingResult.from_samples(samples)
