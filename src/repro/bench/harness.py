"""Timing helpers: wall-clock measurement with the paper's 5-run averaging."""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.common import check_positive

T = TypeVar("T")


@dataclass(frozen=True)
class TimingResult:
    """Aggregated wall-clock timings of repeated calls (seconds)."""

    mean: float
    stdev: float
    minimum: float
    runs: int

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def repeat_average(fn: Callable[[], T], runs: int = 5) -> TimingResult:
    """Average ``fn``'s wall-clock over ``runs`` executions.

    Five runs per point is the paper's protocol ("we performed 5 runs of
    tests and we averaged the obtained results").
    """
    check_positive(runs, "runs")
    samples = []
    for _ in range(runs):
        _, elapsed = time_call(fn)
        samples.append(elapsed)
    return TimingResult(
        mean=statistics.fmean(samples),
        stdev=statistics.stdev(samples) if runs > 1 else 0.0,
        minimum=min(samples),
        runs=runs,
    )
