"""Timing helpers: wall-clock measurement with the paper's 5-run averaging.

Beyond the mean the paper reports, :class:`TimingResult` keeps every raw
sample plus min/median/stddev — a mean alone hides warm-up outliers and
bimodality, which is exactly what the per-sample columns in
:func:`repro.bench.reporting.format_timing_table` exist to show.

Any measurement can also dump a real-execution trace:
``repeat_average(fn, trace="run.json")`` performs one extra traced run
(outside the timed samples, so tracing overhead never pollutes them) and
writes Chrome trace-event JSON loadable in Perfetto.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence, TypeVar

from repro.common import check_positive

T = TypeVar("T")


@dataclass(frozen=True)
class TimingResult:
    """Aggregated wall-clock timings of repeated calls (seconds)."""

    mean: float
    stdev: float
    minimum: float
    runs: int
    median: float = 0.0
    maximum: float = 0.0
    samples: tuple[float, ...] = field(default=())

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def median_ms(self) -> float:
        return self.median * 1e3

    @property
    def min_ms(self) -> float:
        return self.minimum * 1e3

    @property
    def stdev_ms(self) -> float:
        return self.stdev * 1e3

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "TimingResult":
        """Aggregate raw per-run samples (seconds) into a result."""
        if not samples:
            raise ValueError("at least one sample required")
        return TimingResult(
            mean=statistics.fmean(samples),
            stdev=statistics.stdev(samples) if len(samples) > 1 else 0.0,
            minimum=min(samples),
            runs=len(samples),
            median=statistics.median(samples),
            maximum=max(samples),
            samples=tuple(samples),
        )


def time_call(fn: Callable[[], T]) -> tuple[T, float]:
    """Run ``fn`` once; return (result, elapsed seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def repeat_average(
    fn: Callable[[], T],
    runs: int = 5,
    trace: str | Path | None = None,
    trace_capacity: int | None = None,
    profile: str | Path | None = None,
    profile_sample: int | None = None,
) -> TimingResult:
    """Average ``fn``'s wall-clock over ``runs`` executions.

    Five runs per point is the paper's protocol ("we performed 5 runs of
    tests and we averaged the obtained results").

    Args:
        trace: when given, one *additional* (untimed) execution runs with
            the :mod:`repro.obs` tracer enabled and a Chrome trace-event
            JSON is written to this path.  The timed samples are always
            collected with tracing disabled, so the trace never perturbs
            the numbers it explains.
        trace_capacity: ring-buffer size for the traced run (defaults to
            :data:`repro.obs.DEFAULT_TRACE_CAPACITY`).
        profile: when given, one *additional* (untimed) execution runs
            under :func:`repro.obs.profiled` and the run profile is
            written to this path — as JSON (``RunProfile.to_dict()``)
            when the path ends in ``.json``, as the text report
            otherwise.  Like ``trace``, the profiled run is outside the
            timed samples.  If ``trace`` is also given, both observers
            share a single extra run and the Chrome trace is enriched
            with the profile.
        profile_sample: traversal sampling rate for the profiled run
            (defaults to :data:`repro.obs.DEFAULT_PROFILE_SAMPLE`).
    """
    check_positive(runs, "runs")
    samples = []
    for _ in range(runs):
        _, elapsed = time_call(fn)
        samples.append(elapsed)
    if trace is not None or profile is not None:
        _observed_run(fn, trace, trace_capacity, profile, profile_sample)
    return TimingResult.from_samples(samples)


def _observed_run(
    fn: Callable[[], T],
    trace: str | Path | None,
    trace_capacity: int | None,
    profile: str | Path | None,
    profile_sample: int | None,
) -> None:
    """One extra execution under the requested observers (tracer/profiler)."""
    import contextlib
    import json

    from repro.obs.export import write_chrome_trace
    from repro.obs.profile import profiled
    from repro.obs.tracer import tracing

    with contextlib.ExitStack() as stack:
        tracer = None
        run_profile = None
        if trace is not None:
            tracer = stack.enter_context(tracing(capacity=trace_capacity))
        if profile is not None:
            run_profile = stack.enter_context(profiled(sample=profile_sample))
        fn()
    if trace is not None:
        write_chrome_trace(
            trace, tracer.spans(), dropped=tracer.dropped, profile=run_profile
        )
    if profile is not None:
        path = Path(profile)
        if path.suffix == ".json":
            path.write_text(json.dumps(run_profile.to_dict(), indent=1) + "\n")
        else:
            path.write_text(run_profile.report() + "\n")
