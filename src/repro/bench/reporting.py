"""Fixed-width table rendering for bench output."""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import TimingResult


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table (numbers right-aligned)."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(value.rjust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def format_timing_table(
    rows: Sequence[tuple[str, TimingResult]],
    title: str | None = None,
) -> str:
    """Render named :class:`TimingResult`s with the full sample statistics.

    One row per (name, result): mean/median/min/stddev in milliseconds
    plus the run count — the columns the mean-only tables used to hide.
    """
    return format_table(
        ["case", "mean_ms", "median_ms", "min_ms", "stdev_ms", "runs"],
        [
            [name, t.mean_ms, t.median_ms, t.min_ms, t.stdev_ms, t.runs]
            for name, t in rows
        ],
        title=title,
    )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
