"""Execution-trace analysis and ASCII Gantt rendering.

The simulator returns a full trace; these helpers turn it into the
artifacts a performance engineer actually reads — per-worker timelines,
busy/idle breakdowns, and per-strand-kind accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import IllegalArgumentError
from repro.simcore.machine import SimResult

#: Glyph per strand kind in the Gantt rendering.
_KIND_GLYPH = {"split": "s", "leaf": "#", "combine": "c"}


@dataclass(frozen=True)
class WorkerSummary:
    """Aggregate activity of one virtual worker."""

    worker: int
    busy: float
    idle: float
    strands: int
    steals: int
    by_kind: dict

    @property
    def utilization(self) -> float:
        total = self.busy + self.idle
        return self.busy / total if total > 0 else 1.0


def summarize_workers(result: SimResult) -> list[WorkerSummary]:
    """Per-worker busy/idle/steal statistics over the whole run."""
    summaries = []
    for worker in range(result.workers):
        entries = [t for t in result.trace if t.worker == worker]
        busy = sum(t.end - t.start for t in entries)
        by_kind: dict[str, float] = {}
        for t in entries:
            by_kind[t.kind] = by_kind.get(t.kind, 0.0) + (t.end - t.start)
        summaries.append(
            WorkerSummary(
                worker=worker,
                busy=busy,
                idle=result.makespan - busy,
                strands=len(entries),
                steals=sum(1 for t in entries if t.stolen),
                by_kind=by_kind,
            )
        )
    return summaries


def kind_breakdown(result: SimResult) -> dict:
    """Total time per strand kind across all workers."""
    out: dict[str, float] = {}
    for t in result.trace:
        out[t.kind] = out.get(t.kind, 0.0) + (t.end - t.start)
    return out


def render_gantt(result: SimResult, width: int = 72) -> str:
    """An ASCII Gantt chart: one row per worker, time left to right.

    ``s`` = split, ``#`` = leaf, ``c`` = combine, ``.`` = idle; uppercase
    marks a stolen strand's first cell.
    """
    if width < 10:
        raise IllegalArgumentError("width must be >= 10")
    if result.makespan <= 0:
        return "(empty trace)"
    scale = width / result.makespan
    rows = []
    for worker in range(result.workers):
        cells = ["."] * width
        for t in result.trace:
            if t.worker != worker:
                continue
            lo = min(int(t.start * scale), width - 1)
            hi = min(max(int(t.end * scale), lo + 1), width)
            glyph = _KIND_GLYPH.get(t.kind, "?")
            for i in range(lo, hi):
                cells[i] = glyph
            if t.stolen:
                cells[lo] = cells[lo].upper()
        rows.append(f"w{worker:<2} |{''.join(cells)}|")
    legend = "     s=split  #=leaf  c=combine  .=idle  UPPERCASE=stolen"
    header = f"makespan={result.makespan:.1f}  T1={result.total_work:.1f}  Tinf={result.critical_path:.1f}"
    return "\n".join([header, *rows, legend])
