"""Calibrating cost models from real measurements on this host.

The default :class:`~repro.simcore.costmodel.CostModel` encodes magnitude
*relations*; this module grounds the absolute scale by timing the real
implementation's primitive operations (no optimization without measuring
— the profiling-first rule of the guides):

* the per-element accumulator cost (a Horner step through the collector
  machinery);
* the per-split cost (one ``try_split`` of the specialized spliterator);
* the per-combine cost (one combiner call);
* the tuned sequential per-element cost.

``calibrate_polynomial_model()`` returns a :class:`CostModel` whose
``unit_ms`` converts virtual units into *this machine's* milliseconds, so
FIG3/FIG4 can be re-based on measured constants (`--calibrated` mode of
the benches' underlying series functions).
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.common import check_positive
from repro.simcore.costmodel import CostModel


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of several runs (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_sequential_per_element(n: int = 2**14, x: float = 0.999) -> float:
    """Seconds per element of the tuned sequential Horner loop."""
    check_positive(n, "n")
    coeffs = [1.0] * n

    def run():
        val = 0.0
        for c in coeffs:
            val = val * x + c
        return val

    return _best_of(run) / n


def measure_leaf_per_element(n: int = 2**12, x: float = 0.999) -> float:
    """Seconds per element through the collector accumulator path."""
    check_positive(n, "n")
    from repro.core.polynomial import PolynomialValue

    coeffs = [1.0] * n
    pv = PolynomialValue(x)
    accumulate = pv.accumulator()
    supply = pv.supplier()

    def run():
        box = supply()
        for c in coeffs:
            accumulate(box, c)
        return box.val

    return _best_of(run) / n


def measure_split_cost(n: int = 2**12) -> float:
    """Seconds for one specialized ``try_split`` (averaged over a full
    decomposition)."""
    from repro.core.polynomial import PolynomialValue

    pv = PolynomialValue(0.999)

    def run():
        splits = 0
        frontier = [pv.specialized_spliterator([0.0] * n)]
        while frontier:
            s = frontier.pop()
            prefix = s.try_split()
            if prefix is not None:
                splits += 1
                frontier.append(prefix)
                frontier.append(s)
        return splits

    total = _best_of(run)
    return total / max(n - 1, 1)


def measure_combine_cost(repeats: int = 2**10, x: float = 0.999) -> float:
    """Seconds for one combiner call of the polynomial collector."""
    from repro.core.polynomial import PolynomialValue, _PolyContainer

    combine = PolynomialValue(x).combiner()

    def run():
        for _ in range(repeats):
            a = _PolyContainer(x, 4)
            b = _PolyContainer(x, 4)
            combine(a, b)

    return _best_of(run) / repeats


def calibrate_polynomial_model(base: CostModel | None = None) -> CostModel:
    """A cost model whose constants come from this machine.

    Keeps the base model's *relative* shape for anything not measured
    (steal latency, stride penalty) and rescales:

    * ``unit_ms`` so one unit = the measured parallel-leaf element cost;
    * ``seq_work_per_element`` to the measured sequential/leaf ratio;
    * ``split_overhead``/``combine_overhead`` to their measured ratios.
    """
    if base is None:
        base = CostModel()
    leaf = measure_leaf_per_element()
    seq = measure_sequential_per_element()
    split = measure_split_cost()
    combine = measure_combine_cost()
    unit_seconds = leaf  # one cost unit == one leaf element
    return replace(
        base,
        work_per_element=1.0,
        seq_work_per_element=max(min(seq / leaf, 1.5), 0.05),
        split_overhead=split / unit_seconds,
        combine_overhead=combine / unit_seconds,
        fork_overhead=split / unit_seconds,  # scheduling ≈ split bookkeeping
        unit_ms=unit_seconds * 1e3,
    )
