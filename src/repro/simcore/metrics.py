"""Scheduling metrics and classical bound checks.

The simulator's results must respect the textbook work/span laws; the
property tests call :func:`greedy_bound_check` over random DAG shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simcore.machine import SimResult


def speedup(sequential_time: float, parallel_time: float) -> float:
    """``sequential / parallel`` — the quantity of the paper's Figure 3."""
    if parallel_time <= 0:
        raise ValueError("parallel time must be positive")
    return sequential_time / parallel_time


@dataclass(frozen=True)
class BoundReport:
    """Result of the work/span law checks for one simulated run."""

    work_law_ok: bool  # T_p >= T_1 / p
    span_law_ok: bool  # T_p >= T_inf
    greedy_ok: bool  # T_p <= T_1/p + T_inf   (exact for zero steal latency)
    t1: float
    tinf: float
    tp: float
    p: int

    @property
    def all_ok(self) -> bool:
        return self.work_law_ok and self.span_law_ok and self.greedy_ok


def greedy_bound_check(result: SimResult, tolerance: float = 1e-9) -> BoundReport:
    """Verify the work law, span law and greedy-scheduler upper bound.

    The greedy bound only holds when no worker idles while ready work
    exists; the machine satisfies this at zero steal latency, and with a
    latency ``L`` the bound loosens by ``L`` per critical-path steal —
    callers using nonzero latency should pass a proportional tolerance.
    """
    t1 = result.total_work
    tinf = result.critical_path
    tp = result.makespan
    p = result.workers
    return BoundReport(
        work_law_ok=tp + tolerance >= t1 / p,
        span_law_ok=tp + tolerance >= tinf,
        greedy_ok=tp <= t1 / p + tinf + tolerance,
        t1=t1,
        tinf=tinf,
        tp=tp,
        p=p,
    )


def trace_is_consistent(result: SimResult) -> bool:
    """No worker executes two strands at once and times are monotone."""
    by_worker: dict[int, list] = {}
    for entry in result.trace:
        by_worker.setdefault(entry.worker, []).append(entry)
    for entries in by_worker.values():
        entries.sort(key=lambda e: e.start)
        for a, b in zip(entries, entries[1:]):
            if b.start < a.end - 1e-9:
                return False
    return True
