"""The deterministic work-stealing scheduler over strand DAGs.

The machine mirrors the real pool's discipline:

* completing a ``split`` pushes the forked (left) subtree entry on the
  worker's own deque and continues into the right subtree inline;
* a ``combine`` runs as the continuation of the worker that satisfies its
  last dependency (the "last finisher" rule — the helping-join
  approximation);
* an idle worker pops its own deque LIFO, then steals FIFO from the first
  non-empty victim in deterministic id order, paying ``steal_latency``.

Everything is deterministic: the event queue is keyed ``(time, sequence)``
and ties break by worker id, so a given (dag, workers, latency) triple
always yields the identical trace — the property the reproducibility tests
pin down.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.common import IllegalArgumentError
from repro.simcore.dag import StrandDag


@dataclass
class TraceEntry:
    """One scheduled strand execution."""

    worker: int
    sid: int
    kind: str
    start: float
    end: float
    stolen: bool


@dataclass
class SimResult:
    """Outcome of one simulated execution."""

    makespan: float
    total_work: float
    critical_path: float
    workers: int
    steals: int
    trace: list[TraceEntry] = field(repr=False, default_factory=list)

    @property
    def utilization(self) -> float:
        """Busy time over total worker-time."""
        if self.makespan <= 0:
            return 1.0
        return self.total_work / (self.makespan * self.workers)

    def busy_time(self, worker: int) -> float:
        """Total busy time of one worker."""
        return sum(t.end - t.start for t in self.trace if t.worker == worker)


class SimMachine:
    """A fixed number of virtual workers executing strand DAGs.

    Args:
        workers: number of virtual cores.
        steal_latency: delay added when a worker starts a stolen strand.
        steal_policy: victim selection — ``"round_robin"`` (scan from the
            next worker id; the default, matching the real pool) or
            ``"random"`` (seeded uniform victim order, the
            Blumofe–Leiserson analysis model).  Both are deterministic.
        seed: RNG seed for the random policy.
    """

    def __init__(
        self,
        workers: int,
        steal_latency: float = 0.0,
        steal_policy: str = "round_robin",
        seed: int = 0,
    ) -> None:
        if workers < 1:
            raise IllegalArgumentError(f"workers must be >= 1, got {workers}")
        if steal_latency < 0:
            raise IllegalArgumentError("steal_latency must be >= 0")
        if steal_policy not in ("round_robin", "random"):
            raise IllegalArgumentError(
                f"steal_policy must be round_robin or random, got {steal_policy!r}"
            )
        self.workers = workers
        self.steal_latency = steal_latency
        self.steal_policy = steal_policy
        self.seed = seed

    def run(self, dag: StrandDag) -> SimResult:
        """Schedule ``dag`` and return the deterministic result."""
        strands = dag.strands
        n = len(strands)
        if n == 0:
            return SimResult(0.0, 0.0, 0.0, self.workers, 0)

        indegree = [len(s.deps) for s in strands]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for strand in strands:
            for dep in strand.deps:
                dependents[dep].append(strand.sid)

        deques: list[deque[int]] = [deque() for _ in range(self.workers)]
        busy = [False] * self.workers
        done = [False] * n
        trace: list[TraceEntry] = []
        steals = 0
        completed = 0

        # Event queue of strand completions: (end_time, seq, worker, sid, stolen)
        events: list[tuple[float, int, int, int, bool]] = []
        seq = 0

        def start_strand(worker: int, sid: int, at: float, stolen: bool) -> None:
            nonlocal seq
            busy[worker] = True
            begin = at + (self.steal_latency if stolen else 0.0)
            heapq.heappush(
                events, (begin + strands[sid].cost, seq, worker, sid, stolen)
            )
            seq += 1
            trace.append(
                TraceEntry(worker, sid, strands[sid].kind, begin,
                           begin + strands[sid].cost, stolen)
            )

        import random as _random

        rng = _random.Random(self.seed)

        def victim_order(worker: int) -> list[int]:
            others = [(worker + offset) % self.workers
                      for offset in range(1, self.workers)]
            if self.steal_policy == "random":
                rng.shuffle(others)
            return others

        def try_acquire(worker: int, at: float) -> bool:
            """Idle worker looks for work: own deque, then steal."""
            nonlocal steals
            if deques[worker]:
                start_strand(worker, deques[worker].pop(), at, stolen=False)
                return True
            for victim in victim_order(worker):
                if deques[victim]:
                    steals += 1
                    start_strand(worker, deques[victim].popleft(), at, stolen=True)
                    return True
            return False

        # Bootstrap: worker 0 runs the root strand.
        start_strand(0, dag.root if dag.root is not None else 0, 0.0, stolen=False)

        makespan = 0.0
        while events:
            end_time, _, worker, sid, _ = heapq.heappop(events)
            makespan = max(makespan, end_time)
            busy[worker] = False
            done[sid] = True
            completed += 1
            strand = strands[sid]

            # Resolve newly ready strands.
            ready: list[int] = []
            for child in dependents[sid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)

            fork_set = [c for c in strand.forks if c in ready]
            other_ready = [c for c in ready if c not in strand.forks]

            inline_next: int | None = None
            if fork_set:
                # Push all but the last fork target; continue into the last.
                for child in fork_set[:-1]:
                    deques[worker].append(child)
                inline_next = fork_set[-1]
            for child in other_ready:
                if inline_next is None:
                    inline_next = child
                else:
                    deques[worker].append(child)

            if inline_next is not None:
                start_strand(worker, inline_next, end_time, stolen=False)
            else:
                try_acquire(worker, end_time)

            # Newly pushed work may feed idle workers.
            for idle in range(self.workers):
                if not busy[idle]:
                    try_acquire(idle, end_time)

        if completed != n:
            raise IllegalArgumentError(
                f"deadlocked DAG: only {completed}/{n} strands executed"
            )
        return SimResult(
            makespan=makespan,
            total_work=dag.total_work(),
            critical_path=dag.critical_path(),
            workers=self.workers,
            steals=steals,
            trace=trace,
        )
