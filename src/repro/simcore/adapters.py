"""Bridges from PowerList computations to the simulated machine.

:func:`simulate_power_function` produces the virtual parallel time of a
function with a given cost profile; :func:`sequential_time` the modeled
baseline.  The benches drive these for every figure/ablation.

Cost profiles capture the per-function shape knobs:

* ``map``      — per-element combine cost (containers are concatenated);
* ``reduce`` / ``polynomial`` — O(1) combine;
* ``fft``      — per-element combine (butterfly) and zip strides;
* ``descend``  — per-element split cost (Equation-5 family).
"""

from __future__ import annotations

from dataclasses import replace

from repro.common import IllegalArgumentError
from repro.simcore.costmodel import CostModel
from repro.simcore.dag import StrandDag, build_dc_dag
from repro.simcore.machine import SimMachine, SimResult

#: Named per-function cost-shape presets (see module docstring).
FUNCTION_PROFILES: dict[str, dict] = {
    "map": {"operator": "tie", "combine_per_element": 0.15},
    "map_zip": {"operator": "zip", "combine_per_element": 0.15},
    "reduce": {"operator": "tie", "combine_per_element": 0.0},
    "polynomial": {"operator": "zip", "combine_per_element": 0.0},
    "fft": {
        "operator": "zip",
        "combine_per_element": 0.6,
        "work_per_element": 1.4,
        "seq_work_per_element": 1.3,
    },
    "descend": {"operator": "tie", "descend_per_element": 0.5},
}


def profile_model(function: str, base: CostModel | None = None) -> tuple[CostModel, str]:
    """Resolve a named profile into ``(cost_model, operator)``."""
    if function not in FUNCTION_PROFILES:
        raise IllegalArgumentError(
            f"unknown function profile {function!r}; "
            f"choose one of {sorted(FUNCTION_PROFILES)}"
        )
    profile = dict(FUNCTION_PROFILES[function])
    operator = profile.pop("operator")
    model = base if base is not None else CostModel()
    model = replace(model, **profile)
    return model, operator


def default_threshold(n: int, workers: int) -> int:
    """Java's target size: ``max(n / (4·workers), 1)``."""
    return max(n // (4 * workers), 1)


def simulate_power_function(
    n: int,
    workers: int,
    function: str = "polynomial",
    threshold: int | None = None,
    model: CostModel | None = None,
    steal_latency: float | None = None,
) -> SimResult:
    """Simulate one parallel PowerList-function execution.

    Args:
        n: input length (any positive size; powers of two give the
            uniform trees of the theory).
        workers: virtual core count (the paper used 8).
        function: cost profile name from :data:`FUNCTION_PROFILES`.
        threshold: leaf size; defaults to Java's target-size rule.
        model: base cost model (profile knobs are overlaid).
        steal_latency: overrides the model's steal latency.

    Returns:
        the :class:`~repro.simcore.machine.SimResult` with virtual
        makespan, trace and metrics.
    """
    resolved, operator = profile_model(function, model)
    if threshold is None:
        threshold = default_threshold(n, workers)
    dag = build_dc_dag(n, threshold, resolved, operator)
    latency = resolved.steal_latency if steal_latency is None else steal_latency
    machine = SimMachine(workers, steal_latency=latency)
    return machine.run(dag)


def sequential_time(
    n: int,
    function: str = "polynomial",
    model: CostModel | None = None,
) -> float:
    """Modeled sequential-baseline time (with any configured anomaly)."""
    resolved, _ = profile_model(function, model)
    return resolved.sequential_cost(n)


def simulate_jplf(
    function,
    workers: int,
    profile: str = "reduce",
    threshold: int | None = None,
    model: CostModel | None = None,
):
    """Execute a JPLF :class:`~repro.jplf.power_function.PowerFunction`
    for real while predicting its parallel time on the virtual machine.

    The JPLF executor triple (sequential / fork-join / simulated) of
    DESIGN.md S5: this is the simulated leg.  Returns
    ``(result, SimResult)`` — the result is computed sequentially (so it
    is exact) and the :class:`~repro.simcore.machine.SimResult` carries
    the virtual parallel execution of the same decomposition.
    """
    from repro.jplf.executors import SequentialExecutor

    n = len(function.data)
    resolved, operator_kind = profile_model(profile, model)
    if threshold is None:
        threshold = max(n // (4 * workers), 1)
    # JPLF declares its own deconstruction operator; it overrides the
    # profile's default when present.
    operator = getattr(function, "operator", operator_kind)
    dag = build_dc_dag(n, threshold, resolved, operator)
    sim = SimMachine(workers, resolved.steal_latency).run(dag)
    result = SequentialExecutor(threshold=threshold).execute(function)
    return result, sim
