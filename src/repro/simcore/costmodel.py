"""Cost models for the simulated machine.

All costs are in abstract *time units*; reporting scales them to
milliseconds with :attr:`CostModel.unit_ms`.  The defaults are calibrated
to the magnitude relations that drive the paper's curves rather than to
any absolute hardware speed:

* leaf work dominates (per-element work ≫ per-node overheads);
* forking/splitting costs are per *node*, so they grow with the number of
  leaves — making too-small leaf sizes unprofitable (ablation AB4);
* the sequential baseline does slightly less per-element work than a
  parallel leaf (no spliterator bookkeeping);
* strided access can be penalized to model cache effects (ablation AB3);
* ``sequential_anomaly`` multiplies the *sequential* time for chosen input
  sizes — the explicit stand-in for the JVM's 2^24 optimization in
  Figures 3–4 (DESIGN.md §3, substitution 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual costs of a PowerList computation.

    Attributes:
        work_per_element: cost of processing one element in a parallel
            leaf (accumulator call, e.g. one Horner step).
        seq_work_per_element: cost of one element in the tuned sequential
            implementation (defaults slightly below the leaf cost).
        split_overhead: fixed cost of one ``try_split`` (descending
            phase), charged per interior node.
        descend_per_element: extra descending-phase cost per element at a
            split (0 for map/reduce; >0 for Equation-5 functions that
            transform the input while splitting).
        combine_overhead: fixed cost of one combiner call.
        combine_per_element: per-element combining cost for functions
            whose combiner touches every element (map's ``tie_all``/
            ``zip_all``, FFT's butterfly); 0 for scalar combiners
            (reduce, polynomial value).
        fork_overhead: cost of scheduling one forked task.
        steal_latency: extra delay a thief pays to start a stolen strand.
        stride_penalty: if > 0, element access at stride ``s`` costs
            ``1 + stride_penalty * min(log2(s), 6)`` times more — a
            cache-line/spatial-locality proxy used by ablation AB3.
        sequential_anomaly: map from input size to a multiplicative
            factor on the sequential time (< 1 models the JVM speeding
            the baseline up, as the paper reports at 2^24).
        unit_ms: milliseconds represented by one cost unit (reporting).
    """

    work_per_element: float = 1.0
    seq_work_per_element: float = 0.95
    split_overhead: float = 40.0
    descend_per_element: float = 0.0
    combine_overhead: float = 60.0
    combine_per_element: float = 0.0
    fork_overhead: float = 25.0
    steal_latency: float = 15.0
    stride_penalty: float = 0.0
    sequential_anomaly: Mapping[int, float] = field(default_factory=dict)
    unit_ms: float = 2e-5

    # -- derived cost queries -------------------------------------------- #

    def access_factor(self, stride: int) -> float:
        """Cost multiplier for touching elements at a given stride."""
        if self.stride_penalty <= 0.0 or stride <= 1:
            return 1.0
        return 1.0 + self.stride_penalty * min(math.log2(stride), 6.0)

    def leaf_cost(self, n: int, stride: int = 1) -> float:
        """Cost of a parallel leaf over ``n`` elements."""
        return n * self.work_per_element * self.access_factor(stride)

    def split_cost(self, n: int, stride: int = 1) -> float:
        """Cost of splitting a node of ``n`` elements (descending phase)."""
        cost = self.split_overhead + self.fork_overhead
        if self.descend_per_element:
            cost += n * self.descend_per_element * self.access_factor(stride)
        return cost

    def combine_cost(self, n: int) -> float:
        """Cost of combining a node's two sub-results (``n`` = node size)."""
        return self.combine_overhead + n * self.combine_per_element

    def sequential_cost(self, n: int, stride: int = 1) -> float:
        """Modeled run time of the tuned sequential implementation."""
        base = n * self.seq_work_per_element * self.access_factor(stride)
        return base * self.sequential_anomaly.get(n, 1.0)

    def to_ms(self, units: float) -> float:
        """Convert cost units to milliseconds."""
        return units * self.unit_ms


#: Model used for the Figure 3/4 reproduction: polynomial evaluation with
#: scalar combiners and the paper's 2^24 sequential anomaly (the sequential
#: time reported at 2^24 is ≈3× below trend; see paper Section V).
FIG34_COST_MODEL = CostModel(
    sequential_anomaly={2**24: 1.0 / 3.0},
)


def polynomial_cost_model(anomaly: bool = True) -> CostModel:
    """The cost model of the FIG3/FIG4 benches.

    Args:
        anomaly: include the 2^24 sequential-anomaly factor (both benches
            also print the anomaly-free series).
    """
    return CostModel(sequential_anomaly={2**24: 1.0 / 3.0} if anomaly else {})
