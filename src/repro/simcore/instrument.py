"""Instrumented execution: record a *real* decomposition, replay as a DAG.

``build_dc_dag`` predicts the decomposition shape analytically; this
module instead *observes* it.  :func:`record_decomposition` wraps any
spliterator so every ``try_split`` and leaf traversal is logged while a
real parallel ``collect`` runs; :func:`dag_from_recording` converts the
log into a :class:`~repro.simcore.dag.StrandDag` with costs from a
:class:`~repro.simcore.costmodel.CostModel`.

This closes the model-validation loop: an integration test asserts the
analytic DAG and the observed DAG agree (same leaves, same work) for the
standard spliterators — and for exotic sources (batching iterators,
n-way) the observed DAG is the ground truth to simulate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.common import IllegalStateError
from repro.simcore.costmodel import CostModel
from repro.simcore.dag import StrandDag
from repro.streams.spliterator import Spliterator


@dataclass
class _Node:
    """One node of the observed decomposition tree."""

    nid: int
    size_hint: int
    stride: int = 1
    children: list[int] = field(default_factory=list)  # [left(prefix), right(self)]
    leaf_elements: int | None = None


@dataclass
class Recording:
    """The observed decomposition of one execution."""

    nodes: list[_Node] = field(default_factory=list)

    @property
    def root(self) -> _Node:
        return self.nodes[0]

    def leaves(self) -> list[_Node]:
        """Nodes that traversed elements (no children)."""
        return [n for n in self.nodes if n.leaf_elements is not None]

    def splits(self) -> list[_Node]:
        """Nodes that split."""
        return [n for n in self.nodes if n.children]

    def total_elements(self) -> int:
        return sum(n.leaf_elements or 0 for n in self.nodes)


class RecordingSpliterator(Spliterator):
    """Wraps a spliterator, logging splits and leaf traversals."""

    def __init__(self, inner: Spliterator, recording: Recording,
                 node: _Node | None = None, _lock: threading.Lock | None = None) -> None:
        self._inner = inner
        self._recording = recording
        self._lock = _lock if _lock is not None else threading.Lock()
        if node is None:
            node = _Node(nid=0, size_hint=inner.estimate_size())
            recording.nodes.append(node)
        self._node = node
        self._elements = 0

    def try_advance(self, action) -> bool:
        advanced = self._inner.try_advance(action)
        if advanced:
            self._count(1)
        return advanced

    def for_each_remaining(self, action) -> None:
        count = [0]

        def counting(item):
            count[0] += 1
            action(item)

        self._inner.for_each_remaining(counting)
        self._count(count[0])

    def next_chunk(self, max_size):
        # Delegate so inner bulk semantics (basic_case kernels, strided
        # views) survive under chunked execution; count what was produced.
        chunk = self._inner.next_chunk(max_size)
        if chunk is not None and len(chunk):
            self._count(len(chunk))
        return chunk

    def _count(self, n: int) -> None:
        self._elements += n
        with self._lock:
            if self._node.leaf_elements is None:
                self._node.leaf_elements = 0
            self._node.leaf_elements += n

    def try_split(self):
        prefix = self._inner.try_split()
        if prefix is None:
            return None
        with self._lock:
            left = _Node(nid=len(self._recording.nodes),
                         size_hint=prefix.estimate_size(),
                         stride=getattr(prefix, "incr", 1))
            self._recording.nodes.append(left)
            right = _Node(nid=len(self._recording.nodes),
                          size_hint=self._inner.estimate_size(),
                          stride=getattr(self._inner, "incr", 1))
            self._recording.nodes.append(right)
            self._node.children = [left.nid, right.nid]
        new_self_node = right
        wrapped_prefix = RecordingSpliterator(
            prefix, self._recording, left, self._lock
        )
        self._node = new_self_node
        return wrapped_prefix

    def estimate_size(self) -> int:
        return self._inner.estimate_size()

    def characteristics(self):
        return self._inner.characteristics()


def record_decomposition(spliterator: Spliterator) -> tuple[RecordingSpliterator, Recording]:
    """Wrap ``spliterator`` for observation; returns (wrapped, recording)."""
    recording = Recording()
    return RecordingSpliterator(spliterator, recording), recording


def dag_from_recording(recording: Recording, model: CostModel) -> StrandDag:
    """Convert an observed decomposition into a schedulable strand DAG."""
    if not recording.nodes:
        raise IllegalStateError("empty recording")
    dag = StrandDag()

    def walk(nid: int, entry_dep: int | None) -> tuple[int, int]:
        node = recording.nodes[nid]
        if not node.children:
            elements = node.leaf_elements or 0
            leaf = dag.new_strand("leaf", model.leaf_cost(elements, node.stride),
                                  elements)
            if entry_dep is not None:
                leaf.deps.append(entry_dep)
            return leaf.sid, leaf.sid
        size = node.size_hint
        split = dag.new_strand("split", model.split_cost(size, node.stride), size)
        if entry_dep is not None:
            split.deps.append(entry_dep)
        left_entry, left_final = walk(node.children[0], split.sid)
        right_entry, right_final = walk(node.children[1], split.sid)
        combine = dag.new_strand("combine", model.combine_cost(size), size)
        combine.deps.extend((left_final, right_final))
        split.forks = [left_entry, right_entry]
        return split.sid, combine.sid

    _, final = walk(0, None)
    dag.root = 0
    dag.sink = final
    return dag
