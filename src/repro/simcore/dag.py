"""Strand DAGs: the unit of simulated scheduling.

A *strand* is a maximal run of sequential work (one split, one leaf
traversal, one combine).  A fork/join divide-and-conquer computation over
``n`` elements with leaf threshold ``t`` unrolls into the classic
series-parallel DAG::

          split(n)
          /      \\
      subtree   subtree          (recursively, until size ≤ t)
          \\      /
         combine(n)

:func:`build_dc_dag` constructs it from a :class:`~repro.simcore.costmodel.
CostModel`, tracking the element stride of each node so that zip-style
decomposition (stride doubling) can be charged differently from tie-style
(stride constant) — the lever behind ablation AB3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.common import IllegalArgumentError
from repro.simcore.costmodel import CostModel

StrandKind = Literal["split", "leaf", "combine"]


@dataclass
class Strand:
    """One schedulable unit of sequential work.

    Attributes:
        sid: dense strand id (index into the dag's strand list;
            dependencies always have smaller ids, so ids are a
            topological order).
        kind: ``"split"``, ``"leaf"`` or ``"combine"``.
        cost: duration in cost units.
        deps: ids of strands that must finish first.
        forks: ids of strands this strand *forks* when it completes; the
            first entry is pushed on the worker's deque (stealable) and
            the last is continued inline by the same worker — the
            fork-left/continue-right discipline of the real pool.
        size: node size in elements (diagnostics).
    """

    sid: int
    kind: StrandKind
    cost: float
    deps: list[int] = field(default_factory=list)
    forks: list[int] = field(default_factory=list)
    size: int = 0


class StrandDag:
    """A series-parallel strand DAG plus aggregate measures."""

    def __init__(self) -> None:
        self.strands: list[Strand] = []
        self.root: int | None = None
        self.sink: int | None = None

    def new_strand(self, kind: StrandKind, cost: float, size: int = 0) -> Strand:
        """Append a strand and return it."""
        strand = Strand(sid=len(self.strands), kind=kind, cost=cost, size=size)
        self.strands.append(strand)
        return strand

    def total_work(self) -> float:
        """``T_1``: the sum of every strand's cost."""
        return sum(s.cost for s in self.strands)

    def critical_path(self) -> float:
        """``T_∞``: the longest cost-weighted dependency chain.

        One forward pass over the (topologically ordered) strand list.
        """
        finish = [0.0] * len(self.strands)
        for strand in self.strands:
            start = max((finish[d] for d in strand.deps), default=0.0)
            finish[strand.sid] = start + strand.cost
        return max(finish, default=0.0)

    def leaf_count(self) -> int:
        """Number of leaf strands (parallel grain count)."""
        return sum(1 for s in self.strands if s.kind == "leaf")

    def critical_path_strands(self) -> list[int]:
        """The strand ids along one longest cost-weighted chain.

        The certificate behind ``critical_path()``: the returned chain's
        total cost equals ``T_∞``, giving the span law a checkable
        witness (and the profiler a target to shorten).
        """
        if not self.strands:
            return []
        finish = [0.0] * len(self.strands)
        argmax_dep: list[int | None] = [None] * len(self.strands)
        for strand in self.strands:
            best, best_dep = 0.0, None
            for dep in strand.deps:
                if finish[dep] > best:
                    best, best_dep = finish[dep], dep
            finish[strand.sid] = best + strand.cost
            argmax_dep[strand.sid] = best_dep
        tail = max(range(len(self.strands)), key=lambda i: finish[i])
        chain = []
        current: int | None = tail
        while current is not None:
            chain.append(current)
            current = argmax_dep[current]
        chain.reverse()
        return chain

    def validate(self) -> None:
        """Check topological ordering and fork consistency (test hook)."""
        for strand in self.strands:
            for dep in strand.deps:
                if dep >= strand.sid:
                    raise IllegalArgumentError(
                        f"strand {strand.sid} depends on later strand {dep}"
                    )
            for fork in strand.forks:
                if strand.sid not in self.strands[fork].deps:
                    raise IllegalArgumentError(
                        f"fork edge {strand.sid}->{fork} without dependency"
                    )


def build_dc_dag(
    n: int,
    threshold: int,
    model: CostModel,
    operator: str = "tie",
    stride: int = 1,
) -> StrandDag:
    """The strand DAG of a binary divide-and-conquer over ``n`` elements.

    Splitting stops when a node's size drops to ``threshold`` or below
    (Java's target-size rule).  ``operator`` selects the stride evolution:
    ``"tie"`` keeps the parent's stride in both children, ``"zip"``
    doubles it — feeding the cost model's stride penalty.
    """
    if n < 1:
        raise IllegalArgumentError(f"n must be >= 1, got {n}")
    if threshold < 1:
        raise IllegalArgumentError(f"threshold must be >= 1, got {threshold}")
    if operator not in ("tie", "zip"):
        raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")

    dag = StrandDag()

    def node(size: int, node_stride: int, entry_dep: int | None) -> tuple[int, int]:
        """Build the subtree; returns ``(entry_sid, final_sid)``."""
        if size <= threshold or size < 2:
            leaf = dag.new_strand("leaf", model.leaf_cost(size, node_stride), size)
            if entry_dep is not None:
                leaf.deps.append(entry_dep)
            return leaf.sid, leaf.sid

        split = dag.new_strand("split", model.split_cost(size, node_stride), size)
        if entry_dep is not None:
            split.deps.append(entry_dep)

        child_stride = node_stride * 2 if operator == "zip" else node_stride
        half = size // 2
        left_entry, left_final = node(half, child_stride, split.sid)
        right_entry, right_final = node(size - half, child_stride, split.sid)

        combine = dag.new_strand("combine", model.combine_cost(size), size)
        combine.deps.extend((left_final, right_final))

        # Fork-left (stealable), continue-right (inline).
        split.forks = [left_entry, right_entry]
        return split.sid, combine.sid

    _, final = node(n, stride, None)
    dag.root = 0
    dag.sink = final
    return dag


def build_nway_dag(
    n: int,
    threshold: int,
    model: CostModel,
    arity: int,
    operator: str = "tie",
) -> StrandDag:
    """The strand DAG of an ``arity``-way divide-and-conquer (PList, AB6).

    A node splits when its size exceeds ``threshold`` *and* is divisible
    by ``arity`` (mirroring :class:`~repro.core.nway.NWaySpliterator`);
    the splitting strand forks ``arity − 1`` stealable children and
    continues into the last.
    """
    if arity < 2:
        raise IllegalArgumentError(f"arity must be >= 2, got {arity}")
    if n < 1 or threshold < 1:
        raise IllegalArgumentError("n and threshold must be >= 1")
    if operator not in ("tie", "zip"):
        raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")

    dag = StrandDag()

    def node(size: int, node_stride: int, entry_dep: int | None) -> tuple[int, int]:
        if size <= threshold or size % arity != 0 or size < arity:
            leaf = dag.new_strand("leaf", model.leaf_cost(size, node_stride), size)
            if entry_dep is not None:
                leaf.deps.append(entry_dep)
            return leaf.sid, leaf.sid

        split = dag.new_strand("split", model.split_cost(size, node_stride), size)
        if entry_dep is not None:
            split.deps.append(entry_dep)

        child_stride = node_stride * arity if operator == "zip" else node_stride
        seg = size // arity
        entries, finals = [], []
        for _ in range(arity):
            entry, final = node(seg, child_stride, split.sid)
            entries.append(entry)
            finals.append(final)

        combine = dag.new_strand("combine", model.combine_cost(size), size)
        combine.deps.extend(finals)
        split.forks = entries
        return split.sid, combine.sid

    _, final = node(n, stride := 1, None)
    dag.root = 0
    dag.sink = final
    return dag
