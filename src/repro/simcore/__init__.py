"""A deterministic simulated parallel machine (DESIGN.md substitution S6).

The paper's evaluation ran on an 8-core JVM.  This host has one core and
CPython's GIL, so wall-clock speedup is unobservable; instead, parallel
executions are *simulated*: the same divide-and-conquer decomposition the
real fork/join pool performs is expressed as a DAG of sequential *strands*
(split / leaf / combine work), each strand is charged a cost from a
:class:`~repro.simcore.costmodel.CostModel`, and a deterministic
work-stealing scheduler places strands on N virtual workers.

Outputs are a virtual makespan, a full execution trace, and scheduling
metrics.  Classical bounds hold by construction and are asserted in tests:

    T_p ≥ T_1 / p,   T_p ≥ T_∞,   and (greedy)  T_p ≤ T_1 / p + T_∞.

Speedup figures report ``sequential_time / makespan`` where the sequential
time is separately modeled (the sequential stream implementation does less
bookkeeping per element than a parallel leaf — and carries the paper's
2^24 JVM-anomaly knob; see DESIGN.md §3).
"""

from repro.simcore.costmodel import CostModel
from repro.simcore.dag import Strand, StrandDag, build_dc_dag
from repro.simcore.machine import SimMachine, SimResult
from repro.simcore.metrics import greedy_bound_check, speedup
from repro.simcore.adapters import simulate_power_function, sequential_time

__all__ = [
    "CostModel",
    "SimMachine",
    "SimResult",
    "Strand",
    "StrandDag",
    "build_dc_dag",
    "greedy_bound_check",
    "sequential_time",
    "simulate_power_function",
    "speedup",
]
