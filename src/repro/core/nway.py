"""The PList n-way extension proposed in Section V.

Java's ``Spliterator`` can only halve, so the paper concludes that PList
(multi-way divide-and-conquer) functions are "not possible (yet)" — unless
``trySplit`` were extended to "return a set of Spliterators that all
together cover all the elements of the source".  This module implements
that proposal:

* :class:`NWaySpliterator` adds ``try_split_nway() -> list[Spliterator]``;
* :class:`NWayTieSpliterator` / :class:`NWayZipSpliterator` give the n-way
  segment / interleave partitions (PList's ``(n-way |)`` and ``(n-way ♮)``
  deconstructors);
* :func:`nway_collect` is the matching fork/join driver: it forks one task
  per part and merges the ordered results with the collector's
  ``combine_all``.
"""

from __future__ import annotations

import abc
from typing import Callable, Generic, Sequence, TypeVar

from repro.common import IllegalArgumentError, check_positive
from repro.core.containers import PowerArray
from repro.core.power_spliterators import SpliteratorPower2
from repro.forkjoin.pool import ForkJoinPool, common_pool
from repro.forkjoin.task import RecursiveTask

T = TypeVar("T")
A = TypeVar("A")
R = TypeVar("R")


class NWaySpliterator(SpliteratorPower2[T]):
    """A strided-view spliterator that can split ``arity`` ways at once."""

    __slots__ = ("arity",)

    def __init__(self, source, start=0, count=None, incr=1, arity: int = 2,
                 function_object=None) -> None:
        super().__init__(source, start, count, incr, function_object)
        if arity < 2:
            raise IllegalArgumentError(f"arity must be >= 2, got {arity}")
        self.arity = arity

    def try_split(self):
        """Binary splitting is intentionally disabled: these sources go
        through :meth:`try_split_nway` (the paper's proposed extension)."""
        return None

    @abc.abstractmethod
    def try_split_nway(self) -> "list[NWaySpliterator[T]] | None":
        """Partition the remaining elements into ``arity`` spliterators
        covering the source exactly, or None when not divisible/too small.

        Unlike the binary ``try_split``, *all* parts are returned and
        ``self`` is exhausted.
        """


class NWayTieSpliterator(NWaySpliterator[T]):
    """n-way segmentation: PList's ``(n-way |)`` deconstructor."""

    __slots__ = ()

    def try_split_nway(self):
        n = self.arity
        if self.count < n or self.count % n != 0:
            return None
        seg = self.count // n
        parts = [
            NWayTieSpliterator(
                self.source,
                self.start + k * seg * self.incr,
                seg,
                self.incr,
                n,
                self.function_object,
            )
            for k in range(n)
        ]
        self.count = 0
        return parts


class NWayZipSpliterator(NWaySpliterator[T]):
    """n-way interleave: PList's ``(n-way ♮)`` deconstructor."""

    __slots__ = ()

    def try_split_nway(self):
        n = self.arity
        if self.count < n or self.count % n != 0:
            return None
        seg = self.count // n
        parts = [
            NWayZipSpliterator(
                self.source,
                self.start + k * self.incr,
                seg,
                self.incr * n,
                n,
                self.function_object,
            )
            for k in range(n)
        ]
        self.count = 0
        return parts


class NWayCollector(abc.ABC, Generic[T, A, R]):
    """Mutable-reduction recipe for n-way divide-and-conquer.

    Like a :class:`~repro.streams.collector.Collector` but the combining
    function merges the *ordered list* of the ``arity`` partial containers.
    """

    @abc.abstractmethod
    def supplier(self) -> Callable[[], A]:
        """A fresh leaf container."""

    @abc.abstractmethod
    def accumulator(self) -> Callable[[A, T], None]:
        """Fold one element into a container."""

    @abc.abstractmethod
    def combine_all(self, parts: list[A]) -> A:
        """Merge the ordered partial containers of one node."""

    def finisher(self) -> Callable[[A], R]:
        """Container → result; identity by default."""
        return lambda container: container  # type: ignore[return-value]

    def create_spliterator(self, data: Sequence[T], arity: int) -> NWaySpliterator[T]:
        """The source spliterator; override to choose tie vs zip."""
        return NWayTieSpliterator(data, 0, len(data), 1, arity, self)


class NWayMapCollector(NWayCollector[T, PowerArray, list]):
    """PList ``map`` under either n-way deconstructor."""

    def __init__(self, f: Callable[[T], object], operator: str = "tie") -> None:
        if operator not in ("tie", "zip"):
            raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")
        self.f = f
        self.operator = operator

    def supplier(self) -> Callable[[], PowerArray]:
        return PowerArray

    def accumulator(self) -> Callable[[PowerArray, T], None]:
        f = self.f

        def accumulate(container: PowerArray, item: T) -> None:
            container.add(f(item))

        return accumulate

    def combine_all(self, parts: list[PowerArray]) -> PowerArray:
        if self.operator == "tie":
            out: list = []
            for part in parts:
                out.extend(part.items)
            return parts[0].replace(out)
        n = len(parts)
        m = len(parts[0])
        out = [None] * (n * m)
        for k, part in enumerate(parts):
            if len(part) != m:
                raise IllegalArgumentError("n-way zip requires similar parts")
            out[k::n] = part.items
        return parts[0].replace(out)

    def finisher(self) -> Callable[[PowerArray], list]:
        return PowerArray.to_list

    def create_spliterator(self, data: Sequence[T], arity: int) -> NWaySpliterator[T]:
        if self.operator == "zip":
            return NWayZipSpliterator(data, 0, len(data), 1, arity, self)
        return NWayTieSpliterator(data, 0, len(data), 1, arity, self)


class NWayReduceCollector(NWayCollector[T, list, T]):
    """PList ``reduce`` with an associative operator (n-way tie)."""

    def __init__(self, op: Callable[[T, T], T]) -> None:
        self.op = op

    def supplier(self) -> Callable[[], list]:
        return lambda: []

    def accumulator(self) -> Callable[[list, T], None]:
        op = self.op

        def accumulate(box: list, item: T) -> None:
            if box:
                box[0] = op(box[0], item)
            else:
                box.append(item)

        return accumulate

    def combine_all(self, parts: list[list]) -> list:
        nonempty = [part for part in parts if part]
        if not nonempty:
            return []
        acc = nonempty[0]
        for part in nonempty[1:]:
            acc[0] = self.op(acc[0], part[0])
        return acc

    def finisher(self) -> Callable[[list], T]:
        def finish(box: list) -> T:
            if not box:
                raise IllegalArgumentError("reduce of an empty PList")
            return box[0]

        return finish


class _NWayTask(RecursiveTask):
    """Fork one task per n-way part; merge ordered results."""

    __slots__ = ("spliterator", "collector", "target_size")

    def __init__(self, spliterator: NWaySpliterator, collector: NWayCollector,
                 target_size: int) -> None:
        super().__init__()
        self.spliterator = spliterator
        self.collector = collector
        self.target_size = target_size

    def compute(self):
        spliterator = self.spliterator
        parts = None
        if spliterator.estimate_size() > self.target_size:
            parts = spliterator.try_split_nway()
        if parts is None:
            container = self.collector.supplier()()
            accumulate = self.collector.accumulator()
            spliterator.for_each_remaining(lambda item: accumulate(container, item))
            return container
        tasks = [
            _NWayTask(part, self.collector, self.target_size) for part in parts
        ]
        # Fork all but the last; compute the last inline (Java idiom).
        for task in tasks[:-1]:
            task.fork()
        results = [None] * len(tasks)
        results[-1] = tasks[-1].compute()
        for i, task in enumerate(tasks[:-1]):
            results[i] = task.join()
        return self.collector.combine_all(results)


def nway_collect(
    collector: NWayCollector,
    data: Sequence,
    arity: int,
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
):
    """Execute a PList function with ``arity``-way divide-and-conquer."""
    check_positive(len(data), "PList input length")
    spliterator = collector.create_spliterator(data, arity)
    if target_size is None:
        target_size = max(len(data) // (arity * 8), 1)
    if not parallel:
        container = collector.supplier()()
        accumulate = collector.accumulator()
        spliterator.for_each_remaining(lambda item: accumulate(container, item))
        return collector.finisher()(container)
    effective_pool = pool if pool is not None else common_pool()
    root = _NWayTask(spliterator, collector, target_size)
    return collector.finisher()(effective_pool.invoke(root))
