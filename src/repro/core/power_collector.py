"""``PowerCollector`` — the PowerList-function-as-Collector template.

Section V of the paper distills a general four-step mechanism for
communicating between the splitting phase (driven by the spliterator) and
the accumulate/combine phases (driven by ``collect``):

1. define a specialized spliterator tied to the collector that defines the
   PowerList function;
2. allow the spliterator to update the state of that *function object*
   during splits;
3. create each leaf container (supplier) by copying the function object;
4. create the initial spliterator — the one the input stream is built
   from — through the same function object.

:class:`PowerCollector` implements those steps once.  Subclasses choose the
deconstruction operator (``tie`` or ``zip``), provide the three collect
functions, and may override ``on_split`` (descending-phase state),
``basic_case`` (leaf computation on non-singleton sublists) or
``specialized_spliterator`` (a fully custom splitter).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Generic, Sequence, TypeVar

from repro.common import (
    IllegalArgumentError,
    NotPowerOfTwoError,
    check_power_of_two,
)
from repro.forkjoin.pool import ForkJoinPool
from repro.obs.tracer import current_tracer
from repro.streams.collector import Collector, CollectorCharacteristics
from repro.streams.spliterator import Characteristics, Spliterator
from repro.streams.stream import Stream
from repro.streams.stream_support import StreamSupport
from repro.core.power_spliterators import (
    SpliteratorPower2,
    TieSpliterator,
    ZipSpliterator,
)

T = TypeVar("T")
A = TypeVar("A")
R = TypeVar("R")


class PowerCollector(Collector[T, A, R], Generic[T, A, R]):
    """Base class for PowerList functions expressed as collectors.

    Attributes:
        operator: ``"tie"`` or ``"zip"`` — which deconstruction operator
            the function recurses on.
    """

    operator: str = "tie"

    def __init__(self) -> None:
        # Protects descending-phase shared state (paper's synchronized
        # block on ``PolynomialValue.this``).
        self._state_lock = threading.Lock()
        # A declared leaf kernel serves both execution paths: the
        # per-element path reaches it through ``for_each_remaining`` and
        # the chunked path through ``Spliterator.next_chunk`` — both via
        # the ``basic_case`` channel, so one declaration covers both.
        if self.basic_case is None and self.leaf_kernel is not None:
            self.basic_case = self.leaf_kernel

    # -- the spliterator ↔ collector channel ----------------------------- #

    #: Optional hooks; a None value lets the spliterator take fast paths.
    on_split: Callable[[int], None] | None = None
    basic_case: Callable[[list, int], list] | None = None
    #: Bulk leaf computation ``(sub_view, incr) -> outputs``; subclasses
    #: declare it once and get it on the per-element *and* chunked paths
    #: (it is installed as ``basic_case`` unless one is already set).
    leaf_kernel: Callable[[list, int], list] | None = None

    def create_spliterator(self, data: Sequence[T]) -> SpliteratorPower2[T]:
        """Step 4: the initial spliterator, connected to this object."""
        spliterator = self.specialized_spliterator(data)
        if not spliterator.has_characteristics(Characteristics.POWER2):
            raise NotPowerOfTwoError(len(data), "PowerList stream source")
        return spliterator

    def specialized_spliterator(self, data: Sequence[T]) -> SpliteratorPower2[T]:
        """The spliterator type used for decomposition; override to
        customize (paper's inner-class specializations)."""
        if self.operator == "zip":
            return ZipSpliterator(data, 0, len(data), 1, function_object=self)
        if self.operator == "tie":
            return TieSpliterator(data, 0, len(data), 1, function_object=self)
        raise IllegalArgumentError(f"unknown operator {self.operator!r}")

    def characteristics(self) -> CollectorCharacteristics:
        return CollectorCharacteristics.IDENTITY_FINISH

    def reset(self) -> None:
        """Rewind descending-phase state before a re-execution.

        :func:`power_collect` calls this before every retry attempt and
        before a sequential fallback run, so a collector whose splits
        mutate shared function-object state (e.g. ``PolynomialValue``'s
        published ``x_degree``) starts each execution pristine.  The base
        implementation is a no-op; stateful collectors override it.
        """


def power_stream(
    collector: PowerCollector,
    data: Sequence,
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> Stream:
    """Build the stream of the paper's execution snippet.

    Creates the specialized spliterator *through the collector* (step 4),
    verifies the ``POWER2`` characteristic, and wraps it with
    ``StreamSupport.stream``.
    """
    check_power_of_two(len(data), "PowerList input length")
    spliterator = collector.create_spliterator(data)
    stream = StreamSupport.stream(spliterator, parallel)
    if pool is not None:
        stream = stream.with_pool(pool)
    if target_size is not None:
        stream = stream.with_target_size(target_size)
    return stream


def _collect_once(
    collector: PowerCollector,
    data: Sequence,
    parallel: bool,
    pool: ForkJoinPool | None,
    target_size: int | None,
    deadline=None,
):
    """One execution of the collect pipeline, wrapped in a ``function`` span."""
    stream = power_stream(collector, data, parallel, pool, target_size)
    if deadline is not None:
        stream = stream.with_deadline(deadline)
    tracer = current_tracer()
    if not tracer.enabled:
        return stream.collect(collector)
    start = time.perf_counter_ns()
    error: str | None = None
    try:
        return stream.collect(collector)
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        extra = {"error": error} if error is not None else {}
        tracer.emit(
            "function",
            name=type(collector).__name__,
            start_ns=start,
            end_ns=time.perf_counter_ns(),
            size=len(data),
            parallel=parallel,
            **extra,
        )


def power_collect(
    collector: PowerCollector,
    data: Sequence,
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
    *,
    retry=None,
    fallback: bool = False,
    deadline=None,
):
    """Execute a PowerList function over ``data`` via ``collect``.

    The full pipeline of the paper: specialized spliterator → parallel
    stream → ``collect(collector)``.  With tracing enabled
    (:func:`repro.obs.tracing`), the whole execution is recorded as one
    ``function`` span named after the collector class, enclosing the
    split/leaf/combine spans of its decomposition.  Parallel execution is
    fail-fast (see ``docs/robustness.md``): the first leaf or combiner
    exception cancels the remaining task tree and re-raises promptly, and
    the ``function`` span is still emitted — tagged with the error type —
    so aborted runs show up in traces instead of vanishing.

    Resilience (``docs/robustness.md``): ``retry`` takes a
    :class:`repro.faults.policy.RetryPolicy` to re-run a failed parallel
    execution; ``deadline`` (a :class:`~repro.faults.policy.Deadline` or a
    float budget in seconds) bounds the whole call; ``fallback=True``
    re-executes *sequentially* when the parallel attempts are exhausted —
    sequential execution bypasses the task tree, so it is immune to
    ``leaf:*``/``combine:*`` fault injectors and converges even under an
    always-firing plan.  ``collector.reset()`` runs before every attempt
    so descending-phase state cannot leak between executions.
    """
    if retry is None and not fallback and deadline is None:
        return _collect_once(collector, data, parallel, pool, target_size)

    from repro.faults.policy import Deadline, run_resilient

    if deadline is not None and not isinstance(deadline, Deadline):
        deadline = Deadline.after(float(deadline))

    def attempt():
        collector.reset()
        return _collect_once(collector, data, parallel, pool, target_size, deadline)

    def sequential():
        collector.reset()
        return _collect_once(collector, data, False, pool, target_size)

    return run_resilient(
        attempt,
        retry=retry,
        deadline=deadline,
        fallback=sequential if fallback else None,
        label=type(collector).__name__,
    )
