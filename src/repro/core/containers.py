"""``PowerArray`` — the mutable result container of the adaptation.

The paper (Figure 2) extends ``ArrayList`` with two combination methods so
that the ``collect`` combiner can reassemble results according to either
PowerList constructor:

* ``tie_all``  — append the other container's elements (concatenation);
* ``zip_all``  — interleave the two containers element by element.

A source decomposed by a ``ZipSpliterator`` cannot be recomposed by plain
concatenation — ``zip_all`` is what makes zip-based functions expressible
in ``collect`` at all.
"""

from __future__ import annotations

from typing import Generic, Iterable, Iterator, TypeVar

from repro.common import NotSimilarError

T = TypeVar("T")


class PowerArray(Generic[T]):
    """A growable result container combinable by *tie* or *zip*.

    The interleaving invariant: if ``self`` holds the results of the
    even-indexed sub-view of some node and ``other`` the odd-indexed ones
    (each in sub-view traversal order), then ``zip_all`` restores the
    node's traversal order.  Applied recursively up the combining phase,
    this reconstructs the original encounter order regardless of the leaf
    size at which decomposition stopped.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[T] = ()) -> None:
        self._items: list[T] = list(items)

    def add(self, item: T) -> None:
        """Append one element (the accumulator's job)."""
        self._items.append(item)

    def tie_all(self, other: "PowerArray[T]") -> "PowerArray[T]":
        """Combine by concatenation (the *tie* constructor); returns self."""
        self._items.extend(other._items)
        return self

    def zip_all(self, other: "PowerArray[T]") -> "PowerArray[T]":
        """Combine by interleaving (the *zip* constructor); returns self.

        Raises:
            NotSimilarError: when the two containers differ in length —
                zip is only defined on similar PowerLists.
        """
        mine, theirs = self._items, other._items
        if len(mine) != len(theirs):
            raise NotSimilarError(len(mine), len(theirs))
        out: list[T] = [None] * (2 * len(mine))  # type: ignore[list-item]
        out[0::2] = mine
        out[1::2] = theirs
        self._items = out
        return self

    def replace(self, items: list[T]) -> "PowerArray[T]":
        """Swap in a new backing list (used by combiners that rebuild the
        container wholesale, e.g. the FFT butterfly); returns self."""
        self._items = items
        return self

    def to_list(self) -> list[T]:
        """The accumulated elements as a plain list."""
        return list(self._items)

    @property
    def items(self) -> list[T]:
        """Direct (mutable) access to the backing list."""
        return self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    def __getitem__(self, i: int) -> T:
        return self._items[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PowerArray):
            return self._items == other._items
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("PowerArray is mutable and unhashable")

    def __repr__(self) -> str:
        return f"PowerArray({self._items!r})"
