"""The identity PowerList function — the paper's first validation example.

``identity`` rebuilds the input list through a full decompose/recompose
round trip.  With a ``ZipSpliterator`` the source is scattered into
interleaved sub-views, so recomposition *must* go through ``zip_all`` —
plain concatenation would scramble the order.  Running this function
verifies that decomposition and combination are exact inverses.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.common import IllegalArgumentError
from repro.core.containers import PowerArray
from repro.core.power_collector import PowerCollector

T = TypeVar("T")


class IdentityCollector(PowerCollector[T, PowerArray, list]):
    """Rebuilds the input through decompose → accumulate → recompose.

    Args:
        operator: ``"zip"`` (default, the paper's choice — it actually
            exercises the interleaved recomposition) or ``"tie"``.
    """

    def __init__(self, operator: str = "zip") -> None:
        super().__init__()
        if operator not in ("tie", "zip"):
            raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")
        self.operator = operator

    def supplier(self) -> Callable[[], PowerArray]:
        return PowerArray

    def accumulator(self) -> Callable[[PowerArray, T], None]:
        return PowerArray.add

    def combiner(self) -> Callable[[PowerArray, PowerArray], PowerArray]:
        if self.operator == "zip":
            return PowerArray.zip_all
        return PowerArray.tie_all

    def finisher(self) -> Callable[[PowerArray], list]:
        return PowerArray.to_list
