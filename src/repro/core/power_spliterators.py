"""``TieSpliterator`` and ``ZipSpliterator`` (paper Figure 1).

Both traverse a view ``(start, fence, incr)`` over a random-access source,
advertise ``POWER2`` when the covered count is a power of two, and differ
only in how ``try_split`` partitions:

* ``TieSpliterator``  — hands off the first half at the same stride
  (Java's default "linear segments" behaviour, the *tie* deconstructor);
* ``ZipSpliterator``  — hands off the even-indexed elements by doubling
  the stride (the *zip* deconstructor); the returned prefix starts at the
  current origin and ``self`` keeps the odd-indexed suffix, mirroring the
  paper's ``trySplit`` listing.

Descending-phase support.  The paper connects splitting-phase computation
to the collector through inner classes; Python has no implicit inner-class
capture, so the link is explicit: a spliterator may hold a reference to the
*function object* (the :class:`~repro.core.power_collector.PowerCollector`)
and calls its ``on_split(depth_stride)`` hook each time it splits, plus an
optional ``basic_case`` override used by ``for_each_remaining``.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.common import IllegalArgumentError, is_power_of_two
from repro.streams.spliterator import Characteristics, Spliterator

T = TypeVar("T")

_BASE_FLAGS = (
    Characteristics.ORDERED
    | Characteristics.SIZED
    | Characteristics.SUBSIZED
    | Characteristics.IMMUTABLE
)


class SpliteratorPower2(Spliterator[T]):
    """Base of the specialized spliterators: strided view + POWER2 flag.

    Args:
        source: random-access backing sequence.
        start: index of the first covered element.
        fence: one past the last covered *position count* is derived from
            ``count``; the view covers ``start, start+incr, …`` for
            ``count`` elements.
        incr: stride between covered elements.
        function_object: optional collector back-reference; its
            ``on_split`` hook fires on every split (Section V mechanism).
    """

    __slots__ = ("source", "start", "count", "incr", "function_object")

    def __init__(
        self,
        source: Sequence[T],
        start: int = 0,
        count: int | None = None,
        incr: int = 1,
        function_object=None,
    ) -> None:
        if count is None:
            count = len(source)
        if count < 0:
            raise IllegalArgumentError(f"count must be >= 0, got {count}")
        if incr < 1:
            raise IllegalArgumentError(f"incr must be >= 1, got {incr}")
        if count:
            last = start + (count - 1) * incr
            if not (0 <= start < len(source)) or last >= len(source):
                raise IllegalArgumentError(
                    f"view (start={start}, count={count}, incr={incr}) "
                    f"exceeds source of size {len(source)}"
                )
        self.source = source
        self.start = start
        self.count = count
        self.incr = incr
        self.function_object = function_object

    # -- traversal --------------------------------------------------------- #

    def try_advance(self, action: Callable[[T], None]) -> bool:
        if self.count <= 0:
            return False
        item = self.source[self.start]
        self.start += self.incr
        self.count -= 1
        action(item)
        return True

    def for_each_remaining(self, action: Callable[[T], None]) -> None:
        """Bulk-apply over the remaining strided view.

        When the connected function object defines ``basic_case``, the
        whole remaining sub-view is delegated to it — this is the paper's
        mechanism for specializing the leaf computation on non-singleton
        sublists (e.g. a sequential sub-FFT).
        """
        fo = self.function_object
        if fo is not None and getattr(fo, "basic_case", None) is not None:
            for item in self._consume_basic_case():
                action(item)
            return
        source, incr = self.source, self.incr
        idx = self.start
        for _ in range(self.count):
            action(source[idx])
            idx += incr
        self.start = idx
        self.count = 0

    def _consume_basic_case(self) -> list:
        """Apply the function object's ``basic_case`` to the whole
        remaining sub-view, consuming it."""
        view = [
            self.source[self.start + i * self.incr] for i in range(self.count)
        ]
        out = self.function_object.basic_case(view, self.incr)
        self.start += self.count * self.incr
        self.count = 0
        return out

    def next_chunk(self, max_size: int) -> Sequence[T]:
        """Bulk pull over the strided view.

        A leaf governed by a ``basic_case``/``leaf_kernel`` is semantically
        indivisible — the kernel must see the whole sub-view at once — so
        the entire remainder is returned as one chunk regardless of
        ``max_size`` (mirroring :meth:`for_each_remaining` exactly).
        Otherwise a single strided slice of the source is returned: a
        zero-copy view for numpy arrays, one C-level copy for lists.
        """
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if self.count <= 0:
            return ()
        fo = self.function_object
        if fo is not None and getattr(fo, "basic_case", None) is not None:
            return self._consume_basic_case()
        n = min(self.count, max_size)
        stop = self.start + n * self.incr
        try:
            chunk = self.source[self.start : stop : self.incr]
        except TypeError:  # non-sliceable random-access source
            return super().next_chunk(max_size)
        self.start = stop
        self.count -= n
        return chunk

    def estimate_size(self) -> int:
        return self.count

    def characteristics(self) -> Characteristics:
        flags = _BASE_FLAGS
        if is_power_of_two(self.count):
            flags |= Characteristics.POWER2
        return flags

    # -- split helpers ------------------------------------------------------ #

    def _notify_split(self, new_incr: int) -> None:
        fo = self.function_object
        if fo is not None and getattr(fo, "on_split", None) is not None:
            fo.on_split(new_incr)

    def _spawn(self, start: int, count: int, incr: int) -> "SpliteratorPower2[T]":
        """Create the prefix spliterator with the same dynamic type and
        connection."""
        return type(self)(self.source, start, count, incr, self.function_object)


class TieSpliterator(SpliteratorPower2[T]):
    """Splits off the first half at the same stride (*tie*)."""

    __slots__ = ()

    def try_split(self) -> "TieSpliterator[T] | None":
        if self.count < 2:
            return None
        half = self.count // 2
        prefix_start = self.start
        self.start += half * self.incr
        self.count -= half
        self._notify_split(self.incr)
        return self._spawn(prefix_start, half, self.incr)  # type: ignore[return-value]


class ZipSpliterator(SpliteratorPower2[T]):
    """Splits off the even-indexed elements by doubling the stride (*zip*).

    After a split the prefix covers ``start, start+2·incr, …`` (the even
    sub-view) and ``self`` covers ``start+incr, start+3·incr, …`` (the odd
    sub-view) — the direct transliteration of the paper's ``trySplit``.
    """

    __slots__ = ()

    def try_split(self) -> "ZipSpliterator[T] | None":
        if self.count < 2:
            return None
        lo = self.start
        step = self.incr
        even_count = (self.count + 1) // 2  # indices 0, 2, 4, …
        odd_count = self.count // 2  # indices 1, 3, 5, …
        self.start = lo + step
        self.incr = step * 2
        self.count = odd_count
        self._notify_split(self.incr)
        return self._spawn(lo, even_count, step * 2)  # type: ignore[return-value]
