"""Gray codes via the PowerList recursion.

The reflected binary Gray code has the textbook PowerList construction::

    G(1)    = [0, 1]
    G(k+1)  = (0 · G(k))  |  (1 · reverse(G(k)))

— prefix the sequence with 0, its reversal with 1, and *tie*.  The JPLF
function set lists Gray codes among its PowerList examples; we provide the
sequence builder, the per-element conversions, and a collector-based bulk
conversion (a ``map`` of ``to_gray``).
"""

from __future__ import annotations

from typing import Sequence

from repro.common import check_positive
from repro.core.map_reduce import PowerMapCollector
from repro.core.power_collector import power_collect
from repro.forkjoin.pool import ForkJoinPool


def to_gray(i: int) -> int:
    """The Gray code of ``i``: ``i XOR (i >> 1)``."""
    if i < 0:
        raise ValueError(f"Gray code undefined for negative {i}")
    return i ^ (i >> 1)


def from_gray(g: int) -> int:
    """Invert :func:`to_gray` by prefix-XOR over the bits."""
    if g < 0:
        raise ValueError(f"Gray code undefined for negative {g}")
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i


def gray_code_sequence(bits: int) -> list[int]:
    """The ``2**bits``-element reflected Gray sequence, by the PowerList
    recursion (returns code words as integers)."""
    check_positive(bits, "bits")
    seq = [0, 1]
    for level in range(1, bits):
        high = 1 << level
        # (0·G) | (1·reverse(G)) — the tie of the two decorated copies.
        seq = seq + [high | code for code in reversed(seq)]
    return seq


def gray_map(
    values: Sequence[int],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
) -> list[int]:
    """Bulk binary→Gray conversion as a PowerList ``map`` collector."""
    return power_collect(PowerMapCollector(to_gray, operator="tie"), values, parallel, pool)
