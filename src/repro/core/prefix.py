"""Prefix sums (scan) as a PowerList collector.

The tie-based PowerList definition::

    ps([a])     = [a]
    ps(p | q)   = ps(p) | (last(ps(p)) ⊕ ps(q))

Each container carries both the local prefix list and its total, so the
combiner shifts the right container by the left total in one pass — the
standard two-value trick that makes scan a homomorphism.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.core.power_collector import PowerCollector, power_collect
from repro.forkjoin.pool import ForkJoinPool

T = TypeVar("T")


class _ScanBox:
    """Running prefix list plus its final (total) value."""

    __slots__ = ("prefix", "total", "empty")

    def __init__(self) -> None:
        self.prefix: list = []
        self.total = None
        self.empty = True


class PrefixSumCollector(PowerCollector[T, _ScanBox, list]):
    """Inclusive scan with an associative operator, via tie decomposition.

    Args:
        op: associative binary operator (defaults to ``+``).
    """

    operator = "tie"

    def __init__(self, op: Callable[[T, T], T] = lambda a, b: a + b) -> None:
        super().__init__()
        self.op = op

    def supplier(self) -> Callable[[], _ScanBox]:
        return _ScanBox

    def accumulator(self) -> Callable[[_ScanBox, T], None]:
        op = self.op

        def accumulate(box: _ScanBox, item: T) -> None:
            if box.empty:
                box.total = item
                box.empty = False
            else:
                box.total = op(box.total, item)
            box.prefix.append(box.total)

        return accumulate

    def combiner(self) -> Callable[[_ScanBox, _ScanBox], _ScanBox]:
        op = self.op

        def combine(left: _ScanBox, right: _ScanBox) -> _ScanBox:
            if right.empty:
                return left
            if left.empty:
                return right
            shift = left.total
            left.prefix.extend(op(shift, value) for value in right.prefix)
            left.total = op(shift, right.total)
            return left

        return combine

    def finisher(self) -> Callable[[_ScanBox], list]:
        return lambda box: box.prefix


def prefix_sum(
    data: Sequence[T],
    op: Callable[[T, T], T] = lambda a, b: a + b,
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> list[T]:
    """Inclusive prefix scan of ``data`` (length ``2**k``) with ``op``."""
    return power_collect(PrefixSumCollector(op), data, parallel, pool, target_size)
