"""Comparator-network statistics for the PowerList sorting networks.

Batcher's odd-even merge sort and the bitonic sorter are *networks*: fixed
comparator sequences whose size (comparator count) and depth (parallel
steps) obey classical closed forms.  These counters instrument the
recursions and the tests pin them to the formulas — a structural check on
the implementations that output-correctness tests can't provide:

* odd-even merge of two ``n``-lists: ``size M(n) = n·log2(n) + 1``
  comparators (n ≥ 1, with ``M(1) = 1``), depth ``log2(n) + 1``;
* bitonic merge of ``n``: ``(n/2)·log2(n)`` comparators, depth
  ``log2(n)``;
* bitonic sort of ``n``: ``(n/4)·log2(n)·(log2(n)+1)`` comparators,
  depth ``log2(n)·(log2(n)+1)/2``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import check_power_of_two, exact_log2


@dataclass(frozen=True)
class NetworkStats:
    """Size and depth of a comparator network."""

    comparators: int
    depth: int


def odd_even_merge_stats(n: int) -> NetworkStats:
    """Stats of Batcher's odd-even merge of two sorted ``n``-lists.

    Recurrences: ``M(1) = 1``; ``M(n) = 2·M(n/2) + (n − 1)`` comparators,
    depth ``D(1) = 1``; ``D(n) = D(n/2) + 1``.
    """
    check_power_of_two(n, "merge input length")
    if n == 1:
        return NetworkStats(comparators=1, depth=1)
    sub = odd_even_merge_stats(n // 2)
    return NetworkStats(
        comparators=2 * sub.comparators + (n - 1),
        depth=sub.depth + 1,
    )


def batcher_sort_stats(n: int) -> NetworkStats:
    """Stats of the full odd-even merge sort of ``n`` keys.

    ``S(1) = 0``; ``S(n) = 2·S(n/2) + M(n/2)``; sort depth
    ``DS(n) = DS(n/2) + D(n/2)``.
    """
    check_power_of_two(n, "sort input length")
    if n == 1:
        return NetworkStats(comparators=0, depth=0)
    sub_sort = batcher_sort_stats(n // 2)
    merge = odd_even_merge_stats(n // 2)
    return NetworkStats(
        comparators=2 * sub_sort.comparators + merge.comparators,
        depth=sub_sort.depth + merge.depth,
    )


def bitonic_merge_stats(n: int) -> NetworkStats:
    """Stats of the bitonic merger of ``n`` keys: one rank of ``n/2``
    comparators per level, ``log2 n`` levels."""
    check_power_of_two(n, "bitonic merge length")
    k = exact_log2(n)
    return NetworkStats(comparators=(n // 2) * k, depth=k)


def bitonic_sort_stats(n: int) -> NetworkStats:
    """Stats of the full bitonic sorter: ``Θ(n log² n)`` size,
    ``log n (log n + 1)/2`` depth."""
    check_power_of_two(n, "bitonic sort length")
    k = exact_log2(n)
    return NetworkStats(
        comparators=(n // 4) * k * (k + 1) if n > 1 else 0,
        depth=k * (k + 1) // 2,
    )


def count_merge_comparators(n: int) -> int:
    """Count comparators by *instrumenting* the real merge on ``n``-lists
    (validation hook for the closed forms)."""
    from repro.core.sorting import odd_even_merge

    counter = [0]

    class Probe:
        __slots__ = ("value",)

        def __init__(self, value):
            self.value = value

        def __le__(self, other):
            counter[0] += 1
            return self.value <= other.value

        def __gt__(self, other):
            counter[0] += 1
            return self.value > other.value

    a = [Probe(i) for i in range(0, 2 * n, 2)]
    b = [Probe(i) for i in range(1, 2 * n, 2)]
    merged = odd_even_merge(a, b)
    assert [p.value for p in merged] == list(range(2 * n))
    return counter[0]
