"""The Equation-5 family: descending-phase element transforms.

The paper singles out tie-based functions of the shape::

    f([a])    = [a]
    f(p | q)  = f(p ⊕ q) | f(p ⊗ q)

where ``⊕``/``⊗`` are extended (element-wise) binary operators: the *input*
is rewritten at every split, but — unlike polynomial evaluation — no global
shared state is needed ("the elements should be updated correspondingly,
before the new Spliterator instance is created", Section V).

:class:`DescendTransformCollector` implements the pattern with a
specialized ``TieSpliterator`` whose ``try_split`` materializes the two
transformed halves.  Instantiated with ``⊕ = +`` and ``⊗ = −`` this is
precisely the **fast Walsh–Hadamard transform**::

    wht(p | q) = wht(p + q) | wht(p − q)

which gives the family a non-trivial, independently checkable member
(oracle: ``scipy.linalg.hadamard(n) @ x``).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.core.containers import PowerArray
from repro.core.power_collector import PowerCollector, power_collect
from repro.core.power_spliterators import SpliteratorPower2, TieSpliterator
from repro.forkjoin.pool import ForkJoinPool

T = TypeVar("T")


class DescendTieSpliterator(TieSpliterator[T]):
    """``TieSpliterator`` applying ``(⊕, ⊗)`` to the halves on each split.

    Splitting materializes a fresh backing list ``[p ⊕ q] ++ [p ⊗ q]`` —
    the transformed halves — and re-views it.  No collector state is
    touched: the paper's "simpler case".
    """

    __slots__ = ()

    def try_split(self):
        if self.count < 2:
            return None
        fo = self.function_object
        half = self.count // 2
        src, s0, inc = self.source, self.start, self.incr
        p = [src[s0 + i * inc] for i in range(half)]
        q = [src[s0 + (half + i) * inc] for i in range(half)]
        left = [fo.op_plus(a, b) for a, b in zip(p, q)]
        right = [fo.op_times(a, b) for a, b in zip(p, q)]
        # Re-root self on the transformed right half; hand off the left.
        self.source = right
        self.start = 0
        self.incr = 1
        self.count = half
        return DescendTieSpliterator(left, 0, half, 1, fo)


class DescendTransformCollector(PowerCollector[T, PowerArray, list]):
    """Computes ``f(p|q) = f(p ⊕ q) | f(p ⊗ q)`` as a collector.

    Args:
        op_plus: the ``⊕`` operator fed to the left recursion.
        op_times: the ``⊗`` operator fed to the right recursion.

    The leaf ``basic_case`` applies the same recursion sequentially, so
    decomposition may stop at any layer.
    """

    operator = "tie"

    def __init__(
        self,
        op_plus: Callable[[T, T], T],
        op_times: Callable[[T, T], T],
    ) -> None:
        super().__init__()
        self.op_plus = op_plus
        self.op_times = op_times

    def specialized_spliterator(self, data: Sequence[T]) -> SpliteratorPower2[T]:
        return DescendTieSpliterator(data, 0, len(data), 1, function_object=self)

    def basic_case(self, view: list, incr: int) -> list:
        return self._recurse(view)

    def _recurse(self, values: list) -> list:
        if len(values) <= 1:
            return list(values)
        half = len(values) // 2
        p, q = values[:half], values[half:]
        left = self._recurse([self.op_plus(a, b) for a, b in zip(p, q)])
        right = self._recurse([self.op_times(a, b) for a, b in zip(p, q)])
        return left + right

    def supplier(self) -> Callable[[], PowerArray]:
        return PowerArray

    def accumulator(self) -> Callable[[PowerArray, T], None]:
        return PowerArray.add

    def combiner(self) -> Callable[[PowerArray, PowerArray], PowerArray]:
        return PowerArray.tie_all

    def finisher(self) -> Callable[[PowerArray], list]:
        return PowerArray.to_list


def walsh_hadamard(
    data: Sequence[float],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> list[float]:
    """Fast Walsh–Hadamard transform of ``data`` (length ``2**k``).

    Equals ``scipy.linalg.hadamard(n) @ data`` (natural/Hadamard order).
    """
    collector = DescendTransformCollector(
        op_plus=lambda a, b: a + b, op_times=lambda a, b: a - b
    )
    return power_collect(collector, data, parallel, pool, target_size)
