"""Predicate-style PowerList collectors (the cookbook's worked example).

Homomorphisms whose carrier is a small summary tuple rather than a
container: ``is_sorted`` (adjacency needs *tie*), ``count_if``, and
``all_equal``.  These round out the function library with the
boundary-carrying combiner pattern (`docs/cookbook.md`).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.core.power_collector import PowerCollector, power_collect
from repro.forkjoin.pool import ForkJoinPool

T = TypeVar("T")


class _SortedBox:
    """Summary: sortedness flag plus boundary elements."""

    __slots__ = ("ok", "first", "last", "empty")

    def __init__(self) -> None:
        self.ok = True
        self.first = None
        self.last = None
        self.empty = True


class IsSortedCollector(PowerCollector[T, _SortedBox, bool]):
    """``True`` iff the PowerList is non-decreasing (tie-based)."""

    operator = "tie"

    def supplier(self) -> Callable[[], _SortedBox]:
        return _SortedBox

    def accumulator(self) -> Callable[[_SortedBox, T], None]:
        def accumulate(box: _SortedBox, item: T) -> None:
            if box.empty:
                box.first = item
                box.empty = False
            elif box.last > item:  # type: ignore[operator]
                box.ok = False
            box.last = item

        return accumulate

    def combiner(self) -> Callable[[_SortedBox, _SortedBox], _SortedBox]:
        def combine(a: _SortedBox, b: _SortedBox) -> _SortedBox:
            if b.empty:
                return a
            if a.empty:
                return b
            a.ok = a.ok and b.ok and a.last <= b.first  # type: ignore[operator]
            a.last = b.last
            return a

        return combine

    def finisher(self) -> Callable[[_SortedBox], bool]:
        return lambda box: box.ok


class CountIfCollector(PowerCollector[T, list, int]):
    """Number of elements satisfying a predicate (either operator works;
    counting is commutative)."""

    operator = "tie"

    def __init__(self, predicate: Callable[[T], bool]) -> None:
        super().__init__()
        self.predicate = predicate

    def supplier(self) -> Callable[[], list]:
        return lambda: [0]

    def accumulator(self) -> Callable[[list, T], None]:
        predicate = self.predicate

        def accumulate(box: list, item: T) -> None:
            if predicate(item):
                box[0] += 1

        return accumulate

    def combiner(self) -> Callable[[list, list], list]:
        def combine(a: list, b: list) -> list:
            a[0] += b[0]
            return a

        return combine

    def finisher(self) -> Callable[[list], int]:
        return lambda box: box[0]


class _EqualBox:
    __slots__ = ("ok", "witness", "empty")

    def __init__(self) -> None:
        self.ok = True
        self.witness = None
        self.empty = True


class AllEqualCollector(PowerCollector[T, _EqualBox, bool]):
    """``True`` iff every element equals every other (zip-friendly)."""

    operator = "zip"

    def supplier(self) -> Callable[[], _EqualBox]:
        return _EqualBox

    def accumulator(self) -> Callable[[_EqualBox, T], None]:
        def accumulate(box: _EqualBox, item: T) -> None:
            if box.empty:
                box.witness = item
                box.empty = False
            elif box.witness != item:
                box.ok = False

        return accumulate

    def combiner(self) -> Callable[[_EqualBox, _EqualBox], _EqualBox]:
        def combine(a: _EqualBox, b: _EqualBox) -> _EqualBox:
            if b.empty:
                return a
            if a.empty:
                return b
            a.ok = a.ok and b.ok and a.witness == b.witness
            return a

        return combine

    def finisher(self) -> Callable[[_EqualBox], bool]:
        return lambda box: box.ok


def is_sorted(
    data: Sequence[T],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> bool:
    """True iff ``data`` (length ``2**k``) is non-decreasing."""
    return power_collect(IsSortedCollector(), data, parallel, pool, target_size)


def count_if(
    data: Sequence[T],
    predicate: Callable[[T], bool],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
) -> int:
    """Number of elements of ``data`` satisfying ``predicate``."""
    return power_collect(CountIfCollector(predicate), data, parallel, pool)


def all_equal(
    data: Sequence[T],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
) -> bool:
    """True iff all elements of ``data`` are equal."""
    return power_collect(AllEqualCollector(), data, parallel, pool)
