"""The ``inv`` (bit-reversal) permutation — Equation 2 of the paper.

``inv`` sends the element at index ``b`` to the index whose binary
representation (over ``log2 n`` bits) is ``b`` reversed.  Its PowerList
definition is the canonical function needing *both* operators::

    inv([a])    = [a]
    inv(p | q)  = inv(p) ♮ inv(q)

i.e. deconstruct with *tie*, reconstruct with *zip* — or, dually,
``inv(p ♮ q) = inv(p) | inv(q)``.  Both variants are provided; they compute
the same permutation (``inv`` is self-dual).
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.common import IllegalArgumentError, bit_reverse, exact_log2
from repro.core.containers import PowerArray
from repro.core.power_collector import PowerCollector, power_collect
from repro.forkjoin.pool import ForkJoinPool

T = TypeVar("T")


class InvCollector(PowerCollector[T, PowerArray, list]):
    """Bit-reversal permutation via mismatched deconstruct/recompose pairs.

    Args:
        operator: the *deconstruction* operator — ``"tie"`` (recompose
            with ``zip_all``) or ``"zip"`` (recompose with ``tie_all``).

    Decomposition may stop above singletons (the paper notes the system
    decides the stopping layer): the ``basic_case`` hook bit-reverses each
    leaf sub-list locally, which composes with the mismatched recomposition
    to the global permutation at any uniform leaf depth.
    """

    def __init__(self, operator: str = "tie") -> None:
        super().__init__()
        if operator not in ("tie", "zip"):
            raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")
        self.operator = operator

    # Leaf computation on a non-singleton sublist: bit-reverse it locally,
    # making the collector correct at any decomposition depth.
    def basic_case(self, view: list, incr: int) -> list:
        n = len(view)
        if n <= 1:
            return view
        k = exact_log2(n)
        out = [None] * n
        for i, item in enumerate(view):
            out[bit_reverse(i, k)] = item
        return out

    def supplier(self) -> Callable[[], PowerArray]:
        return PowerArray

    def accumulator(self) -> Callable[[PowerArray, T], None]:
        return PowerArray.add

    def combiner(self) -> Callable[[PowerArray, PowerArray], PowerArray]:
        # The *opposite* constructor of the deconstruction operator.
        if self.operator == "tie":
            return PowerArray.zip_all
        return PowerArray.tie_all

    def finisher(self) -> Callable[[PowerArray], list]:
        return PowerArray.to_list


def inv(
    data: Sequence[T],
    operator: str = "tie",
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
) -> list[T]:
    """Apply the bit-reversal permutation to ``data`` (length ``2**k``)."""
    return power_collect(InvCollector(operator), data, parallel, pool)


def inv_indices(n: int) -> list[int]:
    """Reference oracle: the bit-reversal permutation of ``range(n)``."""
    k = exact_log2(n)
    return [bit_reverse(i, k) for i in range(n)]
