"""Permutation functions as collectors: reversal under both operators.

``rev`` joins ``inv`` in the family of pure data-rearrangement PowerList
functions.  Its two dual definitions::

    rev(p | q)  =  rev(q) | rev(p)
    rev(p ♮ q)  =  rev(q) ♮ rev(p)

map onto the collector template as an *argument-swapped* combiner — the
mirror image of the identity function.  Leaves reverse their sub-views
locally (``basic_case``), so any uniform decomposition depth is correct.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.common import IllegalArgumentError
from repro.core.containers import PowerArray
from repro.core.power_collector import PowerCollector, power_collect
from repro.forkjoin.pool import ForkJoinPool

T = TypeVar("T")


class RevCollector(PowerCollector[T, PowerArray, list]):
    """Reverses the input PowerList.

    Args:
        operator: deconstruction operator (``"tie"`` default or ``"zip"``);
            both compute the same permutation via the dual equations.
    """

    def __init__(self, operator: str = "tie") -> None:
        super().__init__()
        if operator not in ("tie", "zip"):
            raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")
        self.operator = operator

    def basic_case(self, view: list, incr: int) -> list:
        return view[::-1]

    def supplier(self) -> Callable[[], PowerArray]:
        return PowerArray

    def accumulator(self) -> Callable[[PowerArray, T], None]:
        return PowerArray.add

    def combiner(self) -> Callable[[PowerArray, PowerArray], PowerArray]:
        if self.operator == "zip":
            # rev(p ♮ q) = rev(q) ♮ rev(p): odd results first in the zip.
            def combine_zip(left: PowerArray, right: PowerArray) -> PowerArray:
                return right.zip_all(left)

            return combine_zip

        def combine_tie(left: PowerArray, right: PowerArray) -> PowerArray:
            # rev(p | q) = rev(q) | rev(p): swap before concatenating.
            return right.tie_all(left)

        return combine_tie

    def finisher(self) -> Callable[[PowerArray], list]:
        return PowerArray.to_list


def rev_collect(
    data: Sequence[T],
    operator: str = "tie",
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> list[T]:
    """Reverse ``data`` (length ``2**k``) through the stream adaptation."""
    return power_collect(RevCollector(operator), data, parallel, pool, target_size)
