"""Polynomial multiplication and convolution via the PowerList FFT.

The classic application closing the loop on Equation 3: multiply two
polynomials (equivalently, convolve two sequences) in O(n log n) by the
convolution theorem —

    conv(a, b) = ifft( fft(a') × fft(b') )

with the operands zero-padded to the next power of two at least
``len(a) + len(b) − 1`` (so linear convolution is not aliased into the
circular one).  All transforms run through the zip-decomposed FFT
collector, so this function exercises the paper's machinery end to end.

Oracle: ``numpy.convolve``.
"""

from __future__ import annotations

from typing import Sequence

from repro.common import check_power_of_two, next_power_of_two
from repro.core.fft import fft
from repro.forkjoin.pool import ForkJoinPool


def ifft(
    spectrum: Sequence[complex],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
) -> list[complex]:
    """Inverse FFT via the conjugate identity ``conj(fft(conj(X))) / n``."""
    n = check_power_of_two(len(spectrum), "ifft length")
    conjugated = [value.conjugate() for value in spectrum]
    transformed = fft(conjugated, parallel=parallel, pool=pool)
    return [value.conjugate() / n for value in transformed]


def circular_convolution(
    a: Sequence[complex],
    b: Sequence[complex],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
) -> list[complex]:
    """Cyclic convolution of two similar power-of-two-length sequences."""
    n = check_power_of_two(len(a), "operand length")
    if len(b) != n:
        raise ValueError(f"operands must be similar: {n} vs {len(b)}")
    fa = fft(list(a), parallel=parallel, pool=pool)
    fb = fft(list(b), parallel=parallel, pool=pool)
    return ifft([x * y for x, y in zip(fa, fb)], parallel=parallel, pool=pool)


def convolve(
    a: Sequence[float],
    b: Sequence[float],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
) -> list[float]:
    """Linear convolution (``numpy.convolve`` semantics) via FFT.

    Accepts any positive lengths; pads to the covering power of two.
    Returns real parts (inputs are treated as real sequences).
    """
    if not a or not b:
        raise ValueError("operands must be non-empty")
    out_len = len(a) + len(b) - 1
    n = next_power_of_two(out_len)
    pa = [complex(x) for x in a] + [0j] * (n - len(a))
    pb = [complex(x) for x in b] + [0j] * (n - len(b))
    cyclic = circular_convolution(pa, pb, parallel=parallel, pool=pool)
    return [value.real for value in cyclic[:out_len]]


def polynomial_multiply(
    p: Sequence[float],
    q: Sequence[float],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
) -> list[float]:
    """Coefficients of the product polynomial ``p·q``.

    Uses the decreasing-degree convention shared with
    :mod:`repro.core.polynomial`: the product's coefficients are the
    convolution of the operand coefficient lists (``numpy.polymul`` up to
    leading-zero trimming, which this function does not perform).
    """
    return convolve(p, q, parallel=parallel, pool=pool)
