"""Fast Fourier Transform as a PowerList collector (Equation 3).

The Cooley–Tukey decimation-in-time recursion has the famous two-operator
PowerList form::

    fft([a])     = [a]
    fft(p ♮ q)   = (P + u×Q) | (P − u×Q)

with ``P = fft(p)``, ``Q = fft(q)`` and ``u = powers(p)`` the first ``n``
powers of the ``2n``-th principal root of unity.  Decomposition therefore
uses the ``ZipSpliterator`` and combination concatenates the two butterfly
halves (*tie*).

Root convention: ``w = exp(-2πi / 2n)`` — the *forward* transform of
``numpy.fft.fft``, our test oracle.

Leaf handling: decomposition stops at a system-chosen layer (paper,
Section V), so leaves are generally non-singleton sub-views.  The paper
suggests specializing ``forEachRemaining`` to run a sequential basic case;
here ``basic_case`` computes the leaf's DFT directly (a sequential
radix-2 FFT), after which the butterfly combining phase is exact at every
level above.
"""

from __future__ import annotations

import cmath
from typing import Callable, Sequence

from repro.common import check_power_of_two
from repro.core.containers import PowerArray
from repro.core.power_collector import PowerCollector, power_collect
from repro.forkjoin.pool import ForkJoinPool


def powers(n: int) -> list[complex]:
    """``u = (w^0, w^1, …, w^{n-1})`` with ``w`` the (2n)-th principal root.

    The twiddle factors of one butterfly level (forward-transform sign).
    """
    w = cmath.exp(-2j * cmath.pi / (2 * n))
    out = [1 + 0j]
    for _ in range(n - 1):
        out.append(out[-1] * w)
    return out


def fft_sequential(values: Sequence[complex]) -> list[complex]:
    """Reference radix-2 DIT FFT (recursive, forward transform)."""
    n = len(values)
    check_power_of_two(n, "fft length")
    if n == 1:
        return [complex(values[0])]
    even = fft_sequential(values[0::2])
    odd = fft_sequential(values[1::2])
    u = powers(n // 2)
    left = [even[k] + u[k] * odd[k] for k in range(n // 2)]
    right = [even[k] - u[k] * odd[k] for k in range(n // 2)]
    return left + right


class FftCollector(PowerCollector[complex, PowerArray, list]):
    """``fft`` via zip decomposition and butterfly combination."""

    operator = "zip"

    # Leaf basic case (paper: "a sequential computation" on the sub-list):
    # the DFT of the leaf's strided sub-view.
    def basic_case(self, view: list, incr: int) -> list:
        return fft_sequential(view)

    def supplier(self) -> Callable[[], PowerArray]:
        return PowerArray

    def accumulator(self) -> Callable[[PowerArray, complex], None]:
        # Elements arriving here have already been transformed by
        # ``basic_case`` (the leaf DFT); they are simply buffered in order.
        return PowerArray.add

    def combiner(self) -> Callable[[PowerArray, PowerArray], PowerArray]:
        def combine(p: PowerArray, q: PowerArray) -> PowerArray:
            # p = fft(even part), q = fft(odd part); emit (P+uQ) | (P−uQ).
            n = len(p)
            u = powers(n)
            pv, qv = p.items, q.items
            left = [pv[k] + u[k] * qv[k] for k in range(n)]
            right = [pv[k] - u[k] * qv[k] for k in range(n)]
            return p.replace(left + right)

        return combine

    def finisher(self) -> Callable[[PowerArray], list]:
        return PowerArray.to_list


def fft(
    values: Sequence[complex],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> list[complex]:
    """Compute the forward FFT of ``values`` (length ``2**k``) via the
    stream adaptation."""
    return power_collect(FftCollector(), values, parallel, pool, target_size)


def rfft(
    values: Sequence[float],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> list[complex]:
    """FFT of a real sequence, returning the non-redundant half.

    A real input's spectrum is conjugate-symmetric
    (``X[n−k] = conj(X[k])``), so only the first ``n/2 + 1`` bins carry
    information — the ``numpy.fft.rfft`` convention, which is the oracle.
    """
    full = fft([complex(v) for v in values], parallel, pool, target_size)
    return full[: len(values) // 2 + 1]
