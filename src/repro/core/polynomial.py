"""Polynomial evaluation — the paper's running example (Equation 4).

The PowerList definition::

    vp([a], x)      = [a]
    vp(p ♮ q, x)    = vp(p, x²) + x · vp(q, x²)

needs *descending-phase* computation: every zip split squares the
evaluation point, i.e. doubles the exponent ``x_degree``.  The paper's Java
solution defines ``PZipSpliterator`` as an inner class of the
``PolynomialValue`` collector so splits can update the outer object's
``x_degree`` (max-update inside a synchronized block, because task
execution order is nondeterministic).  :class:`PolynomialValue` is the
direct Python port: the spliterator holds an explicit ``function_object``
reference instead of an implicit ``Outer.this``.

Coefficient convention: decreasing degree —
``value = coeffs[0]·x^(n-1) + coeffs[1]·x^(n-2) + … + coeffs[n-1]``,
identical to ``numpy.polyval``.  With this convention the accumulator is a
forward Horner step ``val = val·x^{x_degree} + coeff`` and the correctness
argument in the paper goes through unchanged.

The scheme *relies on all decompositions reaching the same layer*
(paper, Section V): power-of-two lengths with midpoint/zip splitting and a
uniform target size guarantee equal leaf depth, hence one global
``x_degree`` value is consistent for every leaf.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.power_collector import PowerCollector
from repro.core.power_spliterators import SpliteratorPower2, ZipSpliterator
from repro.forkjoin.pool import ForkJoinPool


class PZipSpliterator(ZipSpliterator[float]):
    """``ZipSpliterator`` that doubles a local exponent on every split and
    publishes the maximum to the shared function object (the paper's inner
    class, with the ``PolynomialValue.this`` link made explicit)."""

    __slots__ = ("x_degree",)

    def __init__(self, source, start=0, count=None, incr=1, function_object=None,
                 x_degree: int = 1) -> None:
        super().__init__(source, start, count, incr, function_object)
        self.x_degree = x_degree

    def try_split(self):
        if self.count < 2:
            return None
        self.x_degree *= 2  # the next level evaluates at the squared point
        fo = self.function_object
        if fo is not None:
            # Non-deterministic task order: only ever raise the global
            # exponent (paper's synchronized max-update).
            with fo._state_lock:
                if fo.x_degree < self.x_degree:
                    fo.x_degree = self.x_degree
        lo = self.start
        step = self.incr
        even_count = (self.count + 1) // 2
        odd_count = self.count // 2
        self.start = lo + step
        self.incr = step * 2
        self.count = odd_count
        return PZipSpliterator(
            self.source, lo, even_count, step * 2, self.function_object, self.x_degree
        )


class _PolyContainer:
    """Leaf/interior result container: a copy of the function object state."""

    __slots__ = ("x", "val", "x_degree")

    def __init__(self, x: float, x_degree: int) -> None:
        self.x = x
        self.val = 0.0
        self.x_degree = x_degree

    def __repr__(self) -> str:
        return f"_PolyContainer(x={self.x}, val={self.val}, x_degree={self.x_degree})"


class PolynomialValue(PowerCollector[float, _PolyContainer, float]):
    """The ``Collector<Double, PolynomialValue, PolynomialValue>`` of the
    paper: evaluates a polynomial given by its coefficient list.

    Args:
        x: the evaluation point.
    """

    operator = "zip"

    def __init__(self, x: float) -> None:
        super().__init__()
        self.x = x
        self.x_degree = 1  # shared descending-phase state

    def reset(self) -> None:
        # Splits publish max x_degree into this object; a retry or a
        # sequential fallback after a faulted run must not inherit the
        # exponent of the aborted decomposition.
        with self._state_lock:
            self.x_degree = 1

    def specialized_spliterator(self, data: Sequence[float]) -> SpliteratorPower2:
        return PZipSpliterator(
            data, 0, len(data), 1, function_object=self, x_degree=self.x_degree
        )

    def supplier(self) -> Callable[[], _PolyContainer]:
        def supply() -> _PolyContainer:
            # Step 3 of the mechanism: the fresh container is a *copy* of
            # the function object, inheriting the published exponent.
            with self._state_lock:
                return _PolyContainer(self.x, self.x_degree)

        return supply

    def accumulator(self) -> Callable[[_PolyContainer, float], None]:
        def accumulate(pv: _PolyContainer, d: float) -> None:
            pv.val = pv.val * pv.x ** pv.x_degree + d

        return accumulate

    def combiner(self) -> Callable[[_PolyContainer, _PolyContainer], _PolyContainer]:
        def combine(pv1: _PolyContainer, pv2: _PolyContainer) -> _PolyContainer:
            pv1.x_degree //= 2
            pv1.val = pv1.val * pv1.x ** pv1.x_degree + pv2.val
            return pv1

        return combine

    def finisher(self) -> Callable[[_PolyContainer], float]:
        return lambda pv: pv.val


def horner(coeffs: Sequence[float], x: float) -> float:
    """Sequential reference: Horner's rule, decreasing-degree coefficients."""
    val = 0.0
    for c in coeffs:
        val = val * x + c
    return val


def polynomial_value(
    coeffs: Sequence[float],
    x: float,
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
    *,
    retry=None,
    fallback: bool = False,
    deadline=None,
) -> float:
    """Evaluate the polynomial with the stream adaptation.

    This is the paper's execution snippet: create a ``PolynomialValue``,
    derive its ``PZipSpliterator`` over the coefficients, build the
    (parallel) stream and ``collect`` with the same object.  The
    keyword-only resilience knobs pass straight through to
    :func:`~repro.core.power_collector.power_collect`.
    """
    from repro.core.power_collector import power_collect

    pv = PolynomialValue(x)
    return power_collect(
        pv, coeffs, parallel, pool, target_size,
        retry=retry, fallback=fallback, deadline=deadline,
    )
