"""Sorting networks over PowerLists: Batcher odd-even merge sort and
bitonic sort.

Both are classical PowerList showcases (the JPLF function set, paper
Section III).  Batcher sort has the homomorphic shape that fits ``collect``
directly::

    sort([a])    = [a]
    sort(p | q)  = sort(p)  ⋈  sort(q)      -- ⋈ = odd-even merge

so :class:`BatcherSortCollector` decomposes with *tie*, sorts each leaf
sequentially (``basic_case``), and merges in the combiner with the
recursive odd-even merge — the data-parallel merge network of Batcher
(1968), whose PowerList derivation is in Misra (1994), §8.

Bitonic sort is provided as the recursive reference
(:func:`bitonic_sort`), plus the compare-exchange :func:`bitonic_merge`.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.common import check_power_of_two
from repro.core.containers import PowerArray
from repro.core.power_collector import PowerCollector, power_collect
from repro.forkjoin.pool import ForkJoinPool

T = TypeVar("T")


def odd_even_merge(a: list[T], b: list[T]) -> list[T]:
    """Batcher's odd-even merge of two sorted, similar PowerLists.

    Recursively merges the even-indexed and odd-indexed subsequences, then
    repairs with one rank of compare-exchanges — O(n log n) comparators,
    depth O(log n) as a network.
    """
    n = len(a)
    if n != len(b):
        raise ValueError(f"merge requires similar lists: {n} vs {len(b)}")
    if n == 1:
        x, y = a[0], b[0]
        return [x, y] if x <= y else [y, x]
    v = odd_even_merge(a[0::2], b[0::2])
    w = odd_even_merge(a[1::2], b[1::2])
    out: list[T] = [None] * (2 * n)  # type: ignore[list-item]
    out[0] = v[0]
    for i in range(1, n):
        lo, hi = w[i - 1], v[i]
        if lo > hi:
            lo, hi = hi, lo
        out[2 * i - 1] = lo
        out[2 * i] = hi
    out[2 * n - 1] = w[n - 1]
    return out


class BatcherSortCollector(PowerCollector[T, PowerArray, list]):
    """Batcher merge sort as a PowerList collector (tie decomposition)."""

    operator = "tie"

    def basic_case(self, view: list, incr: int) -> list:
        return sorted(view)

    def supplier(self) -> Callable[[], PowerArray]:
        return PowerArray

    def accumulator(self) -> Callable[[PowerArray, T], None]:
        return PowerArray.add

    def combiner(self) -> Callable[[PowerArray, PowerArray], PowerArray]:
        def combine(a: PowerArray, b: PowerArray) -> PowerArray:
            return a.replace(odd_even_merge(a.items, b.items))

        return combine

    def finisher(self) -> Callable[[PowerArray], list]:
        return PowerArray.to_list


def batcher_merge_sort(
    data: Sequence[T],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> list[T]:
    """Sort ``data`` (length ``2**k``) with the Batcher-merge collector."""
    return power_collect(BatcherSortCollector(), data, parallel, pool, target_size)


class BitonicSortCollector(PowerCollector[T, PowerArray, list]):
    """Bitonic sort as a collector.

    The combiner receives two *ascending* runs; reversing the second
    makes their concatenation bitonic, which one
    :func:`bitonic_merge` pass sorts — so the collector shape is
    ``combine(a, b) = bitonic_merge(a | reverse(b))``.
    """

    operator = "tie"

    def basic_case(self, view: list, incr: int) -> list:
        return sorted(view)

    def supplier(self) -> Callable[[], PowerArray]:
        return PowerArray

    def accumulator(self) -> Callable[[PowerArray, T], None]:
        return PowerArray.add

    def combiner(self) -> Callable[[PowerArray, PowerArray], PowerArray]:
        def combine(a: PowerArray, b: PowerArray) -> PowerArray:
            return a.replace(bitonic_merge(a.items + b.items[::-1]))

        return combine

    def finisher(self) -> Callable[[PowerArray], list]:
        return PowerArray.to_list


def bitonic_sort_collect(
    data: Sequence[T],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> list[T]:
    """Sort ``data`` (length ``2**k``) with the bitonic collector."""
    return power_collect(BitonicSortCollector(), data, parallel, pool, target_size)


# --------------------------------------------------------------------------- #
# Bitonic network (recursive reference)
# --------------------------------------------------------------------------- #


def bitonic_merge(values: list[T], ascending: bool = True) -> list[T]:
    """Sort a *bitonic* sequence by the bitonic merging network.

    One rank of compare-exchanges between the halves leaves two bitonic
    halves with every element of the first ≤ (≥) every element of the
    second; recurse on both.
    """
    n = len(values)
    check_power_of_two(n, "bitonic sequence length")
    if n == 1:
        return list(values)
    half = n // 2
    lo = list(values[:half])
    hi = list(values[half:])
    for i in range(half):
        if (lo[i] > hi[i]) == ascending:
            lo[i], hi[i] = hi[i], lo[i]
    return bitonic_merge(lo, ascending) + bitonic_merge(hi, ascending)


def bitonic_sort(values: Sequence[T], ascending: bool = True) -> list[T]:
    """Full bitonic sort: sort halves in opposite directions, then merge."""
    n = len(values)
    check_power_of_two(n, "bitonic sort length")
    if n == 1:
        return list(values)
    half = n // 2
    first = bitonic_sort(values[:half], True)
    second = bitonic_sort(values[half:], False)
    return bitonic_merge(first + second, ascending)
