"""The tupling transformation — eliminating descending-phase computation.

The paper notes (§II, citing Niculescu & Loulergue HLPP 2018) that
functions with splitting-phase operations can often be *transformed* —
e.g. by tupling — "in order to eliminate these additional computations".
Polynomial evaluation is the canonical case.  Instead of pushing ``x²``
down through the splits (which forced the shared-state
``PZipSpliterator`` mechanism), compute **bottom-up** the pair

    g(p) = (vp(p, x), x^len(p))

Under *tie* deconstruction, with coefficients in decreasing degree order::

    g([c])     = (c, x)
    g(p | q)   = (v_p · w_q + v_q,  w_p · w_q)     where (v, w) = g(·)

— an ordinary homomorphism: plain ``TieSpliterator``, no split hooks, no
locks, no uniform-depth requirement.  :class:`PolynomialValueTupled` is
the collector; ablation AB7 measures what the transformation buys.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.power_collector import PowerCollector, power_collect
from repro.forkjoin.pool import ForkJoinPool


class _TupleBox:
    """Accumulation state: partial value ``v`` and point power ``w = x^m``."""

    __slots__ = ("x", "val", "weight", "empty")

    def __init__(self, x: float) -> None:
        self.x = x
        self.val = 0.0
        self.weight = 1.0  # x^0 — the empty-product identity
        self.empty = True

    def __repr__(self) -> str:
        return f"_TupleBox(val={self.val}, weight={self.weight})"


class PolynomialValueTupled(PowerCollector[float, _TupleBox, float]):
    """Polynomial evaluation as a pure bottom-up homomorphism.

    Compare :class:`~repro.core.polynomial.PolynomialValue`: same result,
    but the descending phase is empty — no specialized spliterator, no
    shared ``x_degree``, and correctness holds for *any* (even
    non-uniform) decomposition because each container tracks its own
    ``x^m``.
    """

    operator = "tie"

    def __init__(self, x: float) -> None:
        super().__init__()
        self.x = x

    def supplier(self) -> Callable[[], _TupleBox]:
        x = self.x
        return lambda: _TupleBox(x)

    def accumulator(self) -> Callable[[_TupleBox, float], None]:
        def accumulate(box: _TupleBox, c: float) -> None:
            # Horner step at the original point, tracking x^m alongside.
            box.val = box.val * box.x + c
            box.weight *= box.x
            box.empty = False

        return accumulate

    def combiner(self) -> Callable[[_TupleBox, _TupleBox], _TupleBox]:
        def combine(left: _TupleBox, right: _TupleBox) -> _TupleBox:
            # g(p | q) = (v_p · w_q + v_q, w_p · w_q)
            left.val = left.val * right.weight + right.val
            left.weight *= right.weight
            left.empty = left.empty and right.empty
            return left

        return combine

    def finisher(self) -> Callable[[_TupleBox], float]:
        return lambda box: box.val


def polynomial_value_tupled(
    coeffs: Sequence[float],
    x: float,
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> float:
    """Evaluate a polynomial via the tupled (descend-free) collector."""
    return power_collect(PolynomialValueTupled(x), coeffs, parallel, pool, target_size)
