"""Carry-lookahead addition as a PowerList prefix scan.

Kapur & Subramaniam (Formal Methods in System Design 1998 — the paper's
reference [4]) verified adder circuits *specified as PowerLists*.  The
carry-lookahead adder is a scan: each bit position maps to a carry status

* ``K`` (kill)      — ``a = b = 0``: carry out is 0 regardless of carry in;
* ``G`` (generate)  — ``a = b = 1``: carry out is 1 regardless;
* ``P`` (propagate) — ``a ≠ b``:     carry out equals carry in;

and status composition ``later ∘ earlier`` ("later wins unless it
propagates") is associative with identity ``P`` — so the carries are an
**exclusive scan** of the status list, computable by any of this
repository's scan engines (the Ladner–Fischer network, the
``PrefixSumCollector`` stream collector, or JPLF).  The sum bits are then
``a XOR b XOR carry_in``, bit-parallel.

Bit lists are least-significant-first, length a power of two.
"""

from __future__ import annotations

from typing import Literal, Sequence

from repro.common import IllegalArgumentError, check_power_of_two
from repro.core.prefix import PrefixSumCollector
from repro.core.power_collector import power_collect
from repro.forkjoin.pool import ForkJoinPool

Status = Literal["K", "G", "P"]


def carry_status(a: int, b: int) -> Status:
    """The KPG status of one bit position."""
    if a not in (0, 1) or b not in (0, 1):
        raise IllegalArgumentError(f"bits must be 0/1, got {a}, {b}")
    if a & b:
        return "G"
    if a ^ b:
        return "P"
    return "K"


def compose_status(earlier: Status, later: Status) -> Status:
    """``later ∘ earlier``: the later stage wins unless it propagates.

    Associative, identity ``P`` — the scan monoid of carry lookahead.
    """
    return earlier if later == "P" else later


def int_to_bits(value: int, width: int) -> list[int]:
    """``value`` as ``width`` bits, least-significant first."""
    if value < 0 or value >= (1 << width):
        raise IllegalArgumentError(f"{value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Little-endian bit list to integer."""
    return sum(bit << i for i, bit in enumerate(bits))


def ripple_carry_add(a_bits: Sequence[int], b_bits: Sequence[int]) -> tuple[list[int], int]:
    """Reference O(n)-depth ripple adder: ``(sum_bits, carry_out)``."""
    if len(a_bits) != len(b_bits):
        raise IllegalArgumentError("operands must have equal width")
    out = []
    carry = 0
    for a, b in zip(a_bits, b_bits):
        out.append(a ^ b ^ carry)
        carry = (a & b) | (carry & (a ^ b))
    return out, carry


def carry_lookahead_add(
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
) -> tuple[list[int], int]:
    """O(log n)-depth addition via the PowerList scan.

    Returns ``(sum_bits, carry_out)``; operand width must be a power of
    two.  The inclusive scan of statuses is computed by the
    ``PrefixSumCollector`` running on the (associative, non-commutative)
    composition monoid — a live demonstration that the stream adaptation
    handles arbitrary monoids, not just numbers.
    """
    if len(a_bits) != len(b_bits):
        raise IllegalArgumentError("operands must have equal width")
    width = check_power_of_two(len(a_bits), "operand width")

    statuses = [carry_status(a, b) for a, b in zip(a_bits, b_bits)]
    inclusive = power_collect(
        PrefixSumCollector(compose_status), statuses, parallel=parallel, pool=pool
    )
    # carry INTO position i is the resolved status of positions < i;
    # a fully-propagating prefix sees the external carry-in of 0.
    carries = [0] * width
    for i in range(1, width):
        carries[i] = 1 if inclusive[i - 1] == "G" else 0
    sum_bits = [a ^ b ^ c for a, b, c in zip(a_bits, b_bits, carries)]
    carry_out = 1 if inclusive[-1] == "G" else 0
    return sum_bits, carry_out


def add_integers(
    a: int, b: int, width: int, parallel: bool = False, pool: ForkJoinPool | None = None
) -> int:
    """Add two ``width``-bit integers through the lookahead network."""
    sum_bits, carry = carry_lookahead_add(
        int_to_bits(a, width), int_to_bits(b, width), parallel=parallel, pool=pool
    )
    return bits_to_int(sum_bits) + (carry << width)
