"""The paper's contribution: PowerList computation inside the Streams API.

Section IV of the paper adapts Java Streams to execute PowerList
divide-and-conquer functions.  The ingredients, reproduced here:

* :mod:`repro.core.containers` — ``PowerArray``, the mutable result
  container with ``tie_all``/``zip_all`` combination (paper Figure 2);
* :mod:`repro.core.power_spliterators` — ``TieSpliterator`` and
  ``ZipSpliterator`` with the ``POWER2`` characteristic (paper Figure 1),
  plus split hooks for descending-phase operations;
* :mod:`repro.core.power_collector` — the ``PowerCollector`` template and
  the four-step spliterator↔collector communication mechanism of
  Section V, together with the :func:`power_collect` driver;
* one module per PowerList function: identity, map/reduce, polynomial
  value (the paper's running example), ``inv``, FFT, prefix sums, the
  Equation-5 descending-transform family (instantiated as the fast
  Walsh–Hadamard transform), Batcher/bitonic sorting networks, Gray
  codes, and the PList n-way extension proposed in Section V.
"""

from repro.core.containers import PowerArray
from repro.core.power_spliterators import (
    SpliteratorPower2,
    TieSpliterator,
    ZipSpliterator,
)
from repro.core.power_collector import PowerCollector, power_collect, power_stream
from repro.core.identity import IdentityCollector
from repro.core.map_reduce import (
    HomomorphismCollector,
    PowerMapCollector,
    PowerReduceCollector,
)
from repro.core.polynomial import PolynomialValue, polynomial_value
from repro.core.inv import InvCollector, inv
from repro.core.fft import FftCollector, fft, rfft
from repro.core.prefix import PrefixSumCollector, prefix_sum
from repro.core.extended_ops import DescendTransformCollector, walsh_hadamard
from repro.core.sorting import batcher_merge_sort, bitonic_sort
from repro.core.gray import gray_code_sequence, to_gray
from repro.core.nway import NWayTieSpliterator, NWayZipSpliterator, nway_collect
from repro.core.tupling import PolynomialValueTupled, polynomial_value_tupled
from repro.core.permutations import RevCollector, rev_collect
from repro.core.adder import add_integers, carry_lookahead_add, ripple_carry_add
from repro.core.predicates import all_equal, count_if, is_sorted
from repro.core.vectorized import (
    VectorizedFftCollector,
    VectorizedMapCollector,
    VectorizedPolynomialValue,
    VectorizedReduceCollector,
    vectorized_fft,
    vectorized_polynomial_value,
)

__all__ = [
    "HomomorphismCollector",
    "all_equal",
    "count_if",
    "is_sorted",
    "VectorizedFftCollector",
    "VectorizedMapCollector",
    "VectorizedPolynomialValue",
    "VectorizedReduceCollector",
    "vectorized_fft",
    "vectorized_polynomial_value",
    "PolynomialValueTupled",
    "RevCollector",
    "add_integers",
    "carry_lookahead_add",
    "polynomial_value_tupled",
    "rev_collect",
    "ripple_carry_add",
    "DescendTransformCollector",
    "FftCollector",
    "IdentityCollector",
    "InvCollector",
    "NWayTieSpliterator",
    "NWayZipSpliterator",
    "PolynomialValue",
    "PowerArray",
    "PowerCollector",
    "PowerMapCollector",
    "PowerReduceCollector",
    "PrefixSumCollector",
    "SpliteratorPower2",
    "TieSpliterator",
    "ZipSpliterator",
    "batcher_merge_sort",
    "bitonic_sort",
    "fft",
    "gray_code_sequence",
    "inv",
    "nway_collect",
    "polynomial_value",
    "power_collect",
    "power_stream",
    "prefix_sum",
    "rfft",
    "to_gray",
    "walsh_hadamard",
]
