"""``map`` and ``reduce`` as PowerList collectors.

The paper derives ``map`` from the identity function by making the
accumulator apply a scalar function before adding::

    (list, d) -> { d = f(d); list.add(d); }

``reduce`` folds with a binary operator.  Both admit *tie*- and
*zip*-based variants (Section II); the choice only affects the memory
access pattern, which is exactly what the AB3 ablation measures:

* ``map``    — correct under both operators (order is reconstructed by the
  matching combiner);
* ``reduce`` — the *zip* variant evaluates the operator over a shuffled
  association/ordering, so it requires the operator to be associative
  **and commutative**; the *tie* variant needs associativity only.
"""

from __future__ import annotations

from typing import Callable, Generic, Sequence, TypeVar

from repro.common import IllegalArgumentError
from repro.core.containers import PowerArray
from repro.core.power_collector import PowerCollector

T = TypeVar("T")
U = TypeVar("U")


class PowerMapCollector(PowerCollector[T, PowerArray, list], Generic[T, U]):
    """``map(f)`` over a PowerList, under either deconstruction operator."""

    def __init__(self, f: Callable[[T], U], operator: str = "tie") -> None:
        super().__init__()
        if operator not in ("tie", "zip"):
            raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")
        self.operator = operator
        self.f = f

    def supplier(self) -> Callable[[], PowerArray]:
        return PowerArray

    def accumulator(self) -> Callable[[PowerArray, T], None]:
        f = self.f

        def accumulate(container: PowerArray, item: T) -> None:
            container.add(f(item))

        return accumulate

    def combiner(self) -> Callable[[PowerArray, PowerArray], PowerArray]:
        if self.operator == "zip":
            return PowerArray.zip_all
        return PowerArray.tie_all

    def finisher(self) -> Callable[[PowerArray], list]:
        return PowerArray.to_list


class HomomorphismCollector(PowerCollector, Generic[T, U]):
    """A list homomorphism ``h = reduce(op) ∘ map(f)`` in one pass.

    Related work [9] (Cole): homomorphisms on join lists are exactly the
    functions expressible as a map composed with a reduction — the
    first homomorphism theorem.  Fusing them into one collector halves
    the traffic versus chaining the two collectors; the tests assert the
    factorization law ``h(xs) = reduce(op, map(f, xs))``.

    Args:
        f: the element transform.
        op: associative combiner of transformed values (also commutative
            when ``operator="zip"``).
        operator: deconstruction operator, default ``"tie"``.
    """

    def __init__(
        self,
        f: Callable[[T], U],
        op: Callable[[U, U], U],
        operator: str = "tie",
    ) -> None:
        super().__init__()
        if operator not in ("tie", "zip"):
            raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")
        self.operator = operator
        self.f = f
        self.op = op

    def supplier(self) -> Callable[[], "_ReduceBox"]:
        return _ReduceBox

    def accumulator(self) -> Callable[["_ReduceBox", T], None]:
        f, op = self.f, self.op

        def accumulate(box: "_ReduceBox", item: T) -> None:
            value = f(item)
            if box.empty:
                box.value = value
                box.empty = False
            else:
                box.value = op(box.value, value)

        return accumulate

    def combiner(self) -> Callable[["_ReduceBox", "_ReduceBox"], "_ReduceBox"]:
        op = self.op

        def combine(a: "_ReduceBox", b: "_ReduceBox") -> "_ReduceBox":
            if b.empty:
                return a
            if a.empty:
                return b
            a.value = op(a.value, b.value)
            return a

        return combine

    def finisher(self) -> Callable[["_ReduceBox"], U]:
        def finish(box: "_ReduceBox") -> U:
            if box.empty:
                raise IllegalArgumentError("homomorphism of an empty PowerList")
            return box.value

        return finish


class _ReduceBox:
    """Partial reduction state: a value plus an emptiness flag."""

    __slots__ = ("value", "empty")

    def __init__(self) -> None:
        self.value = None
        self.empty = True


class PowerReduceCollector(PowerCollector[T, _ReduceBox, T]):
    """``reduce(op)`` over a PowerList.

    Args:
        op: associative binary operator; must also be commutative when
            ``operator="zip"`` (see module docstring).
        operator: deconstruction operator, ``"tie"`` (default) or ``"zip"``.
    """

    def __init__(self, op: Callable[[T, T], T], operator: str = "tie") -> None:
        super().__init__()
        if operator not in ("tie", "zip"):
            raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")
        self.operator = operator
        self.op = op

    def supplier(self) -> Callable[[], _ReduceBox]:
        return _ReduceBox

    def accumulator(self) -> Callable[[_ReduceBox, T], None]:
        op = self.op

        def accumulate(box: _ReduceBox, item: T) -> None:
            if box.empty:
                box.value = item
                box.empty = False
            else:
                box.value = op(box.value, item)

        return accumulate

    def combiner(self) -> Callable[[_ReduceBox, _ReduceBox], _ReduceBox]:
        op = self.op

        def combine(a: _ReduceBox, b: _ReduceBox) -> _ReduceBox:
            if b.empty:
                return a
            if a.empty:
                return b
            a.value = op(a.value, b.value)
            return a

        return combine

    def finisher(self) -> Callable[[_ReduceBox], T]:
        def finish(box: _ReduceBox) -> T:
            if box.empty:
                raise IllegalArgumentError("reduce of an empty PowerList")
            return box.value

        return finish
