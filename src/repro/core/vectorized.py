"""Vectorized leaf computations — numpy bulk basic cases.

Section V of the paper notes that the leaf computation can be specialized
by overriding ``forEachRemaining``.  This module pushes that to its
logical end on scientific-Python terms: the specialized spliterators
deliver each leaf as **one numpy strided view** (zero copy), the
accumulators process whole chunks with vectorized kernels, and the
combiners splice arrays — so the per-element Python interpreter loop
disappears from the hot path entirely.

Unlike thread parallelism (GIL-bound here), vectorization yields *real*
wall-clock speedups on this host; ablation AB7 measures scalar vs
vectorized collectors, and the correctness tests pin both to the same
oracles.

Design notes:

* chunks carry their stride: a ``(values, incr)`` pair, because for
  zip-decomposed functions the stride encodes the recursion depth (for
  polynomial evaluation the leaf's point is exactly ``x ** incr`` — the
  stride replaces the paper's shared ``x_degree`` channel);
* the polynomial collector caches the leaf power vector
  ``(x**incr) ** [m-1 .. 0]`` on the function object under the state
  lock — a read-mostly use of the same spliterator↔collector channel.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

import numpy as np

from repro.common import IllegalArgumentError, NotSimilarError
from repro.core.power_collector import PowerCollector, power_collect
from repro.core.power_spliterators import (
    SpliteratorPower2,
    TieSpliterator,
    ZipSpliterator,
)
from repro.forkjoin.pool import ForkJoinPool


class _ChunkMixin:
    """Bulk traversal: hand the whole remaining strided view to the sink.

    The view is a numpy basic slice — a zero-copy window over the source
    array.  ``try_advance`` keeps per-element semantics for generic code.

    ``next_chunk`` delivers the same ``(view, incr)`` pair as a singleton
    chunk, so these spliterators plug into the generic chunked execution
    path (:func:`repro.streams.ops.copy_into_chunked`) with identical
    semantics: a vectorized leaf is one indivisible unit of work either
    way, so ``max_size`` is ignored.
    """

    def _take_view(self):
        stop = self.start + self.count * self.incr
        chunk = self.source[self.start : stop : self.incr]
        self.start = stop
        self.count = 0
        return chunk, self.incr

    def for_each_remaining(self, action) -> None:  # type: ignore[override]
        if self.count > 0:
            action(self._take_view())

    def next_chunk(self, max_size):  # type: ignore[override]
        if max_size < 1:
            raise ValueError(f"max_size must be >= 1, got {max_size}")
        if self.count <= 0:
            return ()
        return (self._take_view(),)


class VTieSpliterator(_ChunkMixin, TieSpliterator):
    """Chunked tie spliterator over a numpy array."""

    __slots__ = ()


class VZipSpliterator(_ChunkMixin, ZipSpliterator):
    """Chunked zip spliterator over a numpy array."""

    __slots__ = ()


class ArrayBox:
    """Result container holding a numpy array (or None before the leaf)."""

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray | None = None) -> None:
        self.data = data

    def tie_all(self, other: "ArrayBox") -> "ArrayBox":
        """Concatenate (the *tie* constructor)."""
        self.data = np.concatenate((self.data, other.data))
        return self

    def zip_all(self, other: "ArrayBox") -> "ArrayBox":
        """Interleave (the *zip* constructor)."""
        a, b = self.data, other.data
        if len(a) != len(b):
            raise NotSimilarError(len(a), len(b))
        out = np.empty(2 * len(a), dtype=np.result_type(a, b))
        out[0::2] = a
        out[1::2] = b
        self.data = out
        return self

    def __repr__(self) -> str:
        return f"ArrayBox({self.data!r})"


class VectorizedPowerCollector(PowerCollector):
    """Base: numpy input, chunked spliterators, ArrayBox containers."""

    def specialized_spliterator(self, data: Sequence) -> SpliteratorPower2:
        array = np.asarray(data)
        cls = VZipSpliterator if self.operator == "zip" else VTieSpliterator
        return cls(array, 0, len(array), 1, function_object=self)

    def supplier(self) -> Callable[[], ArrayBox]:
        return ArrayBox

    def finisher(self) -> Callable[[ArrayBox], np.ndarray]:
        return lambda box: box.data


class VectorizedMapCollector(VectorizedPowerCollector):
    """``map(f)`` with ``f`` applied to whole chunks (ufunc-compatible)."""

    def __init__(self, f: Callable[[np.ndarray], np.ndarray], operator: str = "tie") -> None:
        super().__init__()
        if operator not in ("tie", "zip"):
            raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")
        self.operator = operator
        self.f = f

    def accumulator(self):
        f = self.f

        def accumulate(box: ArrayBox, chunk_incr) -> None:
            chunk, _ = chunk_incr
            result = np.asarray(f(chunk))
            box.data = result if box.data is None else np.concatenate((box.data, result))

        return accumulate

    def combiner(self):
        return ArrayBox.zip_all if self.operator == "zip" else ArrayBox.tie_all


class VectorizedReduceCollector(VectorizedPowerCollector):
    """``reduce`` with a numpy ufunc (``np.add``, ``np.maximum``, …)."""

    operator = "tie"

    def __init__(self, ufunc: np.ufunc = np.add) -> None:
        super().__init__()
        self.ufunc = ufunc

    def supplier(self) -> Callable[[], ArrayBox]:
        return ArrayBox

    def accumulator(self):
        ufunc = self.ufunc

        def accumulate(box: ArrayBox, chunk_incr) -> None:
            chunk, _ = chunk_incr
            partial = ufunc.reduce(chunk)
            box.data = partial if box.data is None else ufunc(box.data, partial)

        return accumulate

    def combiner(self):
        ufunc = self.ufunc

        def combine(a: ArrayBox, b: ArrayBox) -> ArrayBox:
            if b.data is None:
                return a
            if a.data is None:
                return b
            a.data = ufunc(a.data, b.data)
            return a

        return combine

    def finisher(self):
        def finish(box: ArrayBox):
            if box.data is None:
                raise IllegalArgumentError("reduce of an empty PowerList")
            return box.data

        return finish


class _VPolyBox:
    """Partial polynomial value plus the node's point exponent."""

    __slots__ = ("val", "x_degree")

    def __init__(self) -> None:
        self.val = 0.0
        self.x_degree = 1


class VectorizedPolynomialValue(VectorizedPowerCollector):
    """Polynomial evaluation with dot-product leaves.

    A leaf holds ``m`` coefficients at stride ``incr``; its sub-polynomial
    point is ``y = x**incr`` (the stride *is* the descending-phase state),
    and its value is the dot product with ``y**[m-1 … 0]``.  The power
    vector depends only on ``(incr, m)`` — identical across leaves — so
    it is computed once and cached on the function object.
    """

    operator = "zip"

    def __init__(self, x: float) -> None:
        super().__init__()
        self.x = x
        self._powers_cache: dict[tuple[int, int], np.ndarray] = {}

    def _leaf_powers(self, incr: int, m: int) -> np.ndarray:
        key = (incr, m)
        cached = self._powers_cache.get(key)
        if cached is None:
            with self._state_lock:
                cached = self._powers_cache.get(key)
                if cached is None:
                    y = self.x**incr
                    cached = np.power(y, np.arange(m - 1, -1, -1, dtype=np.float64))
                    self._powers_cache[key] = cached
        return cached

    def supplier(self) -> Callable[[], _VPolyBox]:
        return _VPolyBox

    def accumulator(self):
        def accumulate(box: _VPolyBox, chunk_incr) -> None:
            chunk, incr = chunk_incr
            box.val = float(np.dot(chunk, self._leaf_powers(incr, len(chunk))))
            box.x_degree = incr

        return accumulate

    def combiner(self):
        x = self.x

        def combine(a: _VPolyBox, b: _VPolyBox) -> _VPolyBox:
            a.x_degree //= 2
            a.val = a.val * x**a.x_degree + b.val
            return a

        return combine

    def finisher(self):
        return lambda box: box.val


class _VScanBox:
    """Running cumulative array plus its total."""

    __slots__ = ("prefix", "total")

    def __init__(self) -> None:
        self.prefix: np.ndarray | None = None
        self.total = 0.0


class VectorizedPrefixSumCollector(VectorizedPowerCollector):
    """Inclusive prefix sums with ``np.cumsum`` leaves.

    The combiner shifts the right prefix by the left total — one
    broadcast add per node instead of a Python loop.
    """

    operator = "tie"

    def supplier(self) -> Callable[[], _VScanBox]:
        return _VScanBox

    def accumulator(self):
        def accumulate(box: _VScanBox, chunk_incr) -> None:
            chunk, _ = chunk_incr
            box.prefix = np.cumsum(chunk)
            box.total = float(box.prefix[-1]) if len(box.prefix) else 0.0

        return accumulate

    def combiner(self):
        def combine(left: _VScanBox, right: _VScanBox) -> _VScanBox:
            if right.prefix is None:
                return left
            if left.prefix is None:
                return right
            left.prefix = np.concatenate((left.prefix, right.prefix + left.total))
            left.total += right.total
            return left

        return combine

    def finisher(self):
        return lambda box: box.prefix


def vectorized_prefix_sum(
    data: Sequence[float],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> np.ndarray:
    """Inclusive prefix sums with numpy leaves (``np.cumsum`` per leaf)."""
    return power_collect(
        VectorizedPrefixSumCollector(), np.asarray(data, dtype=np.float64),
        parallel, pool, target_size,
    )


class VectorizedFftCollector(VectorizedPowerCollector):
    """FFT with ``np.fft.fft`` leaves and vectorized butterflies."""

    operator = "zip"

    def accumulator(self):
        def accumulate(box: ArrayBox, chunk_incr) -> None:
            chunk, _ = chunk_incr
            box.data = np.fft.fft(chunk)

        return accumulate

    def combiner(self):
        def combine(p: ArrayBox, q: ArrayBox) -> ArrayBox:
            n = len(p.data)
            u = np.exp(-2j * np.pi * np.arange(n) / (2 * n))
            t = u * q.data
            p.data = np.concatenate((p.data + t, p.data - t))
            return p

        return combine


def vectorized_polynomial_value(
    coeffs: Sequence[float],
    x: float,
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> float:
    """Evaluate a polynomial with vectorized leaves (numpy dot products)."""
    return power_collect(
        VectorizedPolynomialValue(x), np.asarray(coeffs, dtype=np.float64),
        parallel, pool, target_size,
    )


def vectorized_fft(
    values: Sequence[complex],
    parallel: bool = True,
    pool: ForkJoinPool | None = None,
    target_size: int | None = None,
) -> np.ndarray:
    """FFT with ``np.fft`` leaves and vectorized butterfly combination."""
    return power_collect(
        VectorizedFftCollector(), np.asarray(values, dtype=np.complex128),
        parallel, pool, target_size,
    )
