"""Constructors and extended operators of the PowerList algebra.

``tie(p, q)`` and ``zip_(p, q)`` are the two binary constructors.  When both
operands are views with compatible access patterns into the *same* storage
the result is returned as a view (zero copy) — this is precisely what
happens when a function reassembles the two halves it was handed by a
deconstructor.  Otherwise a fresh compact storage is allocated.

The *extended* operators (``pl_add``, ``pl_mul``, generic
:func:`elementwise`) lift scalar binary operators pointwise onto similar
PowerLists, as used in the FFT definition ``(P + u×Q) | (P − u×Q)``.
"""

from __future__ import annotations

import operator
from typing import Callable, TypeVar

from repro.common import NotSimilarError
from repro.powerlist.powerlist import PowerList

T = TypeVar("T")
U = TypeVar("U")
V = TypeVar("V")


def similar(p: PowerList[T], q: PowerList[U]) -> bool:
    """True iff ``p`` and ``q`` are *similar*: equal (power-of-two) length.

    In the typed theory similarity also requires equal element type; in
    Python we keep the structural half of the condition.
    """
    return len(p) == len(q)


def _require_similar(p: PowerList[T], q: PowerList[T]) -> None:
    if not similar(p, q):
        raise NotSimilarError(len(p), len(q))


def _as_view_tie(p: PowerList[T], q: PowerList[T]) -> PowerList[T] | None:
    """Return a zero-copy view equal to ``p | q`` if one exists."""
    if not p.same_storage(q) or p.stride != q.stride:
        return None
    if q.start == p.start + len(p) * p.stride:
        return PowerList(p.storage, p.start, p.stride, 2 * len(p))
    return None


def _as_view_zip(p: PowerList[T], q: PowerList[T]) -> PowerList[T] | None:
    """Return a zero-copy view equal to ``p ♮ q`` if one exists."""
    if not p.same_storage(q) or p.stride != q.stride:
        return None
    if p.stride % 2 != 0:
        return None
    half_stride = p.stride // 2
    if q.start == p.start + half_stride:
        return PowerList(p.storage, p.start, half_stride, 2 * len(p))
    return None


def tie(p: PowerList[T], q: PowerList[T]) -> PowerList[T]:
    """The constructor ``p | q``: elements of ``p`` followed by ``q``.

    Returns a view when the operands are adjacent halves of one storage
    (the common reassembly case); otherwise materializes.
    """
    _require_similar(p, q)
    view = _as_view_tie(p, q)
    if view is not None:
        return view
    out: list[T] = list(p)
    out.extend(q)
    return PowerList(out)


def zip_(p: PowerList[T], q: PowerList[T]) -> PowerList[T]:
    """The constructor ``p ♮ q``: elements taken alternately from ``p``, ``q``.

    Returns a view when the operands are the even/odd interleave of one
    storage; otherwise materializes.
    """
    _require_similar(p, q)
    view = _as_view_zip(p, q)
    if view is not None:
        return view
    out: list[T] = [None] * (2 * len(p))  # type: ignore[list-item]
    out[0::2] = list(p)
    out[1::2] = list(q)
    return PowerList(out)


def tie_split(r: PowerList[T]) -> tuple[PowerList[T], PowerList[T]]:
    """Deconstructor for ``tie``; forwards to :meth:`PowerList.tie_split`."""
    return r.tie_split()


def zip_split(r: PowerList[T]) -> tuple[PowerList[T], PowerList[T]]:
    """Deconstructor for ``zip``; forwards to :meth:`PowerList.zip_split`."""
    return r.zip_split()


def elementwise(
    op: Callable[[T, U], V], p: PowerList[T], q: PowerList[U]
) -> PowerList[V]:
    """Lift a scalar binary operator pointwise over two similar PowerLists.

    ``elementwise(add, p, q)[i] == add(p[i], q[i])``.  This is the extended
    operator construction used in the FFT combining step.
    """
    _require_similar(p, q)
    return PowerList([op(a, b) for a, b in zip(iter(p), iter(q))])


def pl_add(p: PowerList, q: PowerList) -> PowerList:
    """Extended ``+``: pointwise addition of similar PowerLists."""
    return elementwise(operator.add, p, q)


def pl_sub(p: PowerList, q: PowerList) -> PowerList:
    """Extended ``−``: pointwise subtraction of similar PowerLists."""
    return elementwise(operator.sub, p, q)


def pl_mul(p: PowerList, q: PowerList) -> PowerList:
    """Extended ``×``: pointwise multiplication of similar PowerLists."""
    return elementwise(operator.mul, p, q)


def pl_scale(x, p: PowerList) -> PowerList:
    """The scalar extension ``x · p``: multiply every element by ``x``.

    The polynomial-value function of the paper (Equation 4) uses this to
    weight the odd-coefficient subpolynomial.
    """
    return PowerList([x * a for a in p])
