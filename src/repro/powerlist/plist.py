"""PList: the multi-way generalization of PowerList (Kornerup 1997).

A PList drops the power-of-two restriction.  Its three constructors are

* ``[.]``          — singleton;
* ``(n-way |)``    — ordered concatenation of ``n`` similar PLists;
* ``(n-way ♮)``    — ordered interleaving of ``n`` similar PLists.

The deconstructors :meth:`PList.tie_split_n` and :meth:`PList.zip_split_n`
require the arity ``n`` to divide the length; a length ``l`` therefore
admits any decomposition arity in the divisor set of ``l``.  Like
:class:`~repro.powerlist.powerlist.PowerList`, PLists are views.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence, TypeVar, Union, overload

from repro.common import IllegalArgumentError, check_positive

T = TypeVar("T")
U = TypeVar("U")


class PList(Sequence[T]):
    """An arbitrary-length view with n-way tie and zip deconstruction."""

    __slots__ = ("_storage", "_start", "_stride", "_length")

    def __init__(
        self,
        storage: Sequence[T],
        start: int | None = None,
        stride: int | None = None,
        length: int | None = None,
    ) -> None:
        if start is None and stride is None and length is None:
            start, stride, length = 0, 1, len(storage)
        if start is None or stride is None or length is None:
            raise IllegalArgumentError(
                "either pass storage only, or all of start/stride/length"
            )
        check_positive(length, "PList length")
        if stride == 0:
            raise IllegalArgumentError("stride must be non-zero")
        last = start + (length - 1) * stride
        n = len(storage)
        if not (0 <= start < n) or not (0 <= last < n):
            raise IllegalArgumentError(
                f"view (start={start}, stride={stride}, length={length}) "
                f"exceeds storage of size {n}"
            )
        self._storage = storage
        self._start = start
        self._stride = stride
        self._length = length

    # -- constructors --------------------------------------------------- #

    @classmethod
    def singleton(cls, value: T) -> "PList[T]":
        """The PList ``[value]``."""
        return cls([value])

    @classmethod
    def from_iterable(cls, items: Iterable[T]) -> "PList[T]":
        """Materialize ``items`` into fresh storage and wrap it."""
        return cls(list(items))

    @classmethod
    def tie_all(cls, parts: Sequence["PList[T]"]) -> "PList[T]":
        """The n-way ``|``: concatenation of similar PLists, in order.

        ``[ | i : i ∈ n̄ : p.i ]`` in the ordered-quantifier notation.
        """
        cls._require_similar(parts)
        out: list[T] = []
        for part in parts:
            out.extend(part)
        return cls(out)

    @classmethod
    def zip_all(cls, parts: Sequence["PList[T]"]) -> "PList[T]":
        """The n-way ``♮``: interleaving of similar PLists, in order.

        Element ``j`` of part ``i`` lands at output index ``j*n + i``.
        """
        cls._require_similar(parts)
        n = len(parts)
        m = len(parts[0])
        out: list[T] = [None] * (n * m)  # type: ignore[list-item]
        for i, part in enumerate(parts):
            out[i :: n] = list(part)
        return cls(out)

    @staticmethod
    def _require_similar(parts: Sequence["PList[T]"]) -> None:
        if not parts:
            raise IllegalArgumentError("need at least one PList")
        first = len(parts[0])
        for part in parts[1:]:
            if len(part) != first:
                raise IllegalArgumentError(
                    f"PLists must be similar: lengths {first} and {len(part)}"
                )

    # -- accessors ------------------------------------------------------ #

    @property
    def storage(self) -> Sequence[T]:
        """The backing sequence (shared between views)."""
        return self._storage

    @property
    def start(self) -> int:
        """Storage index of the first visible element."""
        return self._start

    @property
    def stride(self) -> int:
        """Storage distance between consecutive visible elements."""
        return self._stride

    def is_singleton(self) -> bool:
        """True iff the view has exactly one element."""
        return self._length == 1

    def __len__(self) -> int:
        return self._length

    @overload
    def __getitem__(self, i: int) -> T: ...

    @overload
    def __getitem__(self, i: slice) -> "PList[T]": ...

    def __getitem__(self, i: Union[int, slice]):
        if isinstance(i, slice):
            start, stop, step = i.indices(self._length)
            length = max(0, (stop - start + (step - (1 if step > 0 else -1))) // step)
            if length == 0:
                raise IllegalArgumentError("empty PList slices are not defined")
            return PList(
                self._storage,
                self._start + start * self._stride,
                self._stride * step,
                length,
            )
        if i < 0:
            i += self._length
        if not (0 <= i < self._length):
            raise IndexError(f"index {i} out of range for length {self._length}")
        return self._storage[self._start + i * self._stride]

    def __setitem__(self, i: int, value: T) -> None:
        if i < 0:
            i += self._length
        if not (0 <= i < self._length):
            raise IndexError(f"index {i} out of range for length {self._length}")
        self._storage[self._start + i * self._stride] = value  # type: ignore[index]

    def __iter__(self) -> Iterator[T]:
        idx = self._start
        for _ in range(self._length):
            yield self._storage[idx]
            idx += self._stride

    # -- deconstruction -------------------------------------------------- #

    def tie_split_n(self, n: int) -> list["PList[T]"]:
        """Deconstruct into ``n`` consecutive similar segments (n-way tie).

        Raises:
            IllegalArgumentError: unless ``1 < n`` and ``n`` divides the
                length.
        """
        self._check_arity(n)
        seg = self._length // n
        return [
            PList(self._storage, self._start + k * seg * self._stride, self._stride, seg)
            for k in range(n)
        ]

    def zip_split_n(self, n: int) -> list["PList[T]"]:
        """Deconstruct into ``n`` interleaved similar sublists (n-way zip).

        Sublist ``k`` holds the elements with index ``≡ k (mod n)``.
        """
        self._check_arity(n)
        seg = self._length // n
        return [
            PList(self._storage, self._start + k * self._stride, self._stride * n, seg)
            for k in range(n)
        ]

    def _check_arity(self, n: int) -> None:
        if n < 2:
            raise IllegalArgumentError(f"split arity must be >= 2, got {n}")
        if self._length % n != 0:
            raise IllegalArgumentError(
                f"arity {n} does not divide PList length {self._length}"
            )

    # -- conveniences ---------------------------------------------------- #

    def to_list(self) -> list[T]:
        """Copy the visible elements into a fresh Python list."""
        return list(self)

    def map(self, f: Callable[[T], U]) -> "PList[U]":
        """Apply ``f`` elementwise, materializing a fresh PList."""
        return PList([f(x) for x in self])

    def same_storage(self, other: "PList") -> bool:
        """True iff both views share one backing storage object."""
        return self._storage is other._storage

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PList):
            return len(self) == len(other) and all(
                a == b for a, b in zip(iter(self), iter(other))
            )
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("PList views are unhashable (mutable storage)")

    def __repr__(self) -> str:
        inner = ", ".join(repr(x) for x in self)
        return f"PList([{inner}])"


def plist_induction(
    p: PList[T],
    arity_of: Callable[[int], int],
    base: Callable[[T], U],
    combine: Callable[[list[U]], U],
    *,
    use_zip: bool = False,
) -> U:
    """Multi-way structural recursion over a PList.

    ``arity_of(length)`` chooses the split arity at each level (it must
    divide the current length; returning the length itself degenerates to a
    flat fold).  ``combine`` merges the ordered list of sub-results.
    """
    if p.is_singleton():
        return base(p[0])
    n = arity_of(len(p))
    parts = p.zip_split_n(n) if use_zip else p.tie_split_n(n)
    return combine(
        [plist_induction(part, arity_of, base, combine, use_zip=use_zip) for part in parts]
    )
