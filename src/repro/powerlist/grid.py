"""Two-dimensional PowerLists (Misra §10: higher-dimensional structures).

Misra's paper extends PowerLists to multiple dimensions: a 2-D PowerList
(here :class:`Grid`) admits *tie* and *zip* deconstruction **along each
axis**, and functions like matrix transposition and multiplication get
the same elegant recursive definitions the related work ([3], scheduling
partitioned matrices on GPUs) exploits::

    transpose([a])              = [a]
    transpose(A B; C D)         = (Aᵀ Cᵀ; Bᵀ Dᵀ)          (quad split)

    mul([a], [b])               = [a·b]
    mul((A B; C D), (E F; G H)) = (AE+BG  AF+BH; CE+DG  CF+DH)

Like the 1-D structure, a Grid is a *view*: flat storage plus
``(offset, row_stride, col_stride)``, so every deconstruction — and even
transposition — is O(1) stride arithmetic.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.common import IllegalArgumentError, check_power_of_two
from repro.forkjoin.pool import ForkJoinPool
from repro.forkjoin.task import RecursiveTask, invoke_all

T = TypeVar("T")


class Grid:
    """A ``2**r × 2**c`` matrix view over flat storage."""

    __slots__ = ("storage", "offset", "row_stride", "col_stride", "rows", "cols")

    def __init__(
        self,
        storage: list,
        offset: int,
        row_stride: int,
        col_stride: int,
        rows: int,
        cols: int,
    ) -> None:
        check_power_of_two(rows, "rows")
        check_power_of_two(cols, "cols")
        self.storage = storage
        self.offset = offset
        self.row_stride = row_stride
        self.col_stride = col_stride
        self.rows = rows
        self.cols = cols

    # -- constructors ----------------------------------------------------- #

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[T]]) -> "Grid":
        """Build a Grid from a row-major nested sequence."""
        if not rows:
            raise IllegalArgumentError("Grid needs at least one row")
        n_cols = len(rows[0])
        flat: list = []
        for row in rows:
            if len(row) != n_cols:
                raise IllegalArgumentError("ragged rows")
            flat.extend(row)
        return cls(flat, 0, n_cols, 1, len(rows), n_cols)

    @classmethod
    def filled(cls, value: T, rows: int, cols: int) -> "Grid":
        """A rows×cols Grid of one repeated value (fresh storage)."""
        return cls([value] * (rows * cols), 0, cols, 1, rows, cols)

    # -- element access ---------------------------------------------------- #

    def get(self, i: int, j: int) -> T:
        """Element at row ``i``, column ``j``."""
        self._check(i, j)
        return self.storage[self.offset + i * self.row_stride + j * self.col_stride]

    def set(self, i: int, j: int, value: T) -> None:
        """Write through the view."""
        self._check(i, j)
        self.storage[self.offset + i * self.row_stride + j * self.col_stride] = value

    def _check(self, i: int, j: int) -> None:
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"({i}, {j}) out of range {self.rows}x{self.cols}")

    def to_rows(self) -> list[list[T]]:
        """Materialize as a row-major nested list."""
        return [
            [self.get(i, j) for j in range(self.cols)] for i in range(self.rows)
        ]

    def is_singleton(self) -> bool:
        """True iff 1×1."""
        return self.rows == 1 and self.cols == 1

    # -- deconstruction (all O(1) views) ----------------------------------- #

    def tie_split_rows(self) -> tuple["Grid", "Grid"]:
        """Top half | bottom half."""
        if self.rows < 2:
            raise IllegalArgumentError("cannot row-split a single row")
        half = self.rows // 2
        top = Grid(self.storage, self.offset, self.row_stride, self.col_stride,
                   half, self.cols)
        bottom = Grid(self.storage, self.offset + half * self.row_stride,
                      self.row_stride, self.col_stride, half, self.cols)
        return top, bottom

    def zip_split_rows(self) -> tuple["Grid", "Grid"]:
        """Even rows ♮ odd rows."""
        if self.rows < 2:
            raise IllegalArgumentError("cannot row-split a single row")
        half = self.rows // 2
        even = Grid(self.storage, self.offset, self.row_stride * 2,
                    self.col_stride, half, self.cols)
        odd = Grid(self.storage, self.offset + self.row_stride,
                   self.row_stride * 2, self.col_stride, half, self.cols)
        return even, odd

    def tie_split_cols(self) -> tuple["Grid", "Grid"]:
        """Left half | right half."""
        if self.cols < 2:
            raise IllegalArgumentError("cannot col-split a single column")
        half = self.cols // 2
        left = Grid(self.storage, self.offset, self.row_stride, self.col_stride,
                    self.rows, half)
        right = Grid(self.storage, self.offset + half * self.col_stride,
                     self.row_stride, self.col_stride, self.rows, half)
        return left, right

    def zip_split_cols(self) -> tuple["Grid", "Grid"]:
        """Even columns ♮ odd columns."""
        if self.cols < 2:
            raise IllegalArgumentError("cannot col-split a single column")
        half = self.cols // 2
        even = Grid(self.storage, self.offset, self.row_stride,
                    self.col_stride * 2, self.rows, half)
        odd = Grid(self.storage, self.offset + self.col_stride,
                   self.row_stride, self.col_stride * 2, self.rows, half)
        return even, odd

    def quad_split(self) -> tuple["Grid", "Grid", "Grid", "Grid"]:
        """The four quadrants ``(A, B, C, D)`` = (top-left, top-right,
        bottom-left, bottom-right) — tie along both axes."""
        top, bottom = self.tie_split_rows()
        a, b = top.tie_split_cols()
        c, d = bottom.tie_split_cols()
        return a, b, c, d

    # -- views ------------------------------------------------------------- #

    def transposed_view(self) -> "Grid":
        """The transpose as an O(1) view (swap the stride roles)."""
        return Grid(self.storage, self.offset, self.col_stride, self.row_stride,
                    self.cols, self.rows)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Grid):
            return self.to_rows() == other.to_rows()
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("Grid views are unhashable")

    def __repr__(self) -> str:
        return f"Grid({self.rows}x{self.cols})"


def transpose(grid: Grid) -> Grid:
    """Recursive transposition per the 2-D PowerList definition.

    Materializes the result (use :meth:`Grid.transposed_view` for the
    zero-copy form); the recursion is the theory's quad-swap.
    """
    if grid.is_singleton():
        return Grid.from_rows([[grid.get(0, 0)]])
    if grid.rows == 1:
        return Grid.from_rows([[grid.get(0, j)] for j in range(grid.cols)])
    if grid.cols == 1:
        return Grid.from_rows([[grid.get(i, 0) for i in range(grid.rows)]])
    a, b, c, d = grid.quad_split()
    ta, tb, tc, td = transpose(a), transpose(b), transpose(c), transpose(d)
    return _assemble_quads(ta, tc, tb, td)


def _assemble_quads(a: Grid, b: Grid, c: Grid, d: Grid) -> Grid:
    """Build ``(a b; c d)`` into fresh storage."""
    rows, cols = a.rows * 2, a.cols * 2
    out = Grid.filled(None, rows, cols)
    for (quad, oi, oj) in ((a, 0, 0), (b, 0, a.cols), (c, a.rows, 0), (d, a.rows, a.cols)):
        for i in range(quad.rows):
            for j in range(quad.cols):
                out.set(oi + i, oj + j, quad.get(i, j))
    return out


def grid_add(x: Grid, y: Grid) -> Grid:
    """Element-wise sum of similar grids."""
    if (x.rows, x.cols) != (y.rows, y.cols):
        raise IllegalArgumentError("grids must be similar")
    out = Grid.filled(None, x.rows, x.cols)
    for i in range(x.rows):
        for j in range(x.cols):
            out.set(i, j, x.get(i, j) + y.get(i, j))
    return out


def grid_sub(x: Grid, y: Grid) -> Grid:
    """Element-wise difference of similar grids."""
    if (x.rows, x.cols) != (y.rows, y.cols):
        raise IllegalArgumentError("grids must be similar")
    out = Grid.filled(None, x.rows, x.cols)
    for i in range(x.rows):
        for j in range(x.cols):
            out.set(i, j, x.get(i, j) - y.get(i, j))
    return out


def strassen(x: Grid, y: Grid, threshold: int = 2) -> Grid:
    """Strassen multiplication: seven sub-products per quad level.

    Requires square ``2**k`` operands; falls back to the naive kernel at
    or below ``threshold``.  The quad algebra is the textbook one:

        M1=(A+D)(E+H)  M2=(C+D)E  M3=A(F−H)  M4=D(G−E)
        M5=(A+B)H      M6=(C−A)(E+F)         M7=(B−D)(G+H)

        (C11 C12; C21 C22) = (M1+M4−M5+M7,  M3+M5;
                              M2+M4,        M1−M2+M3+M6)
    """
    _check_mul(x, y)
    if x.rows != x.cols or y.rows != y.cols:
        raise IllegalArgumentError("strassen requires square operands")
    if x.rows <= threshold or x.rows <= 1:
        return _matmul_base(x, y)
    a, b, c, d = x.quad_split()
    e, f, g, h = y.quad_split()
    m1 = strassen(grid_add(a, d), grid_add(e, h), threshold)
    m2 = strassen(grid_add(c, d), Grid.from_rows(e.to_rows()), threshold)
    m3 = strassen(Grid.from_rows(a.to_rows()), grid_sub(f, h), threshold)
    m4 = strassen(Grid.from_rows(d.to_rows()), grid_sub(g, e), threshold)
    m5 = strassen(grid_add(a, b), Grid.from_rows(h.to_rows()), threshold)
    m6 = strassen(grid_sub(c, a), grid_add(e, f), threshold)
    m7 = strassen(grid_sub(b, d), grid_add(g, h), threshold)
    return _assemble_quads(
        grid_add(grid_sub(grid_add(m1, m4), m5), m7),
        grid_add(m3, m5),
        grid_add(m2, m4),
        grid_add(grid_sub(m1, m2), grid_add(m3, m6)),
    )


def matmul(x: Grid, y: Grid, threshold: int = 1) -> Grid:
    """Divide-and-conquer matrix multiplication (the 8-multiply quad
    recursion), sequential."""
    _check_mul(x, y)
    if x.rows <= threshold or x.cols <= 1 or y.cols <= 1 or x.rows <= 1:
        return _matmul_base(x, y)
    a, b, c, d = x.quad_split()
    e, f, g, h = y.quad_split()
    return _assemble_quads(
        grid_add(matmul(a, e, threshold), matmul(b, g, threshold)),
        grid_add(matmul(a, f, threshold), matmul(b, h, threshold)),
        grid_add(matmul(c, e, threshold), matmul(d, g, threshold)),
        grid_add(matmul(c, f, threshold), matmul(d, h, threshold)),
    )


def _check_mul(x: Grid, y: Grid) -> None:
    if x.cols != y.rows:
        raise IllegalArgumentError(
            f"shape mismatch: {x.rows}x{x.cols} @ {y.rows}x{y.cols}"
        )


def _matmul_base(x: Grid, y: Grid) -> Grid:
    out = Grid.filled(0, x.rows, y.cols)
    for i in range(x.rows):
        for j in range(y.cols):
            acc = 0
            for k in range(x.cols):
                acc += x.get(i, k) * y.get(k, j)
            out.set(i, j, acc)
    return out


class _MatmulTask(RecursiveTask):
    """Fork/join quad-recursive multiply (eight sub-products in parallel)."""

    def __init__(self, x: Grid, y: Grid, threshold: int) -> None:
        super().__init__()
        self.x, self.y, self.threshold = x, y, threshold

    def compute(self) -> Grid:
        x, y, threshold = self.x, self.y, self.threshold
        if x.rows <= threshold or x.rows <= 1 or x.cols <= 1 or y.cols <= 1:
            return _matmul_base(x, y)
        a, b, c, d = x.quad_split()
        e, f, g, h = y.quad_split()
        products = invoke_all(
            _MatmulTask(a, e, threshold), _MatmulTask(b, g, threshold),
            _MatmulTask(a, f, threshold), _MatmulTask(b, h, threshold),
            _MatmulTask(c, e, threshold), _MatmulTask(d, g, threshold),
            _MatmulTask(c, f, threshold), _MatmulTask(d, h, threshold),
        )
        return _assemble_quads(
            grid_add(products[0], products[1]),
            grid_add(products[2], products[3]),
            grid_add(products[4], products[5]),
            grid_add(products[6], products[7]),
        )


def parallel_matmul(
    x: Grid, y: Grid, pool: ForkJoinPool, threshold: int = 8
) -> Grid:
    """Multiply on the fork/join pool (eight-way task recursion)."""
    _check_mul(x, y)
    return pool.invoke(_MatmulTask(x, y, threshold))
