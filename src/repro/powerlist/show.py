"""Pretty-printing of PowerList decomposition trees.

Teaching/debugging aid: render how a PowerList decomposes under ``tie``
or ``zip`` down to a given depth, showing each node's view parameters —
making the O(1) stride arithmetic of the deconstruction operators
visible.
"""

from __future__ import annotations

from repro.common import IllegalArgumentError
from repro.powerlist.powerlist import PowerList

_MAX_SHOWN = 8


def _node_label(p: PowerList, show_elements: bool) -> str:
    label = f"[start={p.start} stride={p.stride} len={len(p)}]"
    if show_elements:
        items = list(p)[:_MAX_SHOWN]
        ellipsis = ", …" if len(p) > _MAX_SHOWN else ""
        label += " " + "⟨" + ", ".join(repr(x) for x in items) + ellipsis + "⟩"
    return label


def decomposition_tree(
    p: PowerList,
    operator: str = "tie",
    depth: int | None = None,
    show_elements: bool = True,
) -> str:
    """Render the decomposition of ``p`` as an indented ASCII tree.

    Args:
        p: the PowerList to decompose.
        operator: ``"tie"`` or ``"zip"``.
        depth: maximum levels to expand (full depth when None).
        show_elements: include (up to 8 of) each node's elements.

    >>> from repro.powerlist import PowerList
    >>> print(decomposition_tree(PowerList([0, 1, 2, 3]), "zip",
    ...                          show_elements=False))
    zip [start=0 stride=1 len=4]
    ├── [start=0 stride=2 len=2]
    │   ├── [start=0 stride=4 len=1]
    │   └── [start=2 stride=4 len=1]
    └── [start=1 stride=2 len=2]
        ├── [start=1 stride=4 len=1]
        └── [start=3 stride=4 len=1]
    """
    if operator not in ("tie", "zip"):
        raise IllegalArgumentError(f"operator must be tie or zip, got {operator!r}")
    if depth is None:
        depth = p.loglen
    lines: list[str] = [f"{operator} {_node_label(p, show_elements)}"]

    def walk(node: PowerList, level: int, prefix: str) -> None:
        if level >= depth or node.is_singleton():
            return
        first, second = (
            node.tie_split() if operator == "tie" else node.zip_split()
        )
        lines.append(f"{prefix}├── {_node_label(first, show_elements)}")
        walk(first, level + 1, prefix + "│   ")
        lines.append(f"{prefix}└── {_node_label(second, show_elements)}")
        walk(second, level + 1, prefix + "    ")

    walk(p, 0, "")
    return "\n".join(lines)


def side_by_side(p: PowerList, depth: int | None = None) -> str:
    """Both operators' trees, stacked — the two 'views over the data'."""
    return (
        decomposition_tree(p, "tie", depth, show_elements=True)
        + "\n\n"
        + decomposition_tree(p, "zip", depth, show_elements=True)
    )
