"""Shared-memory backing for ndarray PowerList storage.

The process backend (``repro.streams.parallel`` with ``backend='process'``)
needs to hand a worker process *a view* of the source data without paying
the pickle copy the alpha–beta model charges for inter-process shipping.
This module provides that: a 1-D numpy array is copied **once** into a
``multiprocessing.shared_memory`` segment (:func:`share_array`), and from
then on any view derived from it — a ``tie`` half, a ``zip`` stride-2
comb, a fork/join leaf slice — ships to a worker as a five-field
descriptor ``(segment name, dtype, count, byte offset, byte stride)``.
The child re-attaches the segment by name and rebuilds the view as
``np.ndarray(..., buffer=shm.buf, offset=..., strides=...)`` — zero-copy
on both sides.

The view math is exactly the PowerList access pattern: ``tie`` splits
keep the stride and halve the extent, ``zip`` splits double the stride —
both are closed under the descriptor form, so *any* deconstruction depth
ships in ~100 bytes.

Lifecycle: segments created here are owned by the creating process and
tracked in a registry; :func:`active_segments` lists the names still
live, and the test suite asserts it is empty at session end (no leaked
segments).  Child-side attachments are cached per segment name and
explicitly unregistered from ``multiprocessing.resource_tracker`` —
otherwise Python 3.8–3.12's tracker "helpfully" unlinks the parent's
segment when the child exits (bpo-39959).
"""

from __future__ import annotations

import atexit
import threading
from typing import Any

from multiprocessing import shared_memory

try:  # the tracker module is CPython-internal but stable since 3.8
    from multiprocessing import resource_tracker as _resource_tracker
except ImportError:  # pragma: no cover
    _resource_tracker = None

import numpy as np

from repro.common import IllegalArgumentError

#: First field of every descriptor — versioned so a future layout change
#: fails loudly instead of rebuilding garbage views.
_DESCRIPTOR_TAG = "shm-v1"

_lock = threading.Lock()
#: Segments created by this process, keyed by segment name (array storages
#: and :class:`SharedFlag` tokens both live here — everything with a
#: ``close()`` the leak guard / ``release_all`` can call).
_owned: dict[str, Any] = {}
#: Root-array lookup: id(root ndarray) → its storage.  numpy arrays do
#: not support weak references, so entries are removed explicitly by
#: ``close``/``release_all`` (the storage holds the only strong root ref
#: this module keeps).
_by_root: dict[int, "SharedArrayStorage"] = {}
#: Child-side attachment cache: segment name → (SharedMemory, root array).
_attached: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}


class SharedArrayStorage:
    """A 1-D ndarray living in one owned shared-memory segment."""

    __slots__ = ("shm", "array", "_closed")

    def __init__(self, shm: shared_memory.SharedMemory, array: np.ndarray) -> None:
        self.shm = shm
        self.array = array
        self._closed = False

    @property
    def name(self) -> str:
        return self.shm.name

    def descriptor(self) -> tuple:
        """The whole-array descriptor (offset 0, natural stride)."""
        return (
            _DESCRIPTOR_TAG,
            self.shm.name,
            self.array.dtype.str,
            int(self.array.shape[0]),
            0,
            int(self.array.strides[0]),
        )

    def close(self) -> None:
        """Unregister, unmap and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        with _lock:
            _owned.pop(self.shm.name, None)
            _by_root.pop(id(self.array), None)
        self.array = None  # drop the buffer reference before closing
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover — already gone
            pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"SharedArrayStorage({self.shm.name!r}, {state})"


class SharedFlag:
    """A one-byte cross-process flag in its own shared-memory segment.

    The process backend's cancellation token: the parent creates one per
    leaf-batch scatter and ships its segment *name* to workers; either
    side may :meth:`set` it — the parent on failure/deadline/early-stop,
    a worker on finding a short-circuit witness — and running leaves in
    every worker poll :meth:`is_set` at their chunk boundaries and abort.

    ``create`` registers the segment with the owned-segment registry (so
    the test suite's leak guard sees an abandoned flag); ``attach``
    suppresses resource-tracker registration exactly like :func:`rebuild`
    — the owner unlinks, an attaching worker must leave the tracker alone
    (bpo-39959).  The owner's :meth:`close` unlinks; an attacher's only
    unmaps.  Both sides tolerate the other being gone already: setting or
    polling after the peer closed is harmless (the mapping stays valid),
    and attaching a name the parent already unlinked raises
    ``FileNotFoundError`` for the caller to treat as "run abandoned".
    """

    __slots__ = ("shm", "_owner", "_closed")

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self.shm = shm
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls) -> "SharedFlag":
        seg = shared_memory.SharedMemory(create=True, size=1)
        seg.buf[0] = 0
        flag = cls(seg, owner=True)
        with _lock:
            _owned[seg.name] = flag
        return flag

    @classmethod
    def attach(cls, name: str) -> "SharedFlag":
        if _resource_tracker is not None:
            original_register = _resource_tracker.register
            _resource_tracker.register = lambda *args, **kwargs: None
            try:
                seg = shared_memory.SharedMemory(name=name, create=False)
            finally:
                _resource_tracker.register = original_register
        else:  # pragma: no cover — tracker internals moved
            seg = shared_memory.SharedMemory(name=name, create=False)
        return cls(seg, owner=False)

    @property
    def name(self) -> str:
        return self.shm.name

    def set(self) -> None:
        if not self._closed:
            self.shm.buf[0] = 1

    def is_set(self) -> bool:
        return not self._closed and self.shm.buf[0] != 0

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owner:
            with _lock:
                _owned.pop(self.shm.name, None)
        self.shm.close()
        if self._owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:  # pragma: no cover — already gone
                pass

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("set" if self.is_set() else "clear")
        role = "owner" if self._owner else "attached"
        return f"SharedFlag({self.shm.name!r}, {role}, {state})"


def share_array(source: Any) -> np.ndarray:
    """Copy ``source`` into a fresh shared-memory segment; return the
    shm-backed 1-D array.

    The returned array is registered as a *root*: any numpy view derived
    from it (slices, strided combs, PowerList views over it) can be
    described by :func:`describe` and shipped to workers zero-copy.  The
    caller releases the segment with :func:`release` / :func:`release_all`
    (the test suite's leak guard asserts nothing outlives the session).
    """
    arr = np.ascontiguousarray(source)
    if arr.ndim != 1:
        raise IllegalArgumentError(
            f"share_array expects a 1-D array, got shape {arr.shape}"
        )
    if arr.dtype == object:
        raise IllegalArgumentError(
            "object-dtype arrays hold references, not values — they cannot "
            "live in shared memory; convert to a numeric dtype first"
        )
    shm = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    shared = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    shared[:] = arr
    storage = SharedArrayStorage(shm, shared)
    with _lock:
        _owned[shm.name] = storage
        _by_root[id(shared)] = storage
    return shared


def storage_of(view: Any) -> SharedArrayStorage | None:
    """The owning storage of an ndarray view rooted in a shared segment,
    or None when ``view`` is not backed by one."""
    if not isinstance(view, np.ndarray):
        return None
    node: np.ndarray | None = view
    while node is not None:
        storage = _by_root.get(id(node))
        if storage is not None and not storage._closed:
            return storage
        base = node.base
        node = base if isinstance(base, np.ndarray) else None
    return None


def describe(view: np.ndarray) -> tuple | None:
    """The shipping descriptor of a 1-D ndarray view over shared storage.

    Returns ``(tag, name, dtype, count, byte offset, byte stride)``, or
    None when the view is not rooted in a segment created by
    :func:`share_array` (callers then fall back to pickling).
    """
    storage = storage_of(view)
    if storage is None or view.ndim != 1:
        return None
    root = storage.array
    offset = view.__array_interface__["data"][0] - root.__array_interface__["data"][0]
    return (
        _DESCRIPTOR_TAG,
        storage.name,
        view.dtype.str,
        int(view.shape[0]),
        int(offset),
        int(view.strides[0]),
    )


def describe_powerlist(plist: Any) -> tuple | None:
    """Descriptor for a PowerList view whose storage is a shared ndarray.

    The PowerList ``(start, stride, length)`` access pattern maps directly
    onto the byte-offset/byte-stride descriptor — ``tie`` and ``zip``
    deconstructions of a shared PowerList therefore ship without copying.
    """
    storage_arr = plist.storage
    base = storage_of(storage_arr)
    if base is None or not isinstance(storage_arr, np.ndarray):
        return None
    root = base.array
    itemsize = storage_arr.strides[0]
    offset = (
        storage_arr.__array_interface__["data"][0]
        - root.__array_interface__["data"][0]
        + plist.start * itemsize
    )
    return (
        _DESCRIPTOR_TAG,
        base.name,
        storage_arr.dtype.str,
        len(plist),
        int(offset),
        int(plist.stride * itemsize),
    )


def _attach_segment(name: str) -> tuple[shared_memory.SharedMemory, None]:
    with _lock:
        cached = _attached.get(name)
        if cached is not None:
            return cached[0], None
        # On Python < 3.13 attaching also *registers* the segment with the
        # resource tracker — a daemon shared with the owning parent — so
        # the tracker would unlink it out from under the owner, or at best
        # warn about a double unregister (bpo-39959).  The owner unlinks;
        # an attaching worker must leave the tracker alone, so registration
        # is suppressed for the duration of the attach.
        if _resource_tracker is not None:
            original_register = _resource_tracker.register
            _resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=name, create=False)
            finally:
                _resource_tracker.register = original_register
        else:  # pragma: no cover — tracker internals moved
            shm = shared_memory.SharedMemory(name=name, create=False)
        _attached[name] = (shm, None)
    return shm, None


def rebuild(descriptor: tuple) -> np.ndarray:
    """Re-materialize a view from its descriptor (worker side, zero-copy).

    Attachments are cached per segment name, so the 64 leaves of one
    terminal cost one ``shm_open`` per worker, not 64.
    """
    tag, name, dtype, count, offset, stride = descriptor
    if tag != _DESCRIPTOR_TAG:
        raise IllegalArgumentError(f"unknown shm descriptor tag {tag!r}")
    shm, _ = _attach_segment(name)
    return np.ndarray(
        (count,), dtype=np.dtype(dtype), buffer=shm.buf,
        offset=offset, strides=(stride,),
    )


def rebuild_powerlist(descriptor: tuple):
    """Unpickle hook for shm-backed PowerLists (see ``PowerList.__reduce_ex__``)."""
    from repro.powerlist.powerlist import PowerList

    view = rebuild(descriptor)
    return PowerList(view, 0, 1, len(view))


def active_segments() -> list[str]:
    """Names of segments created by this process and not yet released.

    The test suite's leak guard asserts this is empty at session end —
    a failure here means some path created a segment and lost it.
    """
    with _lock:
        return sorted(_owned)


def release(view_or_storage: Any) -> None:
    """Release the segment backing ``view_or_storage`` (array or storage)."""
    if isinstance(view_or_storage, SharedArrayStorage):
        view_or_storage.close()
        return
    storage = storage_of(view_or_storage)
    if storage is not None:
        storage.close()


def release_all() -> None:
    """Unlink every segment this process still owns (idempotent)."""
    with _lock:
        pending = list(_owned.values())
    for storage in pending:
        storage.close()


def detach_all() -> None:
    """Unmap cached child-side attachments (never unlinks — not the owner)."""
    with _lock:
        cached = list(_attached.values())
        _attached.clear()
    for shm, _ in cached:
        try:
            shm.close()
        except Exception:  # pragma: no cover
            pass


def _cleanup_at_exit() -> None:  # pragma: no cover — interpreter teardown
    detach_all()
    release_all()


atexit.register(_cleanup_at_exit)
