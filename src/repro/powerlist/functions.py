"""Specification-level PowerList functions from the literature.

Misra's paper (and the JPLF function set) define a zoo of functions whose
elegance *is* the PowerList notation; this module implements them directly
by structural recursion, serving both as usable algorithms and as oracles
for the parallel engines:

* :func:`rev` — reversal: ``rev(p | q) = rev(q) | rev(p)``;
* :func:`rotate_right` / :func:`rotate_left` — cyclic shifts via the zip
  recursions ``rr(p ♮ q) = rr(q) ♮ p`` and ``rl(p ♮ q) = q ♮ rl(p)``
  (log-depth hypercube rotations);
* :func:`shuffle` / :func:`unshuffle` — the perfect shuffle
  ``sh(p | q) = p ♮ q`` and its inverse (one constructor application each:
  the deconstruction side is a view, the constructor materializes);
* :func:`ladner_fischer_scan` — the zip-based parallel prefix
  ``ps(p ♮ q) = (shift(t) ⊕ p) ♮ t`` with ``t = ps(p ⊕ q)``, the
  O(n)-work, O(log n)-depth scan network.
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.powerlist.operators import elementwise, tie, zip_
from repro.powerlist.powerlist import PowerList

T = TypeVar("T")


def rev(p: PowerList[T]) -> PowerList[T]:
    """Reversal: ``rev([a]) = [a]``, ``rev(p | q) = rev(q) | rev(p)``."""
    if p.is_singleton():
        return p
    left, right = p.tie_split()
    return tie(rev(right), rev(left))


def rotate_right(p: PowerList[T]) -> PowerList[T]:
    """Cyclic right shift by one: ``rr(p ♮ q) = rr(q) ♮ p``.

    The recursion mirrors a one-step rotation on a hypercube: depth
    ``log2 n``, each level one zip.
    """
    if p.is_singleton():
        return p
    even, odd = p.zip_split()
    return zip_(rotate_right(odd), even)


def rotate_left(p: PowerList[T]) -> PowerList[T]:
    """Cyclic left shift by one: ``rl(p ♮ q) = q ♮ rl(p)``."""
    if p.is_singleton():
        return p
    even, odd = p.zip_split()
    return zip_(odd, rotate_left(even))


def shuffle(p: PowerList[T]) -> PowerList[T]:
    """The perfect shuffle: ``sh(p | q) = p ♮ q``.

    Interleaves the two halves (card-shuffle); a pure view operation.
    """
    if p.is_singleton():
        return p
    left, right = p.tie_split()
    return zip_(left, right)


def unshuffle(p: PowerList[T]) -> PowerList[T]:
    """Inverse perfect shuffle: ``ush(p ♮ q) = p | q``."""
    if p.is_singleton():
        return p
    even, odd = p.zip_split()
    return tie(even, odd)


def ladner_fischer_scan(
    p: PowerList[T],
    op: Callable[[T, T], T] = lambda a, b: a + b,
    identity: T = 0,
) -> PowerList[T]:
    """Inclusive prefix scan by the Ladner–Fischer zip recursion.

    ``ps(p ♮ q) = (shift(t) ⊕ p) ♮ t`` with ``t = ps(p ⊕ q)`` and
    ``shift`` prepending the identity: O(2n) work, O(log n) depth —
    the work-efficient scan network, in four lines of PowerList algebra.

    Args:
        p: the input PowerList.
        op: associative binary operator.
        identity: ``op``'s identity element (seed for the shift).
    """
    if p.is_singleton():
        return p
    even, odd = p.zip_split()
    t = ladner_fischer_scan(elementwise(op, even, odd), op, identity)
    shifted = PowerList([identity] + t.to_list()[:-1])
    return zip_(elementwise(op, shifted, even), t)
