"""PowerList theory (Misra 1994) and its PList generalization (Kornerup 1997).

A :class:`~repro.powerlist.powerlist.PowerList` is a linear structure whose
length is always a power of two, equipped with two constructors —

* ``tie``  (written ``p | q`` in the theory): elements of ``p`` followed by
  the elements of ``q``;
* ``zip``  (written ``p ♮ q``): elements of ``p`` and ``q`` taken
  alternately;

and the two corresponding deconstructors.  Functions over PowerLists are
defined by structural recursion on either operator, which yields a balanced
divide-and-conquer decomposition with implicit parallelism.

Following JPLF, the implementation is *view based*: deconstruction never
copies data, it only adjusts the ``(start, stride, length)`` access pattern
over shared storage.
"""

from repro.powerlist.powerlist import PowerList
from repro.powerlist.operators import (
    elementwise,
    pl_add,
    pl_mul,
    pl_scale,
    pl_sub,
    similar,
    tie,
    tie_split,
    zip_,
    zip_split,
)
from repro.powerlist.plist import PList
from repro.powerlist.algebra import (
    depth,
    from_function,
    induction_tie,
    induction_zip,
)
from repro.powerlist.grid import Grid
from repro.powerlist.show import decomposition_tree
from repro.powerlist import shm

__all__ = [
    "Grid",
    "shm",
    "PList",
    "PowerList",
    "decomposition_tree",
    "depth",
    "elementwise",
    "from_function",
    "induction_tie",
    "induction_zip",
    "pl_add",
    "pl_mul",
    "pl_scale",
    "pl_sub",
    "similar",
    "tie",
    "tie_split",
    "zip_",
    "zip_split",
]
