"""The view-based PowerList data structure.

A PowerList is a length ``2**k`` sequence.  Mirroring the JPLF design (and
the "use views, not copies" idiom of numerical Python), a ``PowerList`` does
not own its elements: it references a storage sequence together with an
access pattern ``(start, stride, length)``.  The two deconstruction
operators therefore cost O(1):

* ``tie`` deconstruction keeps the stride and halves the extent — the left
  half is ``storage[start : start + stride*n/2 : stride]``;
* ``zip`` deconstruction doubles the stride — the "even" view starts at
  ``start`` and the "odd" view at ``start + stride``.

Mutation through a view writes into the shared storage, which is exactly
what the combining phase of a divide-and-conquer computation needs in order
to assemble results without copying.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    MutableSequence,
    Sequence,
    TypeVar,
    Union,
    overload,
)

from repro.common import (
    IllegalArgumentError,
    NotPowerOfTwoError,
    NotSimilarError,
    check_power_of_two,
    exact_log2,
    is_power_of_two,
)

T = TypeVar("T")
U = TypeVar("U")


class PowerList(Sequence[T]):
    """A power-of-two-length view over shared storage.

    Args:
        storage: the backing sequence.  Any random-access sequence works;
            a mutable sequence (``list``, ``numpy.ndarray``) is required
            only if the view will be written through.
        start: index in ``storage`` of this view's first element.
        stride: distance in ``storage`` between consecutive view elements.
        length: number of elements visible through this view; must be a
            power of two.

    The zero-argument form ``PowerList(data)`` wraps an entire sequence
    (which must itself have power-of-two length) with ``start=0, stride=1``.
    """

    __slots__ = ("_storage", "_start", "_stride", "_length")

    def __init__(
        self,
        storage: Sequence[T],
        start: int | None = None,
        stride: int | None = None,
        length: int | None = None,
    ) -> None:
        if start is None and stride is None and length is None:
            start, stride, length = 0, 1, len(storage)
        if start is None or stride is None or length is None:
            raise IllegalArgumentError(
                "either pass storage only, or all of start/stride/length"
            )
        check_power_of_two(length, "PowerList length")
        if stride == 0:
            raise IllegalArgumentError("stride must be non-zero")
        last = start + (length - 1) * stride
        n = len(storage)
        if not (0 <= start < n) or not (0 <= last < n):
            raise IllegalArgumentError(
                f"view (start={start}, stride={stride}, length={length}) "
                f"exceeds storage of size {n}"
            )
        self._storage = storage
        self._start = start
        self._stride = stride
        self._length = length

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def of(cls, *elements: T) -> "PowerList[T]":
        """Create a PowerList owning a fresh list of the given elements."""
        return cls(list(elements))

    @classmethod
    def from_iterable(cls, items: Iterable[T]) -> "PowerList[T]":
        """Materialize ``items`` into fresh storage and wrap it."""
        return cls(list(items))

    @classmethod
    def singleton(cls, value: T) -> "PowerList[T]":
        """The PowerList ``[value]`` — the base case of the theory."""
        return cls([value])

    @classmethod
    def filled(cls, value: T, length: int) -> "PowerList[T]":
        """A PowerList of ``length`` copies of ``value``."""
        check_power_of_two(length, "length")
        return cls([value] * length)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def storage(self) -> Sequence[T]:
        """The backing sequence (shared between views)."""
        return self._storage

    @property
    def start(self) -> int:
        """Storage index of the first element of this view."""
        return self._start

    @property
    def stride(self) -> int:
        """Storage distance between consecutive elements of this view."""
        return self._stride

    @property
    def loglen(self) -> int:
        """``k`` such that ``len(self) == 2**k``."""
        return exact_log2(self._length)

    def is_singleton(self) -> bool:
        """True iff the view has exactly one element (the base case)."""
        return self._length == 1

    def __len__(self) -> int:
        return self._length

    def _storage_index(self, i: int) -> int:
        if i < 0:
            i += self._length
        if not (0 <= i < self._length):
            raise IndexError(f"index {i} out of range for length {self._length}")
        return self._start + i * self._stride

    @overload
    def __getitem__(self, i: int) -> T: ...

    @overload
    def __getitem__(self, i: slice) -> "PowerList[T]": ...

    def __getitem__(self, i: Union[int, slice]):
        if isinstance(i, slice):
            start, stop, step = i.indices(self._length)
            length = max(0, (stop - start + (step - (1 if step > 0 else -1))) // step)
            if not is_power_of_two(length):
                raise NotPowerOfTwoError(length, "sliced length")
            return PowerList(
                self._storage,
                self._start + start * self._stride,
                self._stride * step,
                length,
            )
        return self._storage[self._storage_index(i)]

    def __setitem__(self, i: int, value: T) -> None:
        storage = self._storage
        if not isinstance(storage, MutableSequence) and not hasattr(
            storage, "__setitem__"
        ):
            raise TypeError("backing storage is not mutable")
        storage[self._storage_index(i)] = value  # type: ignore[index]

    def __iter__(self) -> Iterator[T]:
        storage, stride = self._storage, self._stride
        idx = self._start
        for _ in range(self._length):
            yield storage[idx]
            idx += stride

    def __reversed__(self) -> Iterator[T]:
        storage, stride = self._storage, self._stride
        idx = self._start + (self._length - 1) * stride
        for _ in range(self._length):
            yield storage[idx]
            idx -= stride

    # ------------------------------------------------------------------ #
    # Deconstruction (the heart of the theory) — O(1), no copying
    # ------------------------------------------------------------------ #

    def tie_split(self) -> tuple["PowerList[T]", "PowerList[T]"]:
        """Deconstruct as ``p | q``: first half and second half.

        Raises:
            IllegalArgumentError: on a singleton (no deconstruction exists).
        """
        if self._length < 2:
            raise IllegalArgumentError("cannot tie-split a singleton")
        half = self._length // 2
        left = PowerList(self._storage, self._start, self._stride, half)
        right = PowerList(
            self._storage, self._start + half * self._stride, self._stride, half
        )
        return left, right

    def zip_split(self) -> tuple["PowerList[T]", "PowerList[T]"]:
        """Deconstruct as ``p ♮ q``: even-indexed and odd-indexed elements.

        Raises:
            IllegalArgumentError: on a singleton (no deconstruction exists).
        """
        if self._length < 2:
            raise IllegalArgumentError("cannot zip-split a singleton")
        half = self._length // 2
        even = PowerList(self._storage, self._start, self._stride * 2, half)
        odd = PowerList(
            self._storage, self._start + self._stride, self._stride * 2, half
        )
        return even, odd

    # ------------------------------------------------------------------ #
    # Derived conveniences
    # ------------------------------------------------------------------ #

    def to_list(self) -> list[T]:
        """Copy the visible elements into a fresh Python list."""
        return list(self)

    def map(self, f: Callable[[T], U]) -> "PowerList[U]":
        """Apply ``f`` to every element, materializing a fresh PowerList.

        This is the *specification* of ``map`` — the parallel execution
        variants live in :mod:`repro.core` and :mod:`repro.jplf`.
        """
        return PowerList([f(x) for x in self])

    def copy(self) -> "PowerList[T]":
        """A compact (stride-1) copy of this view."""
        return PowerList(self.to_list())

    def same_storage(self, other: "PowerList[Any]") -> bool:
        """True iff both views share one backing storage object."""
        return self._storage is other._storage

    def __reduce_ex__(self, protocol):
        # A PowerList whose storage lives in a shared-memory segment
        # (repro.powerlist.shm) ships to worker processes as a compact
        # (segment, dtype, count, offset, stride) descriptor instead of a
        # pickled copy of the data — tie/zip views are closed under that
        # form, so any deconstruction depth costs ~100 bytes on the wire.
        # Subclasses and non-shared storage use the default protocol.
        if type(self) is PowerList:
            from repro.powerlist import shm as _shm

            descriptor = _shm.describe_powerlist(self)
            if descriptor is not None:
                return (_shm.rebuild_powerlist, (descriptor,))
        return super().__reduce_ex__(protocol)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PowerList):
            return len(self) == len(other) and all(
                a == b for a, b in zip(iter(self), iter(other))
            )
        return NotImplemented

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("PowerList views are unhashable (mutable storage)")

    def __repr__(self) -> str:
        inner = ", ".join(repr(x) for x in self)
        return f"PowerList([{inner}])"
