"""Structural-recursion schemes over PowerLists.

PowerList functions are defined by case analysis — a base case on
singletons plus an inductive case on either ``tie`` or ``zip``
deconstruction.  :func:`induction_tie` and :func:`induction_zip` capture
those two schemes directly, so that *specifications* of functions (used as
test oracles for the parallel implementations) are one-liners:

>>> from repro.powerlist import PowerList, induction_tie
>>> double = lambda p: induction_tie(p, lambda a: [2 * a], lambda l, r: l + r)
>>> double(PowerList([1, 2, 3, 4]))
[2, 4, 6, 8]
"""

from __future__ import annotations

from typing import Callable, TypeVar

from repro.powerlist.powerlist import PowerList

T = TypeVar("T")
R = TypeVar("R")


def depth(p: PowerList) -> int:
    """Depth of the balanced decomposition tree of ``p`` (``log2 len``)."""
    return p.loglen


def from_function(f: Callable[[int], T], length: int) -> PowerList[T]:
    """Build the PowerList ``[f(0), f(1), ..., f(length-1)]``.

    Used e.g. for the ``powers`` list of the FFT: ``from_function(lambda
    i: w**i, n)``.
    """
    return PowerList([f(i) for i in range(length)])


def induction_tie(
    p: PowerList[T],
    base: Callable[[T], R],
    combine: Callable[[R, R], R],
) -> R:
    """Fold ``p`` by structural recursion on the ``tie`` deconstructor.

    ``base`` maps a singleton's element to a result; ``combine`` merges the
    results of the two halves (left half first).  This is the sequential
    *reference semantics* of every tie-based PowerList function.
    """
    if p.is_singleton():
        return base(p[0])
    left, right = p.tie_split()
    return combine(
        induction_tie(left, base, combine),
        induction_tie(right, base, combine),
    )


def induction_zip(
    p: PowerList[T],
    base: Callable[[T], R],
    combine: Callable[[R, R], R],
) -> R:
    """Fold ``p`` by structural recursion on the ``zip`` deconstructor.

    ``combine`` receives the result on the even-indexed sublist first,
    then the odd-indexed sublist — matching ``f(p ♮ q)`` notation.
    """
    if p.is_singleton():
        return base(p[0])
    even, odd = p.zip_split()
    return combine(
        induction_zip(even, base, combine),
        induction_zip(odd, base, combine),
    )
