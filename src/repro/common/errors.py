"""Exception hierarchy for the reproduction library.

The Java reference implementation relies on ``IllegalArgumentException`` and
``IllegalStateException``; we mirror those with Python-idiomatic classes so
that callers can catch a single :class:`ReproError` for anything raised by
this library while still discriminating the precise failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the ``repro`` library."""


class IllegalArgumentError(ReproError, ValueError):
    """An argument failed validation (mirrors ``IllegalArgumentException``)."""


class IllegalStateError(ReproError, RuntimeError):
    """An object was used in a state that does not admit the operation
    (mirrors ``IllegalStateException``), e.g. re-consuming a linked stream.
    """


class CancellationError(ReproError):
    """A task was cancelled before it produced a result.

    Raised by ``ForkJoinTask.join()``/``invoke()`` when the task was
    cancelled via :meth:`ForkJoinTask.cancel`, abandoned by
    ``ForkJoinPool.shutdown_now()``, or orphaned by pool termination.
    Mirrors ``java.util.concurrent.CancellationException``.
    """


class RejectedExecutionError(IllegalStateError):
    """A task was submitted to a pool that can no longer accept work
    (mirrors ``java.util.concurrent.RejectedExecutionException``).

    Subclasses :class:`IllegalStateError` so callers written against the
    pre-lifecycle API (``submit`` after ``shutdown`` raised
    ``IllegalStateError``) keep working unchanged.
    """


class TaskTimeoutError(ReproError, TimeoutError):
    """A bounded wait (``join(timeout=...)``, ``invoke(timeout=...)``,
    ``await_termination``) elapsed before completion.

    Subclasses the builtin :class:`TimeoutError` so generic timeout
    handling catches it without importing this library.
    """


class NotPowerOfTwoError(IllegalArgumentError):
    """A length that must be a power of two was not.

    PowerList theory only defines lists whose length is ``2**k``; both the
    data structure constructors and the ``POWER2`` spliterator
    characteristic check enforce this.
    """

    def __init__(self, length: int, what: str = "length") -> None:
        super().__init__(f"{what} must be a power of two, got {length}")
        self.length = length


class NotSimilarError(IllegalArgumentError):
    """Two PowerLists that must be *similar* (same length) were not.

    ``tie`` and ``zip`` are only defined on similar lists; the extended
    element-wise operators likewise require similarity.
    """

    def __init__(self, left_len: int, right_len: int) -> None:
        super().__init__(
            "PowerLists must be similar (equal length): "
            f"got lengths {left_len} and {right_len}"
        )
        self.left_len = left_len
        self.right_len = right_len
