"""Argument-validation helpers.

Small, uniform guard functions keep validation one line at call sites and
make the raised exception types consistent across the library.
"""

from __future__ import annotations

from typing import TypeVar

from repro.common.bits import is_power_of_two
from repro.common.errors import IllegalArgumentError, NotPowerOfTwoError

T = TypeVar("T")


def check_not_none(value: T | None, name: str) -> T:
    """Raise :class:`IllegalArgumentError` if ``value`` is None."""
    if value is None:
        raise IllegalArgumentError(f"{name} must not be None")
    return value


def check_positive(value: int, name: str) -> int:
    """Raise unless ``value`` is a positive integer."""
    if value <= 0:
        raise IllegalArgumentError(f"{name} must be positive, got {value}")
    return value


def check_power_of_two(value: int, what: str = "length") -> int:
    """Raise :class:`NotPowerOfTwoError` unless ``value`` is ``2**k``."""
    if not is_power_of_two(value):
        raise NotPowerOfTwoError(value, what)
    return value


def check_range(lo: int, hi: int, size: int) -> None:
    """Validate a half-open index range ``[lo, hi)`` against ``size``."""
    if not (0 <= lo <= hi <= size):
        raise IllegalArgumentError(
            f"invalid range [{lo}, {hi}) for size {size}"
        )


def check_index(index: int, size: int) -> int:
    """Validate ``0 <= index < size`` and return the index."""
    if not (0 <= index < size):
        raise IllegalArgumentError(f"index {index} out of range [0, {size})")
    return index
