"""Bit-manipulation helpers underlying PowerList index arithmetic.

``zip`` deconstruction, the ``inv`` (bit-reversal) permutation and the FFT
butterfly all reduce to manipulations of element indices in base 2; these
helpers centralize that arithmetic so it is implemented (and tested) once.
"""

from __future__ import annotations


def is_power_of_two(n: int) -> bool:
    """Return True iff ``n`` is a positive integral power of two.

    Uses the classic ``n & (n - 1)`` trick: powers of two have exactly one
    set bit, so clearing the lowest set bit yields zero.
    """
    return n > 0 and (n & (n - 1)) == 0


def exact_log2(n: int) -> int:
    """Return ``k`` such that ``2**k == n``.

    Raises:
        ValueError: if ``n`` is not a power of two.
    """
    if not is_power_of_two(n):
        raise ValueError(f"exact_log2 requires a power of two, got {n}")
    return n.bit_length() - 1


def next_power_of_two(n: int) -> int:
    """Return the smallest power of two ``>= n`` (``n`` must be positive)."""
    if n <= 0:
        raise ValueError(f"next_power_of_two requires n > 0, got {n}")
    return 1 << (n - 1).bit_length()


def bit_reverse(index: int, width: int) -> int:
    """Reverse the lowest ``width`` bits of ``index``.

    This is the index mapping computed by the PowerList function ``inv``:
    the element at position ``b`` moves to the position whose binary
    representation is ``b`` reversed (over ``width`` bits).

    >>> bit_reverse(0b001, 3)
    4
    >>> bit_reverse(0b110, 3)
    3
    """
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    if index < 0 or index >= (1 << width):
        raise ValueError(f"index {index} out of range for width {width}")
    out = 0
    for _ in range(width):
        out = (out << 1) | (index & 1)
        index >>= 1
    return out


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)
