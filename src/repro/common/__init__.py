"""Shared low-level utilities used across the reproduction packages.

This subpackage deliberately has no dependencies on the rest of ``repro``
so that every other subpackage may import it freely.
"""

from repro.common.bits import (
    bit_reverse,
    ceil_div,
    exact_log2,
    is_power_of_two,
    next_power_of_two,
)
from repro.common.checks import (
    check_index,
    check_not_none,
    check_positive,
    check_power_of_two,
    check_range,
)
from repro.common.errors import (
    CancellationError,
    IllegalArgumentError,
    IllegalStateError,
    NotPowerOfTwoError,
    NotSimilarError,
    RejectedExecutionError,
    ReproError,
    TaskTimeoutError,
)

__all__ = [
    "CancellationError",
    "IllegalArgumentError",
    "IllegalStateError",
    "NotPowerOfTwoError",
    "NotSimilarError",
    "RejectedExecutionError",
    "ReproError",
    "TaskTimeoutError",
    "bit_reverse",
    "ceil_div",
    "check_index",
    "check_not_none",
    "check_positive",
    "check_power_of_two",
    "check_range",
    "exact_log2",
    "is_power_of_two",
    "next_power_of_two",
]
