"""The per-worker work-stealing deque.

The owner treats its deque as a stack (push/pop at the "top") so that the
most recently forked — deepest, smallest — task runs first, keeping the
working set cache-hot.  Thieves steal from the opposite end (the "base"),
taking the oldest — shallowest, largest — task, which maximizes the work
moved per steal.  This is the classic Arora–Blumofe–Plaxton discipline used
by ``ForkJoinPool``.

A single mutex guards each deque.  Under the GIL a lock-free Chase–Lev
array buys nothing, and the mutex keeps the invariants obvious.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Generic, TypeVar

T = TypeVar("T")


class WorkStealingDeque(Generic[T]):
    """A double-ended task queue with owner LIFO and thief FIFO access."""

    __slots__ = ("_items", "_lock")

    def __init__(self) -> None:
        self._items: deque[T] = deque()
        self._lock = threading.Lock()

    def push(self, task: T) -> None:
        """Owner: push a freshly forked task on the top."""
        with self._lock:
            self._items.append(task)

    def pop(self) -> T | None:
        """Owner: pop the most recently pushed task (LIFO), or None."""
        # Unlocked empty check: reading deque length is atomic under the
        # GIL, and a stale non-empty answer is re-checked under the lock.
        # Workers poll empty deques constantly, so skipping the mutex on
        # the miss path removes the dominant acquire/release cost.
        if not self._items:
            return None
        with self._lock:
            if self._items:
                return self._items.pop()
            return None

    def steal(self) -> T | None:
        """Thief: take the oldest task (FIFO), or None."""
        if not self._items:
            return None
        with self._lock:
            if self._items:
                return self._items.popleft()
            return None

    def remove(self, task: T) -> bool:
        """Owner: unschedule a specific task if still queued (``tryUnfork``)."""
        with self._lock:
            try:
                self._items.remove(task)
                return True
            except ValueError:
                return False

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def __bool__(self) -> bool:
        # Direct, lock-free emptiness probe (previously len(self), which
        # paid the mutex for an answer that is advisory either way).
        return bool(self._items)
