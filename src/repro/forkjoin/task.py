"""``ForkJoinTask`` and its ``RecursiveTask``/``RecursiveAction`` subclasses.

A task passes through three states: NEW → RUNNING → DONE (normally,
exceptionally, or *cancelled*).  ``fork()`` schedules the task on the
forking worker's own deque (or the pool's external queue when called from
outside the pool); ``join()`` waits for completion — and, when the joiner
is itself a pool worker, *helps* by executing queued tasks rather than
blocking, which is what makes deeply recursive divide-and-conquer safe on
a bounded pool.

Cancellation model (see ``docs/robustness.md``): :meth:`ForkJoinTask.cancel`
moves a still-NEW task straight to DONE with a
:class:`~repro.common.CancellationError` outcome.  A task that has started
running is never interrupted — cancel then returns False and the task
completes normally, exactly like Java's non-interrupting
``ForkJoinTask.cancel``.  ``shutdown_now`` uses the same mechanism to
complete abandoned tasks exceptionally so no joiner blocks forever.
"""

from __future__ import annotations

import abc
import threading
import time
from typing import Generic, TypeVar

from repro.common import CancellationError, IllegalStateError, TaskTimeoutError

T = TypeVar("T")

_NEW = 0
_RUNNING = 1
_DONE = 2

#: External (non-worker) joins wait in bounded slices so a pool that
#: terminates without running the task cannot strand the joiner forever.
_EXTERNAL_JOIN_POLL = 0.05


class ForkJoinTask(abc.ABC, Generic[T]):
    """A lightweight task executable by a :class:`~repro.forkjoin.pool.ForkJoinPool`."""

    __slots__ = (
        "_state", "_state_lock", "_done_event", "_result", "_exception",
        "_cancelled", "_pool",
    )

    def __init__(self) -> None:
        self._state = _NEW
        self._state_lock = threading.Lock()
        self._done_event = threading.Event()
        self._result: T | None = None
        self._exception: BaseException | None = None
        self._cancelled = False
        self._pool = None  # set by fork()/pool submission

    # -- subclass API ---------------------------------------------------- #

    @abc.abstractmethod
    def exec(self) -> T:
        """Perform the computation and return its result."""

    # -- lifecycle -------------------------------------------------------- #

    def _claim(self) -> bool:
        """Atomically move NEW → RUNNING; False if somebody else ran it."""
        with self._state_lock:
            if self._state != _NEW:
                return False
            self._state = _RUNNING
            return True

    def run(self) -> bool:
        """Execute the task if not already claimed/cancelled (idempotent).

        Returns True when this call actually performed the computation —
        the signal the pool uses to count *real* executions, so cancelled
        tasks never inflate ``stats()["tasks_executed"]`` or emit ``task``
        spans.
        """
        if not self._claim():
            return False
        try:
            self._result = self.exec()
        except BaseException as exc:  # propagate through join()
            self._exception = exc
        finally:
            with self._state_lock:
                self._state = _DONE
            self._done_event.set()
        return True

    def cancel(self) -> bool:
        """Move a still-unstarted task to the cancelled terminal state.

        Returns True if this call cancelled the task; False when the task
        has already started (it will complete normally) or is already
        done.  A cancelled task's ``join()`` raises
        :class:`~repro.common.CancellationError`.  Running tasks are never
        interrupted (Java semantics).
        """
        return self.complete_exceptionally(
            CancellationError(f"{type(self).__name__} was cancelled"),
            _cancelled=True,
        )

    def complete_exceptionally(
        self, exception: BaseException, _cancelled: bool = False
    ) -> bool:
        """Force a still-NEW task to complete with ``exception``.

        Used by :meth:`ForkJoinPool.shutdown_now` to settle abandoned
        queued tasks so their joiners unblock promptly.  Returns False if
        the task already started or finished.
        """
        with self._state_lock:
            if self._state != _NEW:
                return False
            self._state = _DONE
            self._exception = exception
            self._cancelled = _cancelled
        self._done_event.set()
        pool = self._pool
        if _cancelled and pool is not None:
            pool._note_task_cancelled()
        return True

    def is_done(self) -> bool:
        """True once the task has completed (normally or exceptionally)."""
        return self._done_event.is_set()

    def is_cancelled(self) -> bool:
        """True if the task completed via :meth:`cancel` / abandonment."""
        return self._cancelled

    def fork(self) -> "ForkJoinTask[T]":
        """Schedule this task for asynchronous execution.

        When called from a pool worker the task lands on that worker's own
        deque; otherwise it must have been given a pool via
        :meth:`ForkJoinPool.submit`.
        """
        from repro.forkjoin.pool import current_worker

        worker = current_worker()
        if worker is not None:
            self._pool = worker.pool
            worker.push_local(self)
        elif self._pool is not None:
            self._pool._push_external(self)
        else:
            raise IllegalStateError(
                "fork() outside a pool worker requires prior pool.submit()"
            )
        return self

    def join(self, timeout: float | None = None) -> T:
        """Wait for completion, helping with other tasks when possible.

        Returns the computed result, re-raises the task's exception, or
        raises :class:`~repro.common.CancellationError` if the task was
        cancelled.  From outside the pool, ``timeout`` (seconds) bounds
        the wait and raises :class:`~repro.common.TaskTimeoutError` on
        expiry; inside a worker the helping loop ignores ``timeout``
        (helping cannot be abandoned midway without orphaning subtasks).
        """
        from repro.forkjoin.pool import current_worker

        worker = current_worker()
        if worker is not None:
            worker.help_join(self)
        else:
            self._external_wait(timeout)
        return self._report()

    def _external_wait(self, timeout: float | None) -> None:
        """Block an external thread until done, observing pool death.

        Waits in bounded slices: if the owning pool terminates while this
        task is still NEW (it can never run), the task is completed
        exceptionally here instead of hanging the joiner forever — the
        fix for the old unbounded ``_done_event.wait()``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if deadline is None:
                wait_slice = _EXTERNAL_JOIN_POLL
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TaskTimeoutError(
                        f"join() timed out after {timeout:.3f}s on "
                        f"{type(self).__name__}"
                    )
                wait_slice = min(_EXTERNAL_JOIN_POLL, remaining)
            if self._done_event.wait(wait_slice):
                return
            pool = self._pool
            if pool is not None and pool.is_terminated() and not self.is_done():
                self.complete_exceptionally(
                    CancellationError(
                        "pool terminated before this task could run"
                    ),
                    _cancelled=True,
                )
                return

    def invoke(self) -> T:
        """Run the task in the calling thread and return its result."""
        self.run()
        return self._report()

    def _report(self) -> T:
        if self._exception is not None:
            raise self._exception
        return self._result  # type: ignore[return-value]

    def get_raw_result(self) -> T | None:
        """The result so far (None until completion)."""
        return self._result


def invoke_all(*tasks: "ForkJoinTask") -> list:
    """Fork all given tasks and join them all, in order.

    Mirrors ``ForkJoinTask.invokeAll``: the *first* task runs in the
    calling thread (saving one deque round-trip) and the rest are forked;
    results are returned in argument order, and the first raised exception
    propagates after all tasks settle.
    """
    if not tasks:
        return []
    first, rest = tasks[0], tasks[1:]
    for task in rest:
        task.fork()
    first.run()
    results: list = [None] * len(tasks)
    failure: BaseException | None = None
    for i, task in enumerate(tasks):
        try:
            results[i] = task._report() if task is first else task.join()
        except BaseException as exc:  # settle every task before raising
            if failure is None:
                failure = exc
    if failure is not None:
        raise failure
    return results


class RecursiveTask(ForkJoinTask[T]):
    """A result-bearing task defined by overriding :meth:`compute`."""

    __slots__ = ()

    @abc.abstractmethod
    def compute(self) -> T:
        """The main computation performed by this task."""

    def exec(self) -> T:
        return self.compute()


class RecursiveAction(ForkJoinTask[None]):
    """A resultless task defined by overriding :meth:`compute`."""

    __slots__ = ()

    @abc.abstractmethod
    def compute(self) -> None:
        """The main computation performed by this task."""

    def exec(self) -> None:
        self.compute()
        return None
