"""``ForkJoinTask`` and its ``RecursiveTask``/``RecursiveAction`` subclasses.

A task passes through three states: NEW → RUNNING → DONE (normally or
exceptionally).  ``fork()`` schedules the task on the forking worker's own
deque (or the pool's external queue when called from outside the pool);
``join()`` waits for completion — and, when the joiner is itself a pool
worker, *helps* by executing queued tasks rather than blocking, which is
what makes deeply recursive divide-and-conquer safe on a bounded pool.
"""

from __future__ import annotations

import abc
import threading
from typing import Generic, TypeVar

from repro.common import IllegalStateError

T = TypeVar("T")

_NEW = 0
_RUNNING = 1
_DONE = 2


class ForkJoinTask(abc.ABC, Generic[T]):
    """A lightweight task executable by a :class:`~repro.forkjoin.pool.ForkJoinPool`."""

    __slots__ = ("_state", "_state_lock", "_done_event", "_result", "_exception", "_pool")

    def __init__(self) -> None:
        self._state = _NEW
        self._state_lock = threading.Lock()
        self._done_event = threading.Event()
        self._result: T | None = None
        self._exception: BaseException | None = None
        self._pool = None  # set by fork()/pool submission

    # -- subclass API ---------------------------------------------------- #

    @abc.abstractmethod
    def exec(self) -> T:
        """Perform the computation and return its result."""

    # -- lifecycle -------------------------------------------------------- #

    def _claim(self) -> bool:
        """Atomically move NEW → RUNNING; False if somebody else ran it."""
        with self._state_lock:
            if self._state != _NEW:
                return False
            self._state = _RUNNING
            return True

    def run(self) -> None:
        """Execute the task if not already claimed (idempotent)."""
        if not self._claim():
            return
        try:
            self._result = self.exec()
        except BaseException as exc:  # propagate through join()
            self._exception = exc
        finally:
            with self._state_lock:
                self._state = _DONE
            self._done_event.set()

    def is_done(self) -> bool:
        """True once the task has completed (normally or exceptionally)."""
        return self._done_event.is_set()

    def fork(self) -> "ForkJoinTask[T]":
        """Schedule this task for asynchronous execution.

        When called from a pool worker the task lands on that worker's own
        deque; otherwise it must have been given a pool via
        :meth:`ForkJoinPool.submit`.
        """
        from repro.forkjoin.pool import current_worker

        worker = current_worker()
        if worker is not None:
            self._pool = worker.pool
            worker.push_local(self)
        elif self._pool is not None:
            self._pool._push_external(self)
        else:
            raise IllegalStateError(
                "fork() outside a pool worker requires prior pool.submit()"
            )
        return self

    def join(self) -> T:
        """Wait for completion, helping with other tasks when possible.

        Returns the computed result, or re-raises the task's exception.
        """
        from repro.forkjoin.pool import current_worker

        worker = current_worker()
        if worker is not None:
            worker.help_join(self)
        else:
            self._done_event.wait()
        return self._report()

    def invoke(self) -> T:
        """Run the task in the calling thread and return its result."""
        self.run()
        return self._report()

    def _report(self) -> T:
        if self._exception is not None:
            raise self._exception
        return self._result  # type: ignore[return-value]

    def get_raw_result(self) -> T | None:
        """The result so far (None until completion)."""
        return self._result


def invoke_all(*tasks: "ForkJoinTask") -> list:
    """Fork all given tasks and join them all, in order.

    Mirrors ``ForkJoinTask.invokeAll``: the *first* task runs in the
    calling thread (saving one deque round-trip) and the rest are forked;
    results are returned in argument order, and the first raised exception
    propagates after all tasks settle.
    """
    if not tasks:
        return []
    first, rest = tasks[0], tasks[1:]
    for task in rest:
        task.fork()
    first.run()
    results: list = [None] * len(tasks)
    failure: BaseException | None = None
    for i, task in enumerate(tasks):
        try:
            results[i] = task._report() if task is first else task.join()
        except BaseException as exc:  # settle every task before raising
            if failure is None:
                failure = exc
    if failure is not None:
        raise failure
    return results


class RecursiveTask(ForkJoinTask[T]):
    """A result-bearing task defined by overriding :meth:`compute`."""

    __slots__ = ()

    @abc.abstractmethod
    def compute(self) -> T:
        """The main computation performed by this task."""

    def exec(self) -> T:
        return self.compute()


class RecursiveAction(ForkJoinTask[None]):
    """A resultless task defined by overriding :meth:`compute`."""

    __slots__ = ()

    @abc.abstractmethod
    def compute(self) -> None:
        """The main computation performed by this task."""

    def exec(self) -> None:
        self.compute()
        return None
