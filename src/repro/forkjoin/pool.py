"""The work-stealing thread pool (``ForkJoinPool``).

Each worker owns a :class:`~repro.forkjoin.deques.WorkStealingDeque` and
runs the scheduling loop *own-deque → steal → external queue → idle wait*.
``join`` from inside a worker never blocks while work exists anywhere —
the worker helps by running other tasks (its own first, then stolen ones),
bounding thread count regardless of recursion depth.

Lifecycle (``docs/robustness.md``): a pool moves RUNNING → SHUTDOWN →
TERMINATED.  :meth:`ForkJoinPool.shutdown` is *graceful* — new submissions
are rejected but workers drain every already-queued task before exiting,
so no joiner is abandoned.  :meth:`ForkJoinPool.shutdown_now` is *abrupt* —
queued tasks are completed exceptionally (``CancellationError``) so their
joiners unblock promptly, and workers stop after their current task.
:meth:`ForkJoinPool.await_termination` bounds the wait for either mode.

Crash containment: an exception escaping the scheduling machinery itself
(a tracer exporter raising mid-emit, a broken metrics backend) no longer
silently kills the worker thread and shrinks effective parallelism — it is
logged, counted in ``stats()["worker_crashes"]``, and the worker keeps
running (or, if the scheduling loop itself died, is respawned on a fresh
thread).

A process-wide *common pool* mirrors Java's ``ForkJoinPool.commonPool()``:
it is what parallel streams use unless told otherwise.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import deque
from typing import Optional

from repro.common import (
    CancellationError,
    IllegalStateError,
    RejectedExecutionError,
    TaskTimeoutError,
)
from repro.faults.plan import current_fault_plan
from repro.forkjoin.deques import WorkStealingDeque
from repro.forkjoin.task import ForkJoinTask
from repro.obs.metrics import MetricsRegistry, metric_key
from repro.obs.tracer import current_tracer

_log = logging.getLogger(__name__)

_tls = threading.local()

#: Fallback timeout for the idle condition-wait.  The predicate re-check
#: under the condition lock makes wakeups reliable; the timeout only
#: bounds the damage of a scheduling edge case, so it can be generous
#: (the old implementation busy-polled every 1 ms).
_IDLE_WAIT_TIMEOUT = 0.05

#: How long a stopping worker sleep-waits on a task another worker is
#: actively executing (the helping join's last resort).
_HELP_JOIN_WAIT = 0.0005


def current_worker() -> "Optional[_Worker]":
    """The :class:`_Worker` the calling thread belongs to, if any."""
    return getattr(_tls, "worker", None)


class _Worker:
    """One pool thread plus its deque and scheduling loop."""

    __slots__ = ("pool", "index", "deque", "thread", "executed", "stolen")

    def __init__(self, pool: "ForkJoinPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.deque: WorkStealingDeque[ForkJoinTask] = WorkStealingDeque()
        # Observability counters from the pool's metrics registry.  A
        # Python-level ``+=`` is not atomic (its LOAD/ADD/STORE can
        # interleave with a concurrent ``stats()`` read), so increments go
        # through locked Counters and ``stats()`` snapshots them all under
        # the registry's single lock.  Labels (pool, worker) make the
        # series scrape-ready for the Prometheus exposition.
        self.executed = pool.metrics.counter(
            "tasks_executed", pool=pool.name, worker=str(index)
        )
        self.stolen = pool.metrics.counter(
            "steals", pool=pool.name, worker=str(index)
        )
        self.thread = self._new_thread()

    def _new_thread(self) -> threading.Thread:
        return threading.Thread(
            target=self._run_loop,
            name=f"{self.pool.name}-worker-{self.index}",
            daemon=True,
        )

    def start(self) -> None:
        self.thread.start()

    def push_local(self, task: ForkJoinTask) -> None:
        """Schedule a forked task on this worker's own deque."""
        self.deque.push(task)
        self.pool._signal_work()

    def _next_task(self) -> ForkJoinTask | None:
        task = self.deque.pop()
        if task is None:
            task = self.pool._steal_for(self)
            if task is not None:
                self.stolen.inc()
                tracer = current_tracer()
                if tracer.enabled:
                    tracer.instant("steal", worker=self.index)
        if task is None:
            task = self.pool._poll_external()
        return task

    def _run_task(self, task: ForkJoinTask) -> None:
        """Run one scheduled task, tracing and counting it.

        Every ``executed`` increment pairs with exactly one ``task`` span
        when tracing is on — the invariant the stats-vs-trace agreement
        test pins down.  A cancelled task's ``run()`` is a no-op returning
        False, so it produces neither an increment nor a span.
        """
        tracer = current_tracer()
        if tracer.enabled:
            start = time.perf_counter_ns()
            if not task.run():
                return
            tracer.emit(
                "task",
                worker=self.index,
                start_ns=start,
                end_ns=time.perf_counter_ns(),
                name=type(task).__name__,
            )
        else:
            if not task.run():
                return
        self.executed.inc()

    def _run_task_contained(self, task: ForkJoinTask) -> None:
        """Run a task, absorbing infrastructure crashes.

        ``task.run()`` already captures the *computation's* exception
        inside the task; anything escaping here comes from the scheduling
        machinery (tracer emit, metrics inc).  Such a crash used to kill
        the worker thread silently — now it is logged and counted, and the
        worker keeps scheduling.
        """
        try:
            self._run_task(task)
        except BaseException as exc:  # noqa: BLE001 — containment boundary
            self.pool._note_worker_crash(self, exc, task=task)

    def _run_loop(self) -> None:
        _tls.worker = self
        pool = self.pool
        try:
            while True:
                if pool._stop:
                    break
                # Fault-injection site: ``worker:<index>``.  A ``kill``
                # strike raises out of the scheduling loop — exactly the
                # crash-containment path — so the thread dies *between*
                # tasks (no claimed task is lost) and is respawned below.
                plan = current_fault_plan()
                if plan is not None:
                    action = plan.fire(
                        "worker", (str(self.index),),
                        allowed=("kill", "delay", "raise"), index=self.index,
                    )
                    if action is not None:
                        action.apply_before()
                task = self._next_task()
                if task is not None:
                    self._run_task_contained(task)
                elif pool._shutdown:
                    # Graceful shutdown: exit only once there is nothing
                    # left to drain anywhere.  Re-checked under the
                    # condition lock so a push racing with the empty
                    # ``_next_task`` probe cannot be stranded.
                    with pool._work_available:
                        if not pool._has_queued_work():
                            break
                else:
                    pool._idle_wait(self)
        except BaseException as exc:  # noqa: BLE001 — scheduling loop died
            pool._note_worker_crash(self, exc, task=None)
            pool._respawn_worker(self)
            return  # the respawned thread takes over; skip exit bookkeeping
        finally:
            _tls.worker = None
        pool._note_worker_exit()

    def help_join(self, awaited: ForkJoinTask) -> None:
        """Run other tasks until ``awaited`` completes (helping join)."""
        # Fast path: the awaited task may still be unstarted on our own
        # deque — unfork and run it inline (Java's tryUnfork/exec).  Runs
        # through ``_run_task`` so the execution is counted and traced
        # like any other, preserving the stats-vs-trace invariant.
        pool = self.pool
        if self.deque.remove(awaited):
            self._run_task_contained(awaited)
            return
        while not awaited.is_done():
            task = self._next_task()
            if task is not None:
                # Helping continues even during shutdown_now: this worker
                # is mid-task and must finish its own subtree; progress is
                # guaranteed because shutdown_now cancels queued tasks.
                self._run_task_contained(task)
            else:
                if pool._stop:
                    # Teardown observation: nothing is runnable, so the
                    # awaited task is either executing on another worker
                    # (it will settle) or was orphaned by a race with the
                    # shutdown_now drain — settle it as cancelled so this
                    # join cannot hang the exiting worker.
                    awaited.cancel()
                # Nothing runnable anywhere: the awaited task is being
                # executed by another worker.  Short sleep-wait on it.
                awaited._done_event.wait(_HELP_JOIN_WAIT)


class ForkJoinPool:
    """A fixed-parallelism work-stealing executor.

    Args:
        parallelism: number of worker threads; defaults to ``os.cpu_count()``.
        name: thread-name prefix, useful in debugging.
    """

    def __init__(self, parallelism: int | None = None, name: str = "fjp") -> None:
        if parallelism is None:
            parallelism = os.cpu_count() or 1
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.parallelism = parallelism
        self.name = name
        #: Per-pool metrics (worker counters, idle wakeups); snapshot via
        #: :meth:`stats` or read individual metrics directly.
        self.metrics = MetricsRegistry(name=name)
        self._idle_wakeups = self.metrics.counter("idle_wakeups", pool=name)
        self._worker_crashes = self.metrics.counter("worker_crashes", pool=name)
        self._tasks_cancelled = self.metrics.counter("tasks_cancelled", pool=name)
        self._failfast_cancellations = self.metrics.counter(
            "failfast_cancellations", pool=name
        )
        self._leaf_durations = self.metrics.histogram("leaf_duration_ns", pool=name)
        self._external: deque[ForkJoinTask] = deque()
        self._external_lock = threading.Lock()
        self._work_available = threading.Condition()
        self._shutdown = False   # quiescing: reject submits, drain queues
        self._stop = False       # abrupt: stop after the current task
        self._terminated = threading.Event()
        self._live_workers = parallelism
        self._lifecycle_lock = threading.Lock()
        self._workers = [_Worker(self, i) for i in range(parallelism)]
        for worker in self._workers:
            worker.start()

    # -- submission ------------------------------------------------------- #

    def submit(self, task: ForkJoinTask) -> ForkJoinTask:
        """Enqueue ``task`` for asynchronous execution and return it.

        Raises :class:`~repro.common.RejectedExecutionError` once the pool
        has been shut down (either mode).
        """
        if self._shutdown:
            raise RejectedExecutionError(f"pool {self.name!r} is shut down")
        task._pool = self
        self._push_external(task)
        return task

    def invoke(self, task: ForkJoinTask, timeout: float | None = None):
        """Execute ``task`` and return its result.

        From a worker of this pool the task runs inline (preserving
        fork/join helping); from an external thread it is submitted and
        awaited.  ``timeout`` (seconds) bounds the external wait: on
        expiry the root task is cancelled if still unstarted and
        :class:`~repro.common.TaskTimeoutError` is raised.  (A root that
        already started keeps running in the background — workers are
        never interrupted mid-task.)  ``timeout`` is ignored for the
        inline case, where the caller *is* the executing worker.
        """
        worker = current_worker()
        if worker is not None and worker.pool is self:
            task._pool = self
            return task.invoke()
        self.submit(task)
        try:
            return task.join(timeout=timeout)
        except TaskTimeoutError:
            task.cancel()  # unschedule if nothing claimed it yet
            raise

    # -- internals used by workers/tasks ---------------------------------- #

    def _push_external(self, task: ForkJoinTask) -> None:
        with self._external_lock:
            self._external.append(task)
        self._signal_work()
        # A push that raced past the submit-time rejection check into an
        # already-dead pool would otherwise wait forever: settle it.
        if self._terminated.is_set() or self._stop:
            if task.cancel():
                with self._external_lock:
                    try:
                        self._external.remove(task)
                    except ValueError:
                        pass

    def _poll_external(self) -> ForkJoinTask | None:
        with self._external_lock:
            if self._external:
                return self._external.popleft()
            return None

    def _steal_for(self, thief: _Worker) -> ForkJoinTask | None:
        # Scan the other workers starting just past the thief to spread
        # contention; first non-empty deque yields its oldest task.
        n = len(self._workers)
        for offset in range(1, n):
            victim = self._workers[(thief.index + offset) % n]
            task = victim.deque.steal()
            if task is not None:
                return task
        return None

    def _signal_work(self) -> None:
        with self._work_available:
            self._work_available.notify_all()

    def _has_queued_work(self) -> bool:
        # Called with ``_work_available`` held, so a concurrent push +
        # ``_signal_work`` cannot slip between this check and the wait.
        if self._external:
            return True
        return any(worker.deque for worker in self._workers)

    def _idle_wait(self, worker: "_Worker") -> None:
        """Block until work may be available (or shutdown).

        A real condition-wait with a predicate re-check, replacing the
        old 1 ms busy-poll: a worker that finds no work parks until a
        ``_signal_work`` (every push and shutdown signals) instead of
        waking a thousand times a second.  The timeout is only a safety
        net; idle wakeups are counted so regressions show up in
        ``stats()``.
        """
        tracer = current_tracer()
        start = time.perf_counter_ns() if tracer.enabled else 0
        with self._work_available:
            if self._shutdown or self._stop or self._has_queued_work():
                return
            self._work_available.wait(timeout=_IDLE_WAIT_TIMEOUT)
        self._idle_wakeups.inc()
        if tracer.enabled:
            tracer.emit(
                "idle",
                worker=worker.index,
                start_ns=start,
                end_ns=time.perf_counter_ns(),
            )

    # -- crash containment ------------------------------------------------- #

    def _note_worker_crash(
        self, worker: "_Worker", exc: BaseException, task: ForkJoinTask | None
    ) -> None:
        """Record an exception that escaped the scheduling machinery."""
        self._worker_crashes.inc()
        _log.error(
            "worker %s-%d crashed%s: %r",
            self.name,
            worker.index,
            f" running {type(task).__name__}" if task is not None else "",
            exc,
        )
        try:
            tracer = current_tracer()
            if tracer.enabled:
                tracer.instant("crash", worker=worker.index, error=type(exc).__name__)
        except BaseException:  # the tracer itself may be the crasher
            pass

    def _respawn_worker(self, worker: "_Worker") -> None:
        """Replace a worker whose scheduling loop died.

        The :class:`_Worker` object (deque, counters, index) is reused on
        a fresh thread, so queued tasks and stats survive the crash.  No
        respawn happens during teardown — the exit path handles that.
        """
        with self._lifecycle_lock:
            if self._stop or (self._shutdown and not self._has_pending_work()):
                self._note_worker_exit_locked()
                return
            worker.thread = worker._new_thread()
            worker.start()

    def _has_pending_work(self) -> bool:
        if self._external:
            return True
        return any(w.deque for w in self._workers)

    def _note_worker_exit(self) -> None:
        with self._lifecycle_lock:
            self._note_worker_exit_locked()

    def _note_worker_exit_locked(self) -> None:
        self._live_workers -= 1
        if self._live_workers <= 0:
            self._terminated.set()

    def _note_task_cancelled(self) -> None:
        self._tasks_cancelled.inc()

    def _note_failfast_cancellation(self) -> None:
        """One fail-fast trip: a parallel terminal's first failure has
        cancelled the remaining task tree (wired from repro.streams)."""
        self._failfast_cancellations.inc()

    def _observe_leaf_duration(self, duration_ns: int) -> None:
        """Record one fork/join leaf's wall time (wired from the stream
        profiler; feeds the pool's labeled ``leaf_duration_ns`` series)."""
        self._leaf_durations.observe(duration_ns)

    def scheduling_snapshot(self) -> dict:
        """Cheap point-in-time read of the scheduler feedback counters.

        Unlike :meth:`stats` — a full registry snapshot under the registry
        lock — this reads only the three counters the adaptive split
        policy (:mod:`repro.streams.adaptive`) differences across a run,
        so terminals can afford one call per execution.
        """
        return {
            "steals": sum(w.stolen.value for w in self._workers),
            "tasks_executed": sum(w.executed.value for w in self._workers),
            "idle_wakeups": self._idle_wakeups.value,
        }

    # -- observability ------------------------------------------------------ #

    def stats(self) -> dict:
        """Counters since pool creation: tasks run, steals, crashes and
        cancellations, per worker and total — the real-pool mirror of
        :class:`~repro.simcore.machine.SimResult`'s metrics.

        ``tasks_executed`` counts tasks whose computation actually ran;
        cancelled tasks (claimed by no worker) are excluded, which keeps
        it in lockstep with the number of ``task`` spans in a traced run.

        The whole dict is one consistent cut: all counters are read in a
        single :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` under
        the registry lock, so totals always equal the sum of the
        per-worker rows even while workers are running.
        """
        snap = self.metrics.snapshot()
        name = self.name
        per_worker = [
            {
                "worker": w.index,
                "executed": snap[
                    metric_key("tasks_executed", pool=name, worker=str(w.index))
                ],
                "stolen": snap[
                    metric_key("steals", pool=name, worker=str(w.index))
                ],
            }
            for w in self._workers
        ]
        return {
            "parallelism": self.parallelism,
            "tasks_executed": sum(row["executed"] for row in per_worker),
            "steals": sum(row["stolen"] for row in per_worker),
            "idle_wakeups": snap[metric_key("idle_wakeups", pool=name)],
            "worker_crashes": snap[metric_key("worker_crashes", pool=name)],
            "tasks_cancelled": snap[metric_key("tasks_cancelled", pool=name)],
            "failfast_cancellations": snap[
                metric_key("failfast_cancellations", pool=name)
            ],
            "per_worker": per_worker,
        }

    # -- lifecycle --------------------------------------------------------- #

    def is_shutdown(self) -> bool:
        """True once either shutdown mode has been initiated."""
        return self._shutdown

    def is_terminated(self) -> bool:
        """True once every worker thread has exited."""
        return self._terminated.is_set()

    def shutdown(self) -> None:
        """Graceful shutdown: reject new work, *drain* queued work, stop.

        Every task already submitted or forked keeps its completion
        guarantee — workers exit only when all queues are empty, so no
        external ``join()`` is left hanging (the old implementation
        abandoned queued tasks).  Idempotent; returns after workers exit
        or a bounded wait elapses (use :meth:`await_termination` for a
        caller-controlled bound).
        """
        self._shutdown = True
        self._signal_work()
        self.await_termination(timeout=2.0, _raise=False)

    def shutdown_now(self) -> list[ForkJoinTask]:
        """Abrupt shutdown: cancel queued work, stop after current tasks.

        Every submitted-but-unstarted task is completed exceptionally
        with :class:`~repro.common.CancellationError`, so any thread
        blocked in its ``join()`` unblocks promptly instead of hanging
        forever.  Tasks already running finish (workers are never
        interrupted).  Returns the list of cancelled tasks.
        """
        self._shutdown = True
        self._stop = True
        self._signal_work()
        cancelled: list[ForkJoinTask] = []
        # Drain the external queue and every worker deque, settling each
        # abandoned task.  steal() is safe against concurrent owners, and
        # workers re-check _stop before claiming anything new.
        while True:
            task = self._poll_external()
            if task is None:
                break
            if task.cancel():
                cancelled.append(task)
        for worker in self._workers:
            while True:
                task = worker.deque.steal()
                if task is None:
                    break
                if task.cancel():
                    cancelled.append(task)
        self._signal_work()
        self.await_termination(timeout=2.0, _raise=False)
        return cancelled

    def await_termination(self, timeout: float | None = None, _raise: bool = True) -> bool:
        """Wait until all workers have exited after a shutdown call.

        Returns True on termination; on expiry raises
        :class:`~repro.common.TaskTimeoutError` (or returns False when
        called with ``_raise=False``, the internal best-effort mode).
        """
        if self._terminated.wait(timeout):
            return True
        if _raise:
            raise TaskTimeoutError(
                f"pool {self.name!r} did not terminate within {timeout}s"
            )
        return False

    def __enter__(self) -> "ForkJoinPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"ForkJoinPool(name={self.name!r}, parallelism={self.parallelism})"


_common_lock = threading.Lock()
_common: ForkJoinPool | None = None
_common_parallelism: int | None = None


def common_pool() -> ForkJoinPool:
    """The lazily created process-wide pool used by parallel streams."""
    global _common
    with _common_lock:
        if _common is None:
            _common = ForkJoinPool(_common_parallelism, name="common")
        return _common


def common_pool_parallelism() -> int:
    """The parallelism the common pool has — or would have if created.

    Lets planning code (``Stream.explain()``) predict split trees without
    instantiating the pool as a side effect.
    """
    with _common_lock:
        if _common is not None:
            return _common.parallelism
        if _common_parallelism is not None:
            return _common_parallelism
    return os.cpu_count() or 1


def set_common_pool_parallelism(parallelism: int) -> None:
    """Configure the common pool's width; only while no common pool exists.

    Mirrors the ``java.util.concurrent.ForkJoinPool.common.parallelism``
    system property.  After first use, call :func:`shutdown_common_pool`
    first to retire the live pool, then reconfigure.
    """
    global _common_parallelism
    with _common_lock:
        if _common is not None:
            raise IllegalStateError(
                "common pool already created; shutdown_common_pool() first"
            )
        _common_parallelism = parallelism


def shutdown_common_pool(now: bool = False) -> ForkJoinPool | None:
    """Retire the process-wide common pool (if one was created).

    Gracefully drains it (or cancels queued work with ``now=True``) and
    clears the singleton so the next :func:`common_pool` call — or a
    fresh :func:`set_common_pool_parallelism` — builds a new one.  Exists
    so tests and benchmarks can reconfigure common-pool width, which used
    to be impossible after first use.  Returns the retired pool, or None.
    """
    global _common
    with _common_lock:
        pool, _common = _common, None
    if pool is not None:
        if now:
            pool.shutdown_now()
        else:
            pool.shutdown()
    return pool
