"""The work-stealing thread pool (``ForkJoinPool``).

Each worker owns a :class:`~repro.forkjoin.deques.WorkStealingDeque` and
runs the scheduling loop *own-deque → steal → external queue → idle wait*.
``join`` from inside a worker never blocks while work exists anywhere —
the worker helps by running other tasks (its own first, then stolen ones),
bounding thread count regardless of recursion depth.

A process-wide *common pool* mirrors Java's ``ForkJoinPool.commonPool()``:
it is what parallel streams use unless told otherwise.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Optional

from repro.common import IllegalStateError
from repro.forkjoin.deques import WorkStealingDeque
from repro.forkjoin.task import ForkJoinTask
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import current_tracer

_tls = threading.local()

#: Fallback timeout for the idle condition-wait.  The predicate re-check
#: under the condition lock makes wakeups reliable; the timeout only
#: bounds the damage of a scheduling edge case, so it can be generous
#: (the old implementation busy-polled every 1 ms).
_IDLE_WAIT_TIMEOUT = 0.05


def current_worker() -> "Optional[_Worker]":
    """The :class:`_Worker` the calling thread belongs to, if any."""
    return getattr(_tls, "worker", None)


class _Worker:
    """One pool thread plus its deque and scheduling loop."""

    __slots__ = ("pool", "index", "deque", "thread", "executed", "stolen")

    def __init__(self, pool: "ForkJoinPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.deque: WorkStealingDeque[ForkJoinTask] = WorkStealingDeque()
        # Observability counters from the pool's metrics registry.  A
        # Python-level ``+=`` is not atomic (its LOAD/ADD/STORE can
        # interleave with a concurrent ``stats()`` read), so increments go
        # through locked Counters and ``stats()`` snapshots them all under
        # the registry's single lock.
        self.executed = pool.metrics.counter(f"worker.{index}.executed")
        self.stolen = pool.metrics.counter(f"worker.{index}.stolen")
        self.thread = threading.Thread(
            target=self._run_loop, name=f"{pool.name}-worker-{index}", daemon=True
        )

    def start(self) -> None:
        self.thread.start()

    def push_local(self, task: ForkJoinTask) -> None:
        """Schedule a forked task on this worker's own deque."""
        self.deque.push(task)
        self.pool._signal_work()

    def _next_task(self) -> ForkJoinTask | None:
        task = self.deque.pop()
        if task is None:
            task = self.pool._steal_for(self)
            if task is not None:
                self.stolen.inc()
                tracer = current_tracer()
                if tracer.enabled:
                    tracer.instant("steal", worker=self.index)
        if task is None:
            task = self.pool._poll_external()
        return task

    def _run_task(self, task: ForkJoinTask) -> None:
        """Run one scheduled task, tracing and counting it.

        Every ``executed`` increment pairs with exactly one ``task`` span
        when tracing is on — the invariant the stats-vs-trace agreement
        test pins down.
        """
        tracer = current_tracer()
        if tracer.enabled:
            start = time.perf_counter_ns()
            task.run()
            tracer.emit(
                "task",
                worker=self.index,
                start_ns=start,
                end_ns=time.perf_counter_ns(),
                name=type(task).__name__,
            )
        else:
            task.run()
        self.executed.inc()

    def _run_loop(self) -> None:
        _tls.worker = self
        pool = self.pool
        try:
            while not pool._shutdown:
                task = self._next_task()
                if task is not None:
                    self._run_task(task)
                else:
                    pool._idle_wait(self)
        finally:
            _tls.worker = None

    def help_join(self, awaited: ForkJoinTask) -> None:
        """Run other tasks until ``awaited`` completes (helping join)."""
        # Fast path: the awaited task may still be unstarted on our own
        # deque — unfork and run it inline (Java's tryUnfork/exec).
        if self.deque.remove(awaited):
            awaited.run()
            return
        while not awaited.is_done():
            task = self._next_task()
            if task is not None:
                self._run_task(task)
            else:
                # Nothing runnable anywhere: the awaited task is being
                # executed by another worker.  Short sleep-wait on it.
                awaited._done_event.wait(0.0005)


class ForkJoinPool:
    """A fixed-parallelism work-stealing executor.

    Args:
        parallelism: number of worker threads; defaults to ``os.cpu_count()``.
        name: thread-name prefix, useful in debugging.
    """

    def __init__(self, parallelism: int | None = None, name: str = "fjp") -> None:
        if parallelism is None:
            parallelism = os.cpu_count() or 1
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.parallelism = parallelism
        self.name = name
        #: Per-pool metrics (worker counters, idle wakeups); snapshot via
        #: :meth:`stats` or read individual metrics directly.
        self.metrics = MetricsRegistry(name=name)
        self._idle_wakeups = self.metrics.counter("idle_wakeups")
        self._external: deque[ForkJoinTask] = deque()
        self._external_lock = threading.Lock()
        self._work_available = threading.Condition()
        self._shutdown = False
        self._workers = [_Worker(self, i) for i in range(parallelism)]
        for worker in self._workers:
            worker.start()

    # -- submission ------------------------------------------------------- #

    def submit(self, task: ForkJoinTask) -> ForkJoinTask:
        """Enqueue ``task`` for asynchronous execution and return it."""
        if self._shutdown:
            raise IllegalStateError("pool is shut down")
        task._pool = self
        self._push_external(task)
        return task

    def invoke(self, task: ForkJoinTask):
        """Execute ``task`` and return its result.

        From a worker of this pool the task runs inline (preserving
        fork/join helping); from an external thread it is submitted and
        awaited.
        """
        worker = current_worker()
        if worker is not None and worker.pool is self:
            task._pool = self
            return task.invoke()
        self.submit(task)
        return task.join()

    # -- internals used by workers/tasks ---------------------------------- #

    def _push_external(self, task: ForkJoinTask) -> None:
        with self._external_lock:
            self._external.append(task)
        self._signal_work()

    def _poll_external(self) -> ForkJoinTask | None:
        with self._external_lock:
            if self._external:
                return self._external.popleft()
            return None

    def _steal_for(self, thief: _Worker) -> ForkJoinTask | None:
        # Scan the other workers starting just past the thief to spread
        # contention; first non-empty deque yields its oldest task.
        n = len(self._workers)
        for offset in range(1, n):
            victim = self._workers[(thief.index + offset) % n]
            task = victim.deque.steal()
            if task is not None:
                return task
        return None

    def _signal_work(self) -> None:
        with self._work_available:
            self._work_available.notify_all()

    def _has_queued_work(self) -> bool:
        # Called with ``_work_available`` held, so a concurrent push +
        # ``_signal_work`` cannot slip between this check and the wait.
        if self._external:
            return True
        return any(worker.deque for worker in self._workers)

    def _idle_wait(self, worker: "_Worker") -> None:
        """Block until work may be available (or shutdown).

        A real condition-wait with a predicate re-check, replacing the
        old 1 ms busy-poll: a worker that finds no work parks until a
        ``_signal_work`` (every push and shutdown signals) instead of
        waking a thousand times a second.  The timeout is only a safety
        net; idle wakeups are counted so regressions show up in
        ``stats()``.
        """
        tracer = current_tracer()
        start = time.perf_counter_ns() if tracer.enabled else 0
        with self._work_available:
            if self._shutdown or self._has_queued_work():
                return
            self._work_available.wait(timeout=_IDLE_WAIT_TIMEOUT)
        self._idle_wakeups.inc()
        if tracer.enabled:
            tracer.emit(
                "idle",
                worker=worker.index,
                start_ns=start,
                end_ns=time.perf_counter_ns(),
            )

    # -- observability ------------------------------------------------------ #

    def stats(self) -> dict:
        """Counters since pool creation: tasks run and steals, per worker
        and total — the real-pool mirror of
        :class:`~repro.simcore.machine.SimResult`'s metrics.

        The whole dict is one consistent cut: all counters are read in a
        single :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` under
        the registry lock, so totals always equal the sum of the
        per-worker rows even while workers are running.
        """
        snap = self.metrics.snapshot()
        per_worker = [
            {
                "worker": w.index,
                "executed": snap[f"worker.{w.index}.executed"],
                "stolen": snap[f"worker.{w.index}.stolen"],
            }
            for w in self._workers
        ]
        return {
            "tasks_executed": sum(row["executed"] for row in per_worker),
            "steals": sum(row["stolen"] for row in per_worker),
            "idle_wakeups": snap["idle_wakeups"],
            "per_worker": per_worker,
        }

    # -- lifecycle --------------------------------------------------------- #

    def shutdown(self) -> None:
        """Stop workers after their current task; idempotent."""
        self._shutdown = True
        self._signal_work()
        for worker in self._workers:
            worker.thread.join(timeout=2.0)

    def __enter__(self) -> "ForkJoinPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        return f"ForkJoinPool(name={self.name!r}, parallelism={self.parallelism})"


_common_lock = threading.Lock()
_common: ForkJoinPool | None = None
_common_parallelism: int | None = None


def common_pool() -> ForkJoinPool:
    """The lazily created process-wide pool used by parallel streams."""
    global _common
    with _common_lock:
        if _common is None:
            _common = ForkJoinPool(_common_parallelism, name="common")
        return _common


def set_common_pool_parallelism(parallelism: int) -> None:
    """Configure the common pool's width; only before first use.

    Mirrors the ``java.util.concurrent.ForkJoinPool.common.parallelism``
    system property.
    """
    global _common_parallelism
    with _common_lock:
        if _common is not None:
            raise IllegalStateError("common pool already created")
        _common_parallelism = parallelism
