"""A work-stealing fork/join executor, after ``java.util.concurrent``.

Java's parallel streams execute on the common ``ForkJoinPool``; this
package reproduces that substrate:

* :mod:`repro.forkjoin.deques` — the per-worker work-stealing deque
  (owner pushes/pops LIFO at one end, thieves steal FIFO at the other);
* :mod:`repro.forkjoin.task` — ``ForkJoinTask`` with ``fork``/``join``
  semantics and the ``RecursiveTask``/``RecursiveAction`` conveniences;
* :mod:`repro.forkjoin.pool` — the pool itself, with helping joins (a
  worker blocked on ``join`` executes other tasks instead of idling).

CPython's GIL means threads give concurrency, not parallel speedup — the
pool is *functionally* faithful (decomposition, stealing, helping) and the
performance figures are produced on the simulated machine in
:mod:`repro.simcore` (see DESIGN.md §3).
"""

from repro.common import CancellationError, RejectedExecutionError, TaskTimeoutError
from repro.forkjoin.deques import WorkStealingDeque
from repro.forkjoin.pool import (
    ForkJoinPool,
    common_pool,
    common_pool_parallelism,
    set_common_pool_parallelism,
    shutdown_common_pool,
)
from repro.forkjoin.task import (
    ForkJoinTask,
    RecursiveAction,
    RecursiveTask,
    invoke_all,
)

__all__ = [
    "CancellationError",
    "ForkJoinPool",
    "ForkJoinTask",
    "RecursiveAction",
    "RecursiveTask",
    "RejectedExecutionError",
    "TaskTimeoutError",
    "WorkStealingDeque",
    "common_pool",
    "common_pool_parallelism",
    "invoke_all",
    "set_common_pool_parallelism",
    "shutdown_common_pool",
]
