"""Resilience policies: retry with deterministic backoff, deadlines, and
graceful degradation.

:func:`run_resilient` is the one driver every engine shares:

* a :class:`RetryPolicy` re-runs a failed attempt up to ``max_attempts``
  times with exponential backoff and **deterministic jitter** (a pure
  function of the policy seed and the attempt number — two runs of the
  same policy sleep the same schedule);
* a :class:`Deadline` bounds the whole operation; parallel terminals
  propagate it into ``ForkJoinPool.invoke(timeout=…)`` so an overrunning
  task tree surfaces as :class:`~repro.common.TaskTimeoutError`;
* a *fallback* callable — typically the sequential execution of the same
  workload — runs when attempts are exhausted, the failure is not
  retryable, or the deadline expired.  Degraded runs are counted
  (``degraded_runs``) and traced (``degraded`` instants), never silent.

``TaskTimeoutError`` is deliberately **not retryable**: re-running an
operation that just overran its deadline cannot beat the same deadline,
so a timeout skips straight to the fallback (or re-raises).
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, TypeVar

from repro.common import IllegalArgumentError, TaskTimeoutError, check_positive
from repro.obs.metrics import global_registry
from repro.obs.tracer import current_tracer

R = TypeVar("R")

_retries_attempted = global_registry().counter("retries_attempted")
_degraded_runs = global_registry().counter("degraded_runs")


class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Args:
        max_attempts: total attempts, including the first (>= 1).
        base_delay: backoff before attempt 2, in seconds.
        multiplier: backoff growth factor per further attempt.
        max_delay: cap on any single backoff sleep.
        jitter: fraction of the delay randomized (0 disables; 0.1 means
            each sleep is scaled into ``[1, 1 + 0.1)`` of its nominal
            value).  The draw is seeded per ``(seed, attempt)`` so the
            schedule is reproducible.
        retry_on: exception classes considered transient.
        seed: jitter seed.
    """

    __slots__ = (
        "max_attempts", "base_delay", "multiplier", "max_delay", "jitter",
        "retry_on", "seed",
    )

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.0,
        multiplier: float = 2.0,
        max_delay: float = 1.0,
        jitter: float = 0.0,
        retry_on: tuple[type[BaseException], ...] = (Exception,),
        seed: int = 0,
    ) -> None:
        check_positive(max_attempts, "max_attempts")
        if base_delay < 0 or max_delay < 0:
            raise IllegalArgumentError("delays must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise IllegalArgumentError(f"jitter must be in [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.retry_on = retry_on
        self.seed = seed

    def retryable(self, exc: BaseException) -> bool:
        """True when ``exc`` is transient under this policy.

        Timeouts are never retryable — the deadline that produced them
        still stands (degrade or re-raise instead).
        """
        if isinstance(exc, TaskTimeoutError):
            return False
        return isinstance(exc, self.retry_on)

    def delay_for(self, attempt: int) -> float:
        """Backoff before attempt ``attempt + 1`` (``attempt`` >= 1).

        Deterministic: the jitter draw depends only on the policy seed
        and the attempt number.
        """
        check_positive(attempt, "attempt")
        delay = self.base_delay * (self.multiplier ** (attempt - 1))
        delay = min(delay, self.max_delay)
        if self.jitter > 0 and delay > 0:
            u = random.Random(self.seed * 7_368_787 + attempt).random()
            delay *= 1.0 + self.jitter * u
        return min(delay, self.max_delay)

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(max_attempts={self.max_attempts}, "
            f"base_delay={self.base_delay}, multiplier={self.multiplier})"
        )


class Deadline:
    """A wall-clock budget shared down a call chain.

    Built on ``time.monotonic``; ``remaining()`` never goes negative.
    """

    __slots__ = ("expires_at", "budget")

    def __init__(self, expires_at: float, budget: float) -> None:
        self.expires_at = expires_at
        self.budget = budget

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        if seconds <= 0:
            raise IllegalArgumentError(f"deadline must be > 0s, got {seconds}")
        return cls(time.monotonic() + seconds, seconds)

    def remaining(self) -> float:
        """Seconds left; 0.0 once expired."""
        return max(self.expires_at - time.monotonic(), 0.0)

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`~repro.common.TaskTimeoutError` when expired."""
        if self.expired:
            raise TaskTimeoutError(
                f"{what} missed its {self.budget}s deadline"
            )

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


def run_resilient(
    primary: Callable[[], R],
    *,
    retry: RetryPolicy | None = None,
    deadline: Deadline | None = None,
    fallback: Callable[[], R] | None = None,
    label: str = "operation",
    on_retry: Callable[[int, BaseException], None] | None = None,
    on_degrade: Callable[[BaseException], None] | None = None,
) -> R:
    """Run ``primary`` under the given policies.

    Order of events: attempt → (retryable failure? backoff, re-attempt,
    up to ``retry.max_attempts``) → (still failing and ``fallback``
    given? run the fallback once, counting a degraded run) → re-raise
    the last failure.  ``on_retry(attempt, exc)`` / ``on_degrade(exc)``
    let callers keep local counters (e.g. ``ProcessExecutor.stats()``).
    """
    attempts = retry.max_attempts if retry is not None else 1
    failure: BaseException | None = None
    for attempt in range(1, attempts + 1):
        if deadline is not None and deadline.expired:
            failure = TaskTimeoutError(
                f"{label} missed its {deadline.budget}s deadline "
                f"before attempt {attempt}"
            )
            break
        try:
            return primary()
        except BaseException as exc:  # noqa: BLE001 — policy boundary
            failure = exc
            if retry is None or attempt >= attempts or not retry.retryable(exc):
                break
            _retries_attempted.inc()
            if on_retry is not None:
                on_retry(attempt, exc)
            tracer = current_tracer()
            if tracer.enabled:
                tracer.instant(
                    "retry", name=label, attempt=attempt,
                    error=type(exc).__name__,
                )
            backoff = retry.delay_for(attempt)
            if deadline is not None:
                backoff = min(backoff, deadline.remaining())
            if backoff > 0:
                time.sleep(backoff)
    assert failure is not None
    if not isinstance(failure, Exception):
        # KeyboardInterrupt / SystemExit must propagate, not degrade.
        raise failure
    if fallback is not None:
        _degraded_runs.inc()
        if on_degrade is not None:
            on_degrade(failure)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.instant(
                "degraded", name=label, error=type(failure).__name__
            )
        return fallback()
    raise failure


def stats() -> dict:
    """Process-wide resilience counters (monotonic; diff across a run)."""
    snap = global_registry().snapshot()
    return {
        "faults_injected": snap.get("faults_injected", 0),
        "retries_attempted": snap.get("retries_attempted", 0),
        "degraded_runs": snap.get("degraded_runs", 0),
    }
