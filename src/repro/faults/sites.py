"""Site keys and the pattern grammar of the fault-injection framework.

Every instrumentation point in an execution engine identifies itself as a
**site**: a *kind* (``leaf``, ``combine``, ``worker``, ``proc``, ``mpi``,
``serve``), an ordered tuple of string *qualifiers* (e.g.
``("send", "0->1")`` for a SimComm message, ``("worker-2",)`` for a
process-pool worker, ``("admit", "tenant-a")`` for a service admission
decision) and a dict of numeric *attributes* (``depth``, ``size``,
``index`` …).

Injectors select sites with colon-separated **patterns**:

``leaf:*``
    any ``leaf`` site (a trailing ``*`` matches even when the site has no
    qualifiers);
``combine:depth<3``
    ``combine`` sites whose ``depth`` attribute is below 3 (comparison
    segments test attributes, supporting ``< <= > >= = !=``);
``proc:worker-2``
    the process-pool site whose first qualifier is ``worker-2`` (plain
    segments are matched positionally against qualifiers with
    :mod:`fnmatch` globbing);
``mpi:send:0->1``
    the SimComm channel from rank 0 to rank 1.

A pattern is a *prefix* match on qualifiers: ``mpi:send`` selects every
send site regardless of channel.  The kind segment itself may be a glob
(``*:depth=0`` selects roots of every engine).
"""

from __future__ import annotations

import re
from fnmatch import fnmatchcase
from typing import Mapping, Sequence

from repro.common import IllegalArgumentError

#: ``name OP value`` attribute-constraint segment; value must be numeric.
_CONSTRAINT_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"(?P<op><=|>=|!=|<|>|=)"
    r"(?P<value>-?\d+(?:\.\d+)?)$"
)

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


class SitePattern:
    """A compiled site pattern (see module docstring for the grammar)."""

    __slots__ = ("text", "kind_glob", "segments", "constraints")

    def __init__(self, pattern: str) -> None:
        if not pattern or not pattern.strip():
            raise IllegalArgumentError("site pattern must be non-empty")
        self.text = pattern
        parts = pattern.split(":")
        self.kind_glob = parts[0]
        #: Positional qualifier globs, in order of appearance.
        self.segments: list[str] = []
        #: ``(name, op, value)`` attribute constraints.
        self.constraints: list[tuple[str, str, float]] = []
        for part in parts[1:]:
            match = _CONSTRAINT_RE.match(part)
            if match is not None:
                self.constraints.append(
                    (match["name"], match["op"], float(match["value"]))
                )
            else:
                self.segments.append(part)

    def matches(
        self,
        kind: str,
        qualifiers: Sequence[str] = (),
        attrs: Mapping[str, float] | None = None,
    ) -> bool:
        """True when this pattern selects the given site."""
        if not fnmatchcase(kind, self.kind_glob):
            return False
        for position, glob in enumerate(self.segments):
            if position < len(qualifiers):
                if not fnmatchcase(qualifiers[position], glob):
                    return False
            elif glob != "*":
                # A concrete segment demands a qualifier the site lacks;
                # a bare ``*`` tolerates absence (so ``leaf:*`` matches
                # qualifier-less leaf sites).
                return False
        for name, op, value in self.constraints:
            actual = None if attrs is None else attrs.get(name)
            if actual is None or not _OPS[op](actual, value):
                return False
        return True

    def __repr__(self) -> str:
        return f"SitePattern({self.text!r})"


def site_string(kind: str, qualifiers: Sequence[str] = ()) -> str:
    """Canonical colon-joined rendering of a site, for traces and logs."""
    return ":".join((kind, *qualifiers))
