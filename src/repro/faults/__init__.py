"""Deterministic fault injection and resilience policies.

Two layers (see ``docs/robustness.md`` for the model):

* :mod:`repro.faults.plan` — a seeded :class:`FaultPlan` of site-keyed
  injectors (``raise`` / ``delay`` / ``corrupt`` / ``kill`` / ``lose`` /
  ``duplicate``) matched by patterns like ``leaf:*``,
  ``combine:depth<3``, ``proc:worker-2``, ``mpi:send:0->1``.  Injection
  hooks are threaded through every execution engine: the parallel stream
  terminals, ``power_collect`` leaves and combiners, ``ForkJoinPool``
  worker dispatch, ``ProcessExecutor`` sub-function shipping, ``SimComm``
  message delivery, and the ``repro.serve`` admission/dispatch path
  (``serve:admit:<tenant>`` / ``serve:dispatch:<tenant>``).  With no
  plan installed every hook is a single ``is None`` check.

* :mod:`repro.faults.policy` — :class:`RetryPolicy` (bounded attempts,
  exponential backoff, deterministic jitter), :class:`Deadline`
  propagation into parallel terminals, and graceful degradation: a
  failed / rejected / timed-out parallel run transparently re-executes
  sequentially when ``fallback=True``, counted in ``degraded_runs`` and
  traced as a ``degraded`` instant.
"""

from repro.faults.plan import (
    MODES,
    FaultAction,
    FaultInjected,
    FaultPlan,
    Injector,
    WorkerKilledError,
    current_fault_plan,
    fault_injection,
    set_fault_plan,
)
from repro.faults.policy import Deadline, RetryPolicy, run_resilient, stats
from repro.faults.sites import SitePattern, site_string

__all__ = [
    "MODES",
    "Deadline",
    "FaultAction",
    "FaultInjected",
    "FaultPlan",
    "Injector",
    "RetryPolicy",
    "SitePattern",
    "WorkerKilledError",
    "current_fault_plan",
    "fault_injection",
    "run_resilient",
    "set_fault_plan",
    "site_string",
    "stats",
]
