"""``FaultPlan`` — seeded, deterministic fault injection.

A plan is an ordered list of :class:`Injector` rules.  Each execution
engine calls :meth:`FaultPlan.fire` at its instrumentation sites (the
*site* taxonomy lives in :mod:`repro.faults.sites`); ``fire`` returns a
:class:`FaultAction` when an injector elects to strike, or ``None``.

Determinism
-----------

Whether an injector strikes at a given site occurrence is a **pure
function of** ``(plan seed, injector position, occurrence index)`` — no
wall clock, no shared global RNG.  For structurally deterministic sites
(``leaf``/``combine`` trees of a fixed workload, ``proc`` sub-function
shipping, ``mpi`` messages of a deterministic program) the multiset of
injected faults is therefore identical across runs with the same seed,
regardless of thread scheduling: threads may *reach* occurrences in a
different order, but occurrence *k* of a site always gets the same
verdict.  ``worker`` dispatch sites fire per scheduling-loop iteration,
which is inherently timing-dependent; cap those with ``times=`` for
reproducible counts.

Cost when disabled
------------------

No plan installed means :func:`current_fault_plan` returns ``None`` and
every instrumentation site pays a single module-global read plus one
``is None`` check — the same discipline as
:func:`repro.obs.tracer.current_tracer`.
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.common import IllegalArgumentError, ReproError
from repro.faults.sites import SitePattern, site_string
from repro.obs.metrics import global_registry
from repro.obs.tracer import current_tracer

#: Injection modes.  Sites declare which they honor via ``fire(allowed=)``:
#: ``raise``/``delay``/``corrupt`` at stream leaves and combiners,
#: ``kill``/``delay``/``raise`` at worker-dispatch and process sites,
#: ``lose``/``delay``/``duplicate``/``raise`` at SimComm message sites.
MODES = ("raise", "delay", "corrupt", "kill", "lose", "duplicate")

#: Process-wide count of struck injectors (see also ``FaultPlan.stats()``).
_faults_injected = global_registry().counter("faults_injected")


class FaultInjected(ReproError):
    """The default exception raised by ``raise``-mode injectors."""


class WorkerKilledError(FaultInjected):
    """A ``kill``-mode injector struck a worker dispatch site."""


class FaultAction:
    """One injector strike, to be interpreted by the site that drew it."""

    __slots__ = ("mode", "site", "delay", "exc", "mutate")

    def __init__(
        self,
        mode: str,
        site: str,
        delay: float = 0.0,
        exc: type[BaseException] | BaseException | None = None,
        mutate: Callable[[Any], Any] | None = None,
    ) -> None:
        self.mode = mode
        self.site = site
        self.delay = delay
        self.exc = exc
        self.mutate = mutate

    def make_exception(self) -> BaseException:
        """The exception a ``raise``/``kill`` strike should throw."""
        if isinstance(self.exc, BaseException):
            return self.exc
        if self.exc is not None:
            return self.exc(f"fault injected at {self.site}")
        if self.mode == "kill":
            return WorkerKilledError(f"worker killed by fault plan at {self.site}")
        return FaultInjected(f"fault injected at {self.site}")

    def apply_before(self) -> None:
        """Real-time interpretation: sleep for ``delay``, throw for
        ``raise``/``kill``.  Virtual-time engines (SimComm) read the
        fields directly instead."""
        if self.mode == "delay":
            if self.delay > 0:
                time.sleep(self.delay)
        elif self.mode in ("raise", "kill"):
            raise self.make_exception()

    def apply_result(self, result: Any) -> Any:
        """``corrupt`` interpretation: pass the site's result through the
        injector's ``mutate`` callable."""
        if self.mode == "corrupt" and self.mutate is not None:
            return self.mutate(result)
        return result

    def __repr__(self) -> str:
        return f"FaultAction({self.mode!r}, site={self.site!r})"


class Injector:
    """One site-keyed injection rule inside a :class:`FaultPlan`."""

    __slots__ = (
        "pattern", "mode", "times", "probability", "exc", "delay", "mutate",
        "seen", "fired",
    )

    def __init__(
        self,
        site: str,
        mode: str,
        *,
        times: int | None = None,
        probability: float = 1.0,
        exc: type[BaseException] | BaseException | None = None,
        delay: float = 0.0,
        mutate: Callable[[Any], Any] | None = None,
    ) -> None:
        if mode not in MODES:
            raise IllegalArgumentError(
                f"unknown fault mode {mode!r}; expected one of {MODES}"
            )
        if not 0.0 <= probability <= 1.0:
            raise IllegalArgumentError(
                f"probability must be in [0, 1], got {probability}"
            )
        if times is not None and times < 1:
            raise IllegalArgumentError(f"times must be >= 1, got {times}")
        if delay < 0:
            raise IllegalArgumentError(f"delay must be >= 0, got {delay}")
        if mode == "corrupt" and mutate is None:
            raise IllegalArgumentError(
                "corrupt-mode injectors need a mutate= callable"
            )
        self.pattern = SitePattern(site)
        self.mode = mode
        self.times = times
        self.probability = probability
        self.exc = exc
        self.delay = delay
        self.mutate = mutate
        #: Matching site occurrences observed / strikes delivered.
        self.seen = 0
        self.fired = 0

    def __repr__(self) -> str:
        return (
            f"Injector({self.pattern.text!r}, {self.mode!r}, "
            f"fired={self.fired}/{self.seen})"
        )


def _decides_to_fire(seed: int, injector_index: int, occurrence: int,
                     probability: float) -> bool:
    """The deterministic coin: pure in (seed, injector, occurrence)."""
    if probability >= 1.0:
        return True
    if probability <= 0.0:
        return False
    draw = random.Random(
        (seed * 1_000_003 + injector_index) * 2_147_483_647 + occurrence
    ).random()
    return draw < probability


class FaultPlan:
    """An installable, seeded set of injectors.

    >>> plan = (FaultPlan(seed=7)
    ...         .inject("leaf:*", "raise", times=1)
    ...         .inject("combine:depth<3", "delay", delay=0.001))
    >>> with fault_injection(plan):
    ...     run_workload()
    >>> plan.stats()["injected"]
    2
    """

    def __init__(self, seed: int = 0, name: str = "faultplan") -> None:
        self.seed = seed
        self.name = name
        self._injectors: list[Injector] = []
        self._lock = threading.Lock()
        self._by_site: dict[str, int] = {}

    # -- construction ----------------------------------------------------- #

    def inject(
        self,
        site: str,
        mode: str,
        *,
        times: int | None = None,
        probability: float = 1.0,
        exc: type[BaseException] | BaseException | None = None,
        delay: float = 0.0,
        mutate: Callable[[Any], Any] | None = None,
    ) -> "FaultPlan":
        """Append an injector; returns ``self`` for chaining."""
        self._injectors.append(
            Injector(
                site, mode, times=times, probability=probability,
                exc=exc, delay=delay, mutate=mutate,
            )
        )
        return self

    @property
    def injectors(self) -> tuple[Injector, ...]:
        return tuple(self._injectors)

    # -- the hot path ------------------------------------------------------ #

    def fire(
        self,
        kind: str,
        qualifiers: Sequence[str] = (),
        allowed: Sequence[str] | None = None,
        **attrs: float,
    ) -> FaultAction | None:
        """Offer one site occurrence to the plan.

        The first injector that (a) is allowed at this site, (b) matches
        the site pattern, (c) has strikes left, and (d) wins its
        deterministic coin toss returns a :class:`FaultAction`; otherwise
        ``None``.  Occurrence counters advance for every *match*, fired
        or not, so probability draws stay aligned across runs.
        """
        for index, injector in enumerate(self._injectors):
            if allowed is not None and injector.mode not in allowed:
                continue
            if not injector.pattern.matches(kind, qualifiers, attrs):
                continue
            with self._lock:
                occurrence = injector.seen
                injector.seen += 1
                if injector.times is not None and injector.fired >= injector.times:
                    continue
                if not _decides_to_fire(
                    self.seed, index, occurrence, injector.probability
                ):
                    continue
                injector.fired += 1
                site = site_string(kind, qualifiers)
                self._by_site[site] = self._by_site.get(site, 0) + 1
            _faults_injected.inc()
            tracer = current_tracer()
            if tracer.enabled:
                tracer.instant(
                    "fault", name=injector.mode, site=site,
                    pattern=injector.pattern.text,
                )
            return FaultAction(
                injector.mode, site,
                delay=injector.delay, exc=injector.exc, mutate=injector.mutate,
            )
        return None

    # -- observability ----------------------------------------------------- #

    def stats(self) -> dict:
        """Per-plan injection counters (process-wide totals live in
        :func:`repro.faults.stats`)."""
        with self._lock:
            return {
                "injected": sum(i.fired for i in self._injectors),
                "matched": sum(i.seen for i in self._injectors),
                "by_site": dict(self._by_site),
                "by_injector": [
                    {"pattern": i.pattern.text, "mode": i.mode,
                     "seen": i.seen, "fired": i.fired}
                    for i in self._injectors
                ],
            }

    def reset_counts(self) -> None:
        """Rewind occurrence/strike counters so the plan can replay."""
        with self._lock:
            for injector in self._injectors:
                injector.seen = 0
                injector.fired = 0
            self._by_site.clear()

    def __repr__(self) -> str:
        return (
            f"FaultPlan(seed={self.seed}, injectors={len(self._injectors)})"
        )


# -- the active plan -------------------------------------------------------- #

_active: FaultPlan | None = None


def current_fault_plan() -> FaultPlan | None:
    """The installed plan, or ``None`` (the zero-cost common case)."""
    return _active


def set_fault_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide; ``None`` disables injection."""
    global _active
    _active = plan
    return _active


@contextmanager
def fault_injection(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Enable ``plan`` for the dynamic extent of the ``with`` block."""
    previous = _active
    set_fault_plan(plan)
    try:
        yield plan
    finally:
        set_fault_plan(previous)
