"""Unit and property tests for repro.common.bits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import (
    bit_reverse,
    ceil_div,
    exact_log2,
    is_power_of_two,
    next_power_of_two,
)


class TestIsPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16, 1024, 2**30])
    def test_accepts_powers(self, n):
        assert is_power_of_two(n)

    @pytest.mark.parametrize("n", [0, -1, -2, 3, 5, 6, 7, 9, 12, 1023, 2**30 + 1])
    def test_rejects_non_powers(self, n):
        assert not is_power_of_two(n)

    @given(st.integers(min_value=0, max_value=60))
    def test_every_exact_power_accepted(self, k):
        assert is_power_of_two(1 << k)


class TestExactLog2:
    @given(st.integers(min_value=0, max_value=60))
    def test_roundtrip(self, k):
        assert exact_log2(1 << k) == k

    @pytest.mark.parametrize("n", [0, -4, 3, 6, 12])
    def test_rejects_non_powers(self, n):
        with pytest.raises(ValueError):
            exact_log2(n)


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (17, 32), (1024, 1024)]
    )
    def test_examples(self, n, expected):
        assert next_power_of_two(n) == expected

    @given(st.integers(min_value=1, max_value=10**9))
    def test_is_smallest_bounding_power(self, n):
        p = next_power_of_two(n)
        assert is_power_of_two(p)
        assert p >= n
        assert p // 2 < n

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestBitReverse:
    @pytest.mark.parametrize(
        "index,width,expected",
        [(0, 0, 0), (0, 3, 0), (1, 3, 4), (2, 3, 2), (3, 3, 6), (5, 3, 5), (6, 3, 3)],
    )
    def test_examples(self, index, width, expected):
        assert bit_reverse(index, width) == expected

    @given(st.integers(min_value=0, max_value=16).flatmap(
        lambda w: st.tuples(st.just(w), st.integers(0, (1 << w) - 1))
    ))
    def test_involution(self, wi):
        width, index = wi
        assert bit_reverse(bit_reverse(index, width), width) == index

    def test_permutation(self):
        width = 6
        images = {bit_reverse(i, width) for i in range(1 << width)}
        assert images == set(range(1 << width))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bit_reverse(8, 3)
        with pytest.raises(ValueError):
            bit_reverse(-1, 3)
        with pytest.raises(ValueError):
            bit_reverse(0, -1)


class TestCeilDiv:
    @pytest.mark.parametrize(
        "a,b,expected", [(0, 1, 0), (1, 1, 1), (7, 2, 4), (8, 2, 4), (9, 2, 5)]
    )
    def test_examples(self, a, b, expected):
        assert ceil_div(a, b) == expected

    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_matches_float_ceil(self, a, b):
        assert ceil_div(a, b) == (a + b - 1) // b

    def test_rejects_nonpositive_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)
