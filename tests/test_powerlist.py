"""Unit and property tests for the PowerList data structure and operators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import (
    IllegalArgumentError,
    NotPowerOfTwoError,
    NotSimilarError,
)
from repro.powerlist import (
    PowerList,
    pl_add,
    pl_mul,
    pl_scale,
    pl_sub,
    similar,
    tie,
    tie_split,
    zip_,
    zip_split,
)


def powerlists(elements=st.integers(-1000, 1000), max_log=6):
    """Hypothesis strategy producing PowerLists of length 2**k, k<=max_log."""
    return st.integers(0, max_log).flatmap(
        lambda k: st.lists(elements, min_size=2**k, max_size=2**k)
    ).map(PowerList)


class TestConstruction:
    def test_wraps_whole_sequence(self):
        p = PowerList([1, 2, 3, 4])
        assert len(p) == 4
        assert list(p) == [1, 2, 3, 4]

    def test_rejects_non_power_length(self):
        with pytest.raises(NotPowerOfTwoError):
            PowerList([1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(NotPowerOfTwoError):
            PowerList([])

    def test_of(self):
        assert list(PowerList.of(5, 6)) == [5, 6]

    def test_singleton(self):
        p = PowerList.singleton("a")
        assert p.is_singleton()
        assert p[0] == "a"

    def test_filled(self):
        assert list(PowerList.filled(7, 4)) == [7, 7, 7, 7]
        with pytest.raises(NotPowerOfTwoError):
            PowerList.filled(7, 3)

    def test_from_iterable_materializes(self):
        p = PowerList.from_iterable(x * x for x in range(4))
        assert list(p) == [0, 1, 4, 9]

    def test_partial_view_args_rejected(self):
        with pytest.raises(IllegalArgumentError):
            PowerList([1, 2], start=0)

    def test_view_bounds_checked(self):
        with pytest.raises(IllegalArgumentError):
            PowerList([1, 2, 3, 4], start=2, stride=2, length=2)

    def test_zero_stride_rejected(self):
        with pytest.raises(IllegalArgumentError):
            PowerList([1, 2], start=0, stride=0, length=2)


class TestAccess:
    def test_indexing_and_negative(self):
        p = PowerList([10, 20, 30, 40])
        assert p[0] == 10
        assert p[-1] == 40
        with pytest.raises(IndexError):
            p[4]

    def test_loglen(self):
        assert PowerList([0] * 8).loglen == 3

    def test_setitem_writes_through_view(self):
        storage = [0, 1, 2, 3]
        p = PowerList(storage)
        even, odd = p.zip_split()
        odd[1] = 99
        assert storage == [0, 1, 2, 99]

    def test_reversed(self):
        assert list(reversed(PowerList([1, 2, 3, 4]))) == [4, 3, 2, 1]

    def test_slice_power_of_two(self):
        p = PowerList(list(range(8)))
        assert list(p[0:4]) == [0, 1, 2, 3]
        assert list(p[::2]) == [0, 2, 4, 6]

    def test_slice_non_power_rejected(self):
        with pytest.raises(NotPowerOfTwoError):
            PowerList(list(range(8)))[0:3]

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(PowerList([1, 2]))

    def test_repr(self):
        assert repr(PowerList([1, 2])) == "PowerList([1, 2])"


class TestDeconstruction:
    def test_tie_split(self):
        left, right = PowerList([1, 2, 3, 4]).tie_split()
        assert list(left) == [1, 2]
        assert list(right) == [3, 4]

    def test_zip_split(self):
        even, odd = PowerList([1, 2, 3, 4]).zip_split()
        assert list(even) == [1, 3]
        assert list(odd) == [2, 4]

    def test_splits_are_views_not_copies(self):
        storage = [1, 2, 3, 4]
        p = PowerList(storage)
        for half in (*p.tie_split(), *p.zip_split()):
            assert half.storage is storage

    def test_singleton_cannot_split(self):
        s = PowerList([1])
        with pytest.raises(IllegalArgumentError):
            s.tie_split()
        with pytest.raises(IllegalArgumentError):
            s.zip_split()

    def test_nested_zip_of_tie(self):
        p = PowerList(list(range(8)))
        left, _ = p.tie_split()
        even, odd = left.zip_split()
        assert list(even) == [0, 2]
        assert list(odd) == [1, 3]

    @given(powerlists())
    def test_tie_then_tie_reassembles(self, p):
        if p.is_singleton():
            return
        left, right = p.tie_split()
        assert list(tie(left, right)) == list(p)

    @given(powerlists())
    def test_zip_then_zip_reassembles(self, p):
        if p.is_singleton():
            return
        even, odd = p.zip_split()
        assert list(zip_(even, odd)) == list(p)


class TestConstructors:
    def test_tie_concatenates(self):
        r = tie(PowerList([1, 2]), PowerList([3, 4]))
        assert list(r) == [1, 2, 3, 4]

    def test_zip_interleaves(self):
        r = zip_(PowerList([1, 3]), PowerList([2, 4]))
        assert list(r) == [1, 2, 3, 4]

    def test_tie_requires_similar(self):
        with pytest.raises(NotSimilarError):
            tie(PowerList([1]), PowerList([1, 2]))

    def test_zip_requires_similar(self):
        with pytest.raises(NotSimilarError):
            zip_(PowerList([1]), PowerList([1, 2]))

    def test_tie_of_adjacent_views_is_zero_copy(self):
        storage = list(range(8))
        p = PowerList(storage)
        left, right = p.tie_split()
        r = tie(left, right)
        assert r.storage is storage

    def test_zip_of_interleaved_views_is_zero_copy(self):
        storage = list(range(8))
        p = PowerList(storage)
        even, odd = p.zip_split()
        r = zip_(even, odd)
        assert r.storage is storage

    def test_tie_of_unrelated_materializes(self):
        r = tie(PowerList([9, 9]), PowerList([8, 8]))
        assert list(r) == [9, 9, 8, 8]

    def test_module_level_splits(self):
        p = PowerList([1, 2, 3, 4])
        assert [list(x) for x in tie_split(p)] == [[1, 2], [3, 4]]
        assert [list(x) for x in zip_split(p)] == [[1, 3], [2, 4]]


class TestAlgebraLaws:
    """The defining laws of the PowerList algebra (Misra 1994)."""

    @given(powerlists(max_log=5), powerlists(max_log=5))
    def test_tie_zip_interchange(self, p, q):
        # For similar p, q: (p|q) zip-split == (even(p)|even(q), odd(p)|odd(q))
        if len(p) != len(q) or p.is_singleton():
            return
        both = tie(p, q)
        even, odd = both.zip_split()
        pe, po = p.zip_split()
        qe, qo = q.zip_split()
        assert list(even) == list(pe) + list(qe)
        assert list(odd) == list(po) + list(qo)

    @given(powerlists(max_log=4))
    def test_zip_dual(self, p):
        # zip(tie-halves of zip-split) relates to the shuffle permutation;
        # at minimum: zip_(even, odd) == p (inverse law).
        if p.is_singleton():
            return
        even, odd = p.zip_split()
        assert zip_(even, odd) == p

    def test_equality_semantics(self):
        assert PowerList([1, 2]) == PowerList([1, 2])
        assert PowerList([1, 2]) != PowerList([2, 1])
        assert PowerList([1, 2]).__eq__(3) is NotImplemented


class TestExtendedOperators:
    def test_pl_add(self):
        r = pl_add(PowerList([1, 2]), PowerList([10, 20]))
        assert list(r) == [11, 22]

    def test_pl_sub(self):
        assert list(pl_sub(PowerList([5, 5]), PowerList([1, 2]))) == [4, 3]

    def test_pl_mul(self):
        assert list(pl_mul(PowerList([2, 3]), PowerList([4, 5]))) == [8, 15]

    def test_pl_scale(self):
        assert list(pl_scale(3, PowerList([1, 2]))) == [3, 6]

    def test_similarity_enforced(self):
        with pytest.raises(NotSimilarError):
            pl_add(PowerList([1]), PowerList([1, 2]))

    @given(powerlists(max_log=4), powerlists(max_log=4))
    def test_add_commutes(self, p, q):
        if len(p) != len(q):
            return
        assert pl_add(p, q) == pl_add(q, p)

    def test_similar_predicate(self):
        assert similar(PowerList([1, 2]), PowerList([3, 4]))
        assert not similar(PowerList([1]), PowerList([3, 4]))


class TestConveniences:
    def test_map_specification(self):
        p = PowerList([1, 2, 3, 4]).map(lambda x: x * 10)
        assert list(p) == [10, 20, 30, 40]

    def test_copy_compacts(self):
        p = PowerList(list(range(8)))
        even, _ = p.zip_split()
        c = even.copy()
        assert c.stride == 1
        assert list(c) == [0, 2, 4, 6]
        assert c.storage is not p.storage

    def test_to_list(self):
        assert PowerList([1, 2]).to_list() == [1, 2]
