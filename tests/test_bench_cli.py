"""Tests for the `python -m repro.bench` CLI."""

import pathlib
import subprocess
import sys

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestMainFunction:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "fig3", "fig4", "ab1", "ab2", "ab3", "ab4", "ab5", "ab6", "ab8"
        }

    def test_single_experiment(self, capsys):
        assert main(["ab6"]) == 0
        out = capsys.readouterr().out
        assert "AB6" in out

    def test_multiple_experiments(self, capsys):
        assert main(["fig4", "ab3"]) == 0
        out = capsys.readouterr().out
        assert "FIG4" in out and "AB3" in out

    def test_unknown_experiment_errors(self, capsys):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_out_directory(self, tmp_path, capsys):
        assert main(["ab8", "--out", str(tmp_path)]) == 0
        written = tmp_path / "ab8.txt"
        assert written.exists()
        assert "AB8" in written.read_text()

    def test_out_creates_missing_dirs(self, tmp_path, capsys):
        target = tmp_path / "a" / "b"
        assert main(["ab6", "--out", str(target)]) == 0
        assert (target / "ab6.txt").exists()


class TestSubprocess:
    def test_help(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.bench", "--help"],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0
        assert "--calibrated" in result.stdout
