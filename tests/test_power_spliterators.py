"""Tests for TieSpliterator / ZipSpliterator (paper Figure 1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import IllegalArgumentError
from repro.core import SpliteratorPower2, TieSpliterator, ZipSpliterator
from repro.streams import Characteristics


def drain(s):
    out = []
    s.for_each_remaining(out.append)
    return out


class TestTieSpliterator:
    def test_split_is_first_half(self):
        s = TieSpliterator([1, 2, 3, 4])
        prefix = s.try_split()
        assert drain(prefix) == [1, 2]
        assert drain(s) == [3, 4]

    def test_singleton_refuses(self):
        assert TieSpliterator([1]).try_split() is None

    def test_power2_characteristic(self):
        assert TieSpliterator([1, 2, 3, 4]).has_characteristics(Characteristics.POWER2)
        assert not TieSpliterator([1, 2, 3]).has_characteristics(
            Characteristics.POWER2
        )

    def test_split_preserves_power2(self):
        s = TieSpliterator(list(range(16)))
        prefix = s.try_split()
        assert prefix.has_characteristics(Characteristics.POWER2)
        assert s.has_characteristics(Characteristics.POWER2)

    @given(st.integers(0, 6))
    def test_recursive_split_order(self, k):
        data = list(range(2**k))

        def collect_split(s):
            prefix = s.try_split()
            if prefix is None:
                return drain(s)
            return collect_split(prefix) + collect_split(s)

        assert collect_split(TieSpliterator(data)) == data

    def test_try_advance(self):
        s = TieSpliterator([5, 6])
        out = []
        assert s.try_advance(out.append)
        assert s.try_advance(out.append)
        assert not s.try_advance(out.append)
        assert out == [5, 6]

    def test_estimate_size(self):
        s = TieSpliterator(list(range(8)))
        assert s.estimate_size() == 8
        s.try_split()
        assert s.estimate_size() == 4


class TestZipSpliterator:
    def test_split_is_even_subview(self):
        s = ZipSpliterator([10, 11, 12, 13])
        prefix = s.try_split()
        assert drain(prefix) == [10, 12]
        assert drain(s) == [11, 13]

    def test_double_split_strides(self):
        s = ZipSpliterator(list(range(8)))
        even = s.try_split()  # 0,2,4,6
        even_even = even.try_split()  # 0,4
        assert drain(even_even) == [0, 4]
        assert drain(even) == [2, 6]
        assert drain(s) == [1, 3, 5, 7]

    def test_matches_powerlist_zip_split(self):
        from repro.powerlist import PowerList

        data = list(range(16))
        p = PowerList(data)
        even_pl, odd_pl = p.zip_split()
        s = ZipSpliterator(data)
        even_sp = s.try_split()
        assert drain(even_sp) == list(even_pl)
        assert drain(s) == list(odd_pl)

    def test_odd_count_split(self):
        s = ZipSpliterator([0, 1, 2])
        prefix = s.try_split()
        assert drain(prefix) == [0, 2]
        assert drain(s) == [1]

    def test_singleton_refuses(self):
        assert ZipSpliterator([1]).try_split() is None

    @given(st.integers(0, 6))
    def test_recursive_split_covers_exactly(self, k):
        data = list(range(2**k))

        def collect_all(s, acc):
            prefix = s.try_split()
            if prefix is None:
                acc.extend(drain(s))
                return
            collect_all(prefix, acc)
            collect_all(s, acc)

        acc = []
        collect_all(ZipSpliterator(data), acc)
        assert sorted(acc) == data


class TestValidation:
    def test_negative_count(self):
        with pytest.raises(IllegalArgumentError):
            TieSpliterator([1, 2], 0, -1)

    def test_bad_incr(self):
        with pytest.raises(IllegalArgumentError):
            TieSpliterator([1, 2], 0, 2, 0)

    def test_out_of_bounds(self):
        with pytest.raises(IllegalArgumentError):
            TieSpliterator([1, 2], 1, 2, 1)

    def test_empty_view_allowed(self):
        s = TieSpliterator([1, 2], 0, 0)
        assert drain(s) == []


class TestSplitHooks:
    def test_on_split_fires_per_split(self):
        calls = []

        class Recorder:
            _state_lock = None
            basic_case = None

            def on_split(self, incr):
                calls.append(incr)

        s = ZipSpliterator(list(range(8)), function_object=Recorder())
        s.try_split()
        s.try_split()
        assert calls == [2, 4]

    def test_basic_case_overrides_leaf(self):
        class Doubler:
            on_split = None

            def basic_case(self, view, incr):
                return [2 * x for x in view]

        s = TieSpliterator([1, 2, 3, 4], function_object=Doubler())
        assert drain(s) == [2, 4, 6, 8]

    def test_basic_case_consumes_view(self):
        class Identity:
            on_split = None

            def basic_case(self, view, incr):
                return view

        s = TieSpliterator([1, 2], function_object=Identity())
        drain(s)
        assert s.estimate_size() == 0
        assert drain(s) == []
