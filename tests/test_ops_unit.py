"""Direct unit tests for the fused sink machinery (repro.streams.ops).

The Stream tests exercise these through the pipeline; here we pin the
Sink protocol contracts themselves — begin/accept/end ordering, size
propagation, and cancellation flow — which the pipeline tests can't see.
"""

import pytest

from repro.streams.ops import (
    DistinctOp,
    DropWhileOp,
    FilterOp,
    FlatMapOp,
    LimitOp,
    MapMultiOp,
    MapOp,
    PeekOp,
    Sink,
    SkipOp,
    SortedOp,
    TakeWhileOp,
    copy_into,
    pipeline_is_short_circuit,
    wrap_ops,
)
from repro.streams.spliterators import ListSpliterator


class RecordingSink(Sink):
    """Logs the full sink protocol."""

    def __init__(self):
        self.events = []
        self.cancel_after = None

    def begin(self, size):
        self.events.append(("begin", size))

    def accept(self, item):
        self.events.append(("accept", item))

    def end(self):
        self.events.append(("end",))

    def cancellation_requested(self):
        if self.cancel_after is None:
            return False
        accepted = sum(1 for e in self.events if e[0] == "accept")
        return accepted >= self.cancel_after

    @property
    def accepted(self):
        return [e[1] for e in self.events if e[0] == "accept"]


class TestProtocolOrdering:
    def test_begin_accept_end(self):
        sink = RecordingSink()
        copy_into(ListSpliterator([1, 2]), sink, short_circuit=False)
        assert sink.events[0] == ("begin", 2)
        assert sink.events[-1] == ("end",)
        assert sink.accepted == [1, 2]

    def test_unknown_size_begin(self):
        from repro.streams.spliterators import IteratorSpliterator

        sink = RecordingSink()
        copy_into(IteratorSpliterator(iter([1])), sink, short_circuit=False)
        assert sink.events[0] == ("begin", -1)

    def test_short_circuit_stops_early(self):
        sink = RecordingSink()
        sink.cancel_after = 3
        copy_into(ListSpliterator(list(range(100))), sink, short_circuit=True)
        assert sink.accepted == [0, 1, 2]
        assert sink.events[-1] == ("end",)


class TestSizePropagation:
    def test_map_preserves_size(self):
        sink = RecordingSink()
        wrapped = MapOp(lambda x: x).wrap_sink(sink)
        wrapped.begin(7)
        assert sink.events == [("begin", 7)]

    @pytest.mark.parametrize(
        "op", [FilterOp(lambda x: True), FlatMapOp(lambda x: [x]),
               DistinctOp(), TakeWhileOp(lambda x: True),
               DropWhileOp(lambda x: False),
               MapMultiOp(lambda x, emit: emit(x))]
    )
    def test_size_clearing_ops(self, op):
        sink = RecordingSink()
        op.wrap_sink(sink).begin(7)
        assert sink.events == [("begin", -1)]

    def test_limit_clamps_size(self):
        sink = RecordingSink()
        LimitOp(3).wrap_sink(sink).begin(10)
        assert sink.events == [("begin", 3)]

    def test_skip_reduces_size(self):
        sink = RecordingSink()
        SkipOp(4).wrap_sink(sink).begin(10)
        assert sink.events == [("begin", 6)]

    def test_skip_floors_at_zero(self):
        sink = RecordingSink()
        SkipOp(99).wrap_sink(sink).begin(10)
        assert sink.events == [("begin", 0)]


class TestCancellation:
    def test_limit_requests_cancellation(self):
        sink = RecordingSink()
        limited = LimitOp(2).wrap_sink(sink)
        limited.begin(10)
        assert not limited.cancellation_requested()
        limited.accept(1)
        limited.accept(2)
        assert limited.cancellation_requested()
        limited.accept(3)  # excess silently dropped
        assert sink.accepted == [1, 2]

    def test_take_while_cancels_on_failure(self):
        sink = RecordingSink()
        taking = TakeWhileOp(lambda x: x < 5).wrap_sink(sink)
        taking.begin(-1)
        taking.accept(1)
        assert not taking.cancellation_requested()
        taking.accept(9)
        assert taking.cancellation_requested()
        assert sink.accepted == [1]

    def test_sorted_blocks_upstream_cancellation(self):
        # sorted must see all elements: even with a cancelling downstream
        # it never propagates cancellation upstream.
        sink = RecordingSink()
        sink.cancel_after = 1
        chain = wrap_ops([SortedOp(), LimitOp(1)], sink)
        chain.begin(4)
        assert not chain.cancellation_requested()

    def test_flatmap_respects_downstream_cancellation(self):
        sink = RecordingSink()
        chain = wrap_ops([FlatMapOp(lambda x: range(100)), LimitOp(3)], sink)
        copy_into(ListSpliterator([1]), chain, short_circuit=True)
        assert sink.accepted == [0, 1, 2]


class TestSortedSinkBuffering:
    def test_emits_downstream_on_end(self):
        sink = RecordingSink()
        chain = SortedOp().wrap_sink(sink)
        chain.begin(3)
        for v in (3, 1, 2):
            chain.accept(v)
        assert sink.accepted == []  # nothing until end
        chain.end()
        assert sink.accepted == [1, 2, 3]
        assert sink.events[0] == ("begin", 3)

    def test_reverse_with_key(self):
        sink = RecordingSink()
        chain = SortedOp(key=abs, reverse=True).wrap_sink(sink)
        chain.begin(-1)
        for v in (-1, 3, -2):
            chain.accept(v)
        chain.end()
        assert sink.accepted == [3, -2, -1]


class TestHelpers:
    def test_wrap_ops_order(self):
        sink = RecordingSink()
        chain = wrap_ops([MapOp(lambda x: x + 1), MapOp(lambda x: x * 10)], sink)
        chain.accept(1)
        assert sink.accepted == [20]  # (1+1)*10 — pipeline order

    def test_pipeline_is_short_circuit(self):
        assert pipeline_is_short_circuit([MapOp(lambda x: x), LimitOp(1)])
        assert pipeline_is_short_circuit([TakeWhileOp(lambda x: True)])
        assert not pipeline_is_short_circuit([MapOp(lambda x: x), SkipOp(1)])

    def test_peek_forwards_everything(self):
        seen = []
        sink = RecordingSink()
        chain = PeekOp(seen.append).wrap_sink(sink)
        chain.begin(2)
        chain.accept("a")
        chain.end()
        assert seen == ["a"]
        assert sink.accepted == ["a"]

    def test_stateless_apply_to_buffer_raises(self):
        with pytest.raises(NotImplementedError):
            MapOp(lambda x: x).apply_to_buffer([1])

    def test_stateful_apply_to_buffer(self):
        assert SortedOp().apply_to_buffer([3, 1]) == [1, 3]
        assert DistinctOp().apply_to_buffer([1, 1, 2]) == [1, 2]
        assert LimitOp(1).apply_to_buffer([5, 6]) == [5]
        assert SkipOp(1).apply_to_buffer([5, 6]) == [6]
        assert TakeWhileOp(lambda x: x < 2).apply_to_buffer([1, 5, 1]) == [1]
        assert DropWhileOp(lambda x: x < 2).apply_to_buffer([1, 5, 1]) == [5, 1]
