"""Tests for the Optional container."""

import pytest

from repro.common import IllegalStateError
from repro.streams import Optional


class TestOptional:
    def test_of_and_get(self):
        assert Optional.of(5).get() == 5

    def test_of_none_is_present(self):
        assert Optional.of(None).is_present()
        assert Optional.of(None).get() is None

    def test_empty(self):
        o = Optional.empty()
        assert o.is_empty()
        assert not o.is_present()
        with pytest.raises(IllegalStateError):
            o.get()

    def test_or_else(self):
        assert Optional.of(1).or_else(9) == 1
        assert Optional.empty().or_else(9) == 9

    def test_or_else_get(self):
        assert Optional.empty().or_else_get(lambda: 3) == 3
        assert Optional.of(1).or_else_get(lambda: 3) == 1

    def test_map(self):
        assert Optional.of(2).map(lambda x: x * 10) == Optional.of(20)
        assert Optional.empty().map(lambda x: x * 10) == Optional.empty()

    def test_filter(self):
        assert Optional.of(4).filter(lambda x: x > 2) == Optional.of(4)
        assert Optional.of(1).filter(lambda x: x > 2) == Optional.empty()
        assert Optional.empty().filter(lambda x: True) == Optional.empty()

    def test_if_present(self):
        out = []
        Optional.of(7).if_present(out.append)
        Optional.empty().if_present(out.append)
        assert out == [7]

    def test_bool(self):
        assert Optional.of(0)
        assert not Optional.empty()

    def test_equality_and_hash(self):
        assert Optional.of(1) == Optional.of(1)
        assert Optional.of(1) != Optional.of(2)
        assert Optional.empty() == Optional.empty()
        assert hash(Optional.of(1)) == hash(Optional.of(1))
        assert Optional.of(1).__eq__(1) is NotImplemented

    def test_repr(self):
        assert repr(Optional.of(1)) == "Optional.of(1)"
        assert repr(Optional.empty()) == "Optional.empty()"
