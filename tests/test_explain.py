"""``Stream.explain()``: pinned plans, cross-checked against real runs.

The explain report re-runs the engine's own decision functions against
the plan instead of the data, so every pinned dict here is also
re-verified against what the engine *actually did* — ``fusion_stats``
and ``bulk_stats`` deltas, and traced leaf counts for the split tree.
"""

import pytest

from repro.forkjoin import ForkJoinPool
from repro.obs import tracing
from repro.streams import ExplainPlan, Stream, bulk_stats, fusion, fusion_stats
from repro.streams.explain import _walk_split_tree


def _triple(x):
    return x * 3


def _even(x):
    return x & 1 == 0


class TestFusedStatelessChain:
    """map → filter on a sized power-of-two range: one fused kernel."""

    def _stream(self):
        return Stream.range(0, 4096).map(_triple).filter(_even)

    def test_pinned_plan(self):
        plan = self._stream().explain()
        assert plan.to_dict() == {
            "source": {
                "spliterator": "RangeSpliterator",
                "size": 4096,
                "sized": True,
                "power2": True,
            },
            "ops": ["map", "filter"],
            "fusion": {
                "enabled": True,
                "chain": ["fused(map|filter)"],
                "stages_fused": 2,
                "kernels": 1,
                "runs": [
                    {
                        "stages": ["map", "filter"],
                        "kernel": "comprehension",
                        "ufunc_prefix": 0,
                        "size_preserving": False,
                    }
                ],
                "barriers": [],
            },
            "execution": {"parallel": False, "mode": "chunked"},
        }

    def test_explain_does_not_consume_or_execute(self):
        stream = self._stream()
        fusion_stats(reset=True)
        before = bulk_stats()
        stream.explain()
        assert bulk_stats() == before
        assert fusion_stats()["pipelines_fused"] == 0
        # The stream is still consumable afterwards.
        assert stream.count() == 2048

    def test_agrees_with_actual_run(self):
        plan = self._stream().explain().to_dict()
        fusion_stats(reset=True)
        before = bulk_stats()
        result = self._stream().to_list()
        assert result == [x * 3 for x in range(4096) if (x * 3) % 2 == 0]
        delta = {
            k: v - before[k] for k, v in bulk_stats().items()
        }
        assert plan["execution"]["mode"] == "chunked"
        assert delta == {"chunked": 1, "element": 0}
        stats = fusion_stats()
        assert stats["stages_fused"] == plan["fusion"]["stages_fused"]
        assert stats["kernels"] == plan["fusion"]["kernels"]

    def test_fusion_disabled_plan(self):
        with fusion(False):
            plan = self._stream().explain().to_dict()
        assert plan["fusion"]["enabled"] is False
        assert plan["fusion"]["chain"] == ["map", "filter"]
        assert plan["fusion"]["kernels"] == 0
        assert plan["execution"]["mode"] == "chunked"

    def test_render_mentions_the_decisions(self):
        text = self._stream().explain().render()
        assert "RangeSpliterator" in text
        assert "fused(map|filter)" in text
        assert "mode=chunked" in text
        assert "sized+power2" in text


class TestStatefulBarrierChain:
    """map → sorted → map in parallel: two segments around the barrier."""

    def _stream(self, pool):
        return (
            Stream.range(0, 4096)
            .parallel()
            .with_pool(pool)
            .with_target_size(512)
            .map(_triple)
            .sorted()
            .map(_triple)
        )

    def test_pinned_plan(self):
        with ForkJoinPool(parallelism=4, name="explain-test") as pool:
            plan = self._stream(pool).explain()
        assert plan.to_dict() == {
            "source": {
                "spliterator": "RangeSpliterator",
                "size": 4096,
                "sized": True,
                "power2": True,
            },
            "ops": ["map", "sorted", "map"],
            "fusion": {
                "enabled": True,
                "chain": ["map", "sorted", "map"],
                "stages_fused": 0,
                "kernels": 0,
                "runs": [],
                "barriers": [
                    {"op": "sorted", "stateful": True, "short_circuit": False}
                ],
            },
            "execution": {
                "parallel": True,
                "backend": "threads",
                "pool": "explain-test",
                "parallelism": 4,
                "segments": [
                    {"ops": ["map"], "mode": "chunked", "barrier": "sorted"},
                    {"ops": ["map"], "mode": "chunked", "barrier": None},
                ],
                "threshold_source": "with_target_size",
                "target_size": 512,
                "split_tree": {"leaves": 8, "depth": 3},
            },
        }

    def test_split_tree_matches_traced_leaves(self):
        with ForkJoinPool(parallelism=4, name="explain-test") as pool:
            plan = self._stream(pool).explain().to_dict()
            with tracing() as tracer:
                result = self._stream(pool).to_list()
        assert result == [x * 9 for x in range(4096)]
        leaf_spans = [s for s in tracer.spans() if s.kind == "leaf"]
        # The first segment's reduction splits to the predicted leaves;
        # the post-barrier segment contributes its own (same size/target,
        # so the same count).
        predicted = plan["execution"]["split_tree"]["leaves"]
        assert len(leaf_spans) == 2 * predicted

    def test_correctness_of_barriered_run(self):
        with ForkJoinPool(parallelism=4, name="explain-test") as pool:
            result = self._stream(pool).to_list()
        assert result == [x * 9 for x in range(4096)]


class TestShortCircuitChain:
    """map → limit: compiled into a counted kernel riding the bulk path."""

    def _stream(self):
        return Stream.range(0, 4096).map(_triple).limit(5)

    def test_pinned_plan(self):
        plan = self._stream().explain()
        assert plan.to_dict() == {
            "source": {
                "spliterator": "RangeSpliterator",
                "size": 4096,
                "sized": True,
                "power2": True,
            },
            "ops": ["map", "limit"],
            "fusion": {
                "enabled": True,
                "chain": ["fused(map|limit)"],
                "stages_fused": 2,
                "kernels": 1,
                "runs": [
                    {
                        "stages": ["map", "limit"],
                        # All maps are 1:1, so the limit hoists to a
                        # source-index window sliced off each chunk.
                        "kernel": "counted-window",
                        "ufunc_prefix": 0,
                        "size_preserving": False,
                        "window": [0, 5],
                    }
                ],
                # The counted kernel absorbs the short-circuit: no barrier.
                "barriers": [],
            },
            "execution": {"parallel": False, "mode": "chunked"},
        }

    def test_agrees_with_actual_run(self):
        # Warm the fusion memo first: the identity-memoized rewrite must
        # give execution the same FusedOp the plan described.
        plan = self._stream().explain().to_dict()
        fusion_stats(reset=True)
        before = bulk_stats()
        assert self._stream().to_list() == [0, 3, 6, 9, 12]
        delta = {k: v - before[k] for k, v in bulk_stats().items()}
        # The counted kernel keeps the traversal on the chunked path.
        assert plan["execution"]["mode"] == "chunked"
        assert delta == {"chunked": 1, "element": 0}
        stats = fusion_stats()
        assert stats["stages_fused"] == plan["fusion"]["stages_fused"]
        assert stats["kernels"] == plan["fusion"]["kernels"]

    def test_raw_take_while_still_polls(self):
        plan = (
            Stream.range(0, 4096).map(_triple)
            .take_while(_even).explain().to_dict()
        )
        assert plan["execution"]["mode"] == "short-circuit-polled"
        assert plan["fusion"]["barriers"] == [
            {"op": "take_while", "stateful": True, "short_circuit": True}
        ]
        before = bulk_stats()
        assert Stream.range(0, 4096).map(_triple).take_while(_even).to_list() == [0]
        delta = {k: v - before[k] for k, v in bulk_stats().items()}
        assert delta == {"chunked": 0, "element": 1}


class TestExplainPlanObject:
    def test_getitem_and_str(self):
        plan = Stream.range(0, 8).map(_triple).explain()
        assert isinstance(plan, ExplainPlan)
        assert plan["ops"] == ["map"]
        assert str(plan) == plan.render()
        assert "ExplainPlan" in repr(plan)

    def test_to_dict_is_a_copy(self):
        plan = Stream.range(0, 8).map(_triple).explain()
        d = plan.to_dict()
        d["ops"].append("tampered")
        assert plan.to_dict()["ops"] == ["map"]

    def test_unsized_source_has_no_split_tree(self):
        plan = (
            Stream.of_iterable(iter(range(64)))
            .parallel()
            .map(_triple)
            .explain()
            .to_dict()
        )
        assert plan["source"]["size"] is None
        assert plan["execution"]["split_tree"] is None
        assert plan["execution"]["threshold_source"] == (
            "unknown size → default // parallelism"
        )
        # The reported target is what execution actually uses.
        from repro.streams.parallel import compute_target_size
        from repro.streams.spliterator import UNKNOWN_SIZE

        assert plan["execution"]["target_size"] == compute_target_size(
            UNKNOWN_SIZE, plan["execution"]["parallelism"]
        )

    def test_empty_pipeline(self):
        plan = Stream.range(0, 16).explain().to_dict()
        assert plan["ops"] == []
        assert plan["fusion"]["kernels"] == 0
        assert plan["execution"] == {"parallel": False, "mode": "chunked"}


class TestSplitTreeWalk:
    @pytest.mark.parametrize(
        "size,target,leaves,depth",
        [
            (4096, 512, 8, 3),
            (4096, 4096, 1, 0),
            (4096, 1, 4096, 12),
            (5, 2, 3, 2),  # odd split: prefix gets the extra element
        ],
    )
    def test_shapes(self, size, target, leaves, depth):
        assert _walk_split_tree(size, target) == (leaves, depth)
