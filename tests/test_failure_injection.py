"""Failure injection: exceptions and adversarial components through the
parallel machinery.

Errors must propagate out of parallel executions promptly and leave the
shared pool reusable — the properties that make a fork/join substrate
trustworthy in production.
"""

import math

import pytest

from repro.common import IllegalStateError, NotPowerOfTwoError
from repro.core import IdentityCollector, PowerReduceCollector, power_collect
from repro.forkjoin import ForkJoinPool
from repro.streams import Collector, Collectors, Stream, stream_of
from repro.streams.spliterator import Characteristics, Spliterator
from repro.streams.stream_support import StreamSupport


@pytest.fixture(scope="module")
def pool():
    p = ForkJoinPool(parallelism=4, name="failure")
    yield p
    p.shutdown()


class TestExceptionPropagation:
    def test_map_exception_sequential(self):
        with pytest.raises(ZeroDivisionError):
            Stream.range(0, 10).map(lambda x: 1 // (x - 5)).to_list()

    def test_map_exception_parallel(self, pool):
        with pytest.raises(ZeroDivisionError):
            (
                Stream.range(0, 10_000)
                .parallel()
                .with_pool(pool)
                .map(lambda x: 1 // (x - 7777))
                .to_list()
            )

    def test_filter_exception_parallel(self, pool):
        def bad(x):
            if x == 5000:
                raise KeyError("poison")
            return True

        with pytest.raises(KeyError):
            Stream.range(0, 10_000).parallel().with_pool(pool).filter(bad).count()

    def test_accumulator_exception_parallel(self, pool):
        def explode(acc, t):
            raise ValueError("acc")

        with pytest.raises(ValueError, match="acc"):
            Stream.range(0, 1000).parallel().with_pool(pool).collect(
                lambda: [], explode, lambda a, b: a.extend(b)
            )

    def test_combiner_exception_parallel(self, pool):
        def bad_combine(a, b):
            raise RuntimeError("comb")

        with pytest.raises(RuntimeError, match="comb"):
            Stream.range(0, 1000).parallel().with_pool(pool).collect(
                lambda: [], lambda acc, t: acc.append(t), bad_combine
            )

    def test_supplier_exception_parallel(self, pool):
        collector = Collector.of(
            lambda: (_ for _ in ()).throw(OSError("sup")),
            lambda a, t: None,
            lambda a, b: a,
        )
        with pytest.raises(OSError):
            Stream.range(0, 1000).parallel().with_pool(pool).collect(collector)

    def test_pool_reusable_after_failures(self, pool):
        for _ in range(5):
            with pytest.raises(ZeroDivisionError):
                Stream.range(0, 1000).parallel().with_pool(pool).map(
                    lambda x: 1 // 0
                ).to_list()
        # The pool still computes correctly afterwards.
        assert Stream.range(0, 1000).parallel().with_pool(pool).sum() == 499500

    def test_stream_consumed_even_when_terminal_raises(self):
        s = Stream.of_items(1, 2, 3).map(lambda x: 1 // 0)
        with pytest.raises(ZeroDivisionError):
            s.to_list()
        with pytest.raises(IllegalStateError):
            s.to_list()

    def test_power_collect_exception(self, pool):
        with pytest.raises(ArithmeticError):
            power_collect(
                PowerReduceCollector(lambda a, b: (_ for _ in ()).throw(
                    ArithmeticError("op")
                )),
                list(range(64)),
                pool=pool,
            )


class TestAdversarialSpliterators:
    def test_lying_size_estimate_still_correct(self, pool):
        class Liar(Spliterator):
            """Claims a huge size but delivers 10 elements."""

            def __init__(self):
                self.items = list(range(10))

            def try_advance(self, action):
                if self.items:
                    action(self.items.pop(0))
                    return True
                return False

            def try_split(self):
                return None

            def estimate_size(self):
                return 10**12

            def characteristics(self):
                return Characteristics.ORDERED

        out = StreamSupport.stream(Liar(), parallel=True).with_pool(pool).to_list()
        assert out == list(range(10))

    def test_never_splitting_source_parallel(self, pool):
        class Monolith(Spliterator):
            def __init__(self, n):
                self.i, self.n = 0, n

            def try_advance(self, action):
                if self.i < self.n:
                    action(self.i)
                    self.i += 1
                    return True
                return False

            def try_split(self):
                return None

            def estimate_size(self):
                return self.n - self.i

            def characteristics(self):
                return Characteristics.SIZED | Characteristics.ORDERED

        out = (
            StreamSupport.stream(Monolith(100), parallel=True)
            .with_pool(pool)
            .map(lambda x: x + 1)
            .sum()
        )
        assert out == sum(range(1, 101))

    def test_non_power2_rejected_before_work_starts(self, pool):
        calls = []
        with pytest.raises(NotPowerOfTwoError):
            power_collect(IdentityCollector(), list(range(6)), pool=pool)
        assert calls == []


class TestNumericEdgeCases:
    def test_polynomial_nan_propagates(self, pool):
        from repro.core import polynomial_value

        out = polynomial_value([1.0, float("nan"), 0.0, 0.0], 1.0, pool=pool)
        assert math.isnan(out)

    def test_polynomial_inf(self, pool):
        from repro.core import polynomial_value

        out = polynomial_value([float("inf"), 0.0], 2.0, pool=pool)
        assert math.isinf(out)

    def test_reduce_with_huge_ints(self, pool):
        data = [10**100] * 64
        out = power_collect(PowerReduceCollector(lambda a, b: a + b), data, pool=pool)
        assert out == 64 * 10**100


class TestStress:
    def test_deep_pipeline(self):
        s = Stream.range(0, 100)
        for _ in range(100):
            s = s.map(lambda x: x + 1)
        assert s.to_list() == list(range(100, 200))

    def test_wide_flat_map(self, pool):
        out = (
            Stream.range(0, 100)
            .parallel()
            .with_pool(pool)
            .flat_map(lambda x: range(100))
            .count()
        )
        assert out == 10_000

    def test_many_concurrent_parallel_streams(self, pool):
        import threading

        results = []
        lock = threading.Lock()

        def worker(seed):
            out = Stream.range(0, 2000).parallel().with_pool(pool).map(
                lambda x: x * seed
            ).sum()
            with lock:
                results.append(out == seed * sum(range(2000)))

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(1, 9)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(results) and len(results) == 8

    def test_empty_stream_all_parallel_terminals(self, pool):
        make = lambda: Stream.empty().parallel().with_pool(pool)
        assert make().to_list() == []
        assert make().count() == 0
        assert make().sum() == 0
        assert make().reduce(lambda a, b: a + b).is_empty()
        assert make().min().is_empty()
        assert not make().any_match(lambda x: True)
        assert make().all_match(lambda x: False)
        assert make().find_first().is_empty()
        seen = []
        make().for_each(seen.append)
        assert seen == []
